"""Random-number-generator plumbing.

All stochastic components (k-means seeding, dataset generation, query
sampling) accept a ``seed`` argument that may be ``None``, an integer, or an
existing :class:`numpy.random.Generator`.  :func:`ensure_rng` normalises the
three forms so that experiments are reproducible end to end.
"""

from __future__ import annotations

import numbers

import numpy as np

__all__ = ["ensure_rng"]


def ensure_rng(seed) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an integer for a deterministic generator, or
        an existing generator which is returned unchanged (so callers can
        thread one generator through a pipeline).
    """
    if seed is None:
        return np.random.default_rng()  # vilint: disable=seeded-rng -- wrapper
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, numbers.Integral) and not isinstance(seed, bool):
        # The one sanctioned module-level RNG construction site: every other
        # module threads the Generator built here.
        return np.random.default_rng(int(seed))  # vilint: disable=seeded-rng
    raise TypeError(
        "seed must be None, an int, or a numpy.random.Generator, "
        f"got {type(seed).__name__}"
    )
