"""Cost accounting: deterministic I/O and CPU counters plus wall timing.

The paper's Figures 16-19 report I/O cost (page accesses) and CPU cost.
Hardware-independent reproduction requires counting the underlying events
rather than timing a 2005-era Sun box, so every pager read, buffer-pool miss,
distance evaluation and ViTri similarity computation increments a counter
here.  Wall time is recorded as a secondary signal.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["CostCounters", "StageTimer", "Timer"]


@dataclass
class CostCounters:
    """Mutable bundle of event counters threaded through a query.

    Attributes
    ----------
    page_reads:
        Physical page reads (buffer-pool misses reaching the pager).
    page_requests:
        Logical page requests (hits + misses).
    page_writes:
        Physical page writes.
    distance_computations:
        Full n-dimensional distance evaluations.
    similarity_computations:
        ViTri-pair similarity evaluations (the paper's CPU-cost unit).
    btree_node_visits:
        B+-tree nodes traversed (internal + leaf).
    records_scanned:
        Candidate records pulled out of leaf pages / heap files.
    records_decoded:
        Records deserialised from their on-page bytes.  Charged per
        logical record in both the per-record and the page-batched
        decode paths, so the two report identical cost signatures.
    """

    page_reads: int = 0
    page_requests: int = 0
    page_writes: int = 0
    distance_computations: int = 0
    similarity_computations: int = 0
    btree_node_visits: int = 0
    records_scanned: int = 0
    records_decoded: int = 0
    extra: dict = field(default_factory=dict)

    def reset(self) -> None:
        """Zero every counter (including ``extra``)."""
        self.page_reads = 0
        self.page_requests = 0
        self.page_writes = 0
        self.distance_computations = 0
        self.similarity_computations = 0
        self.btree_node_visits = 0
        self.records_scanned = 0
        self.records_decoded = 0
        self.extra.clear()

    def snapshot(self) -> dict:
        """Return the counters as a plain dict (for logging / assertions)."""
        data = {
            "page_reads": self.page_reads,
            "page_requests": self.page_requests,
            "page_writes": self.page_writes,
            "distance_computations": self.distance_computations,
            "similarity_computations": self.similarity_computations,
            "btree_node_visits": self.btree_node_visits,
            "records_scanned": self.records_scanned,
            "records_decoded": self.records_decoded,
        }
        data.update(self.extra)
        return data

    def add(self, other: "CostCounters") -> None:
        """Fold another bundle's events into this one in place.

        The query engine uses this to aggregate per-query bundles into
        per-worker serving totals without ever reading a global counter.
        """
        self.page_reads += other.page_reads
        self.page_requests += other.page_requests
        self.page_writes += other.page_writes
        self.distance_computations += other.distance_computations
        self.similarity_computations += other.similarity_computations
        self.btree_node_visits += other.btree_node_visits
        self.records_scanned += other.records_scanned
        self.records_decoded += other.records_decoded
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0) + value

    def merge(self, other: "CostCounters") -> "CostCounters":
        """Return a new counter bundle with both sets of events summed."""
        merged = CostCounters(
            page_reads=self.page_reads + other.page_reads,
            page_requests=self.page_requests + other.page_requests,
            page_writes=self.page_writes + other.page_writes,
            distance_computations=(
                self.distance_computations + other.distance_computations
            ),
            similarity_computations=(
                self.similarity_computations + other.similarity_computations
            ),
            btree_node_visits=self.btree_node_visits + other.btree_node_visits,
            records_scanned=self.records_scanned + other.records_scanned,
            records_decoded=self.records_decoded + other.records_decoded,
        )
        merged.extra = dict(self.extra)
        for key, value in other.extra.items():
            merged.extra[key] = merged.extra.get(key, 0) + value
        return merged

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.snapshot().items() if v)
        return f"CostCounters({parts})"


class Timer:
    """Context-manager wall timer.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(10))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        # Timer *is* the sanctioned wall-clock wrapper the rule points at.
        self._start = time.perf_counter()  # vilint: disable=wall-clock-discipline
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Sanctioned wrapper again (see __enter__).
        self.elapsed = time.perf_counter() - self._start  # vilint: disable=wall-clock-discipline


class StageTimer:
    """Accumulate a code block's wall time into a counter bundle.

    The elapsed seconds land in ``counters.extra["stage_<name>_s"]``,
    summing across blocks with the same stage name.  Because the time
    rides in the per-query :class:`CostCounters` bundle, per-stage
    breakdowns survive aggregation (``CostCounters.add``) exactly like
    the event counters — this is what ``bench_latency.py`` plots as the
    I/O / deserialize / geometry / merge split.

    A ``None`` bundle makes the timer a no-op, so instrumented code
    never needs to branch on whether it is being measured.
    """

    def __init__(self, counters: "CostCounters | None", stage: str) -> None:
        self._counters = counters
        self._key = f"stage_{stage}_s"
        self._timer: Timer | None = None

    def __enter__(self) -> "StageTimer":
        if self._counters is not None:
            self._timer = Timer().__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._timer is not None and self._counters is not None:
            self._timer.__exit__(exc_type, exc, tb)
            extra = self._counters.extra
            extra[self._key] = extra.get(self._key, 0.0) + self._timer.elapsed
