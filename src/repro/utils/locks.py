"""Named locks with optional runtime lock-order validation.

Every long-lived lock in the package is created through
:func:`make_lock` with a stable ``"ClassName._attr"`` name — the same
node names the static lock-model analysis
(:mod:`repro.analysis.concurrency`) derives, so the runtime-observed
acquisition graph and the statically-derived one speak the same
vocabulary and the stress tests can assert the former is a subgraph of
the latter.

By default :func:`make_lock` returns a plain :class:`threading.RLock`
— zero overhead, nothing recorded.  Setting the ``REPRO_TRACK_LOCKS``
environment variable (checked once, at lock construction) switches to
:class:`TrackedRLock`: a re-entrant lock that keeps a per-thread stack
of held lock names and, on every acquisition while another lock is
held, records a ``held -> acquired`` edge into the process-wide
:data:`LOCK_ORDER_GRAPH`.  An edge that would close a cycle raises
:class:`LockOrderViolation` *before* blocking, turning a potential
deadlock into a deterministic test failure.

Edges are keyed by lock *name*, not instance: every ``Pager._lock`` in
the process is one node.  That is deliberately coarse — the static
analysis reasons about classes, not objects, and a consistent
class-level order is what rules out deadlock across any number of
instances acquired in that order.
"""

from __future__ import annotations

import os
import threading

__all__ = [
    "LOCK_ORDER_GRAPH",
    "LockOrderGraph",
    "LockOrderViolation",
    "TrackedRLock",
    "make_lock",
    "tracking_enabled",
]

TRACK_ENV = "REPRO_TRACK_LOCKS"


class LockOrderViolation(RuntimeError):
    """An acquisition would create a cycle in the lock-order graph."""


class LockOrderGraph:
    """Process-wide directed graph of observed ``held -> acquired`` edges.

    Mutations and reads are guarded by an internal plain lock (never a
    tracked one: the graph must not observe itself).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._edges: dict[str, set[str]] = {}

    def record(self, held: str, acquired: str) -> None:
        """Add one observed edge; raises :class:`LockOrderViolation` if
        the edge would close a cycle.  Recording happens *before* the
        blocking acquire, so an inversion fails fast instead of
        deadlocking."""
        if held == acquired:
            return
        with self._lock:
            if acquired in self._edges and self._reaches(acquired, held):
                raise LockOrderViolation(
                    f"acquiring {acquired!r} while holding {held!r} inverts "
                    f"the established lock order ({acquired!r} -> ... -> "
                    f"{held!r} already observed)"
                )
            self._edges.setdefault(held, set()).add(acquired)

    def _reaches(self, source: str, target: str) -> bool:
        # Callers hold self._lock.
        stack = [source]
        seen: set[str] = set()
        while stack:
            node = stack.pop()
            if node == target:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._edges.get(node, ()))
        return False

    def edges(self) -> set[tuple[str, str]]:
        """Snapshot of every observed edge."""
        with self._lock:
            return {
                (held, acquired)
                for held, targets in self._edges.items()
                for acquired in targets
            }

    def to_dot(self) -> str:
        """Graphviz rendering of the observed order (stable output)."""
        lines = ["digraph lock_order {"]
        for held, acquired in sorted(self.edges()):
            lines.append(f'  "{held}" -> "{acquired}";')
        lines.append("}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Forget every edge (test isolation between stress runs)."""
        with self._lock:
            self._edges.clear()


LOCK_ORDER_GRAPH = LockOrderGraph()

_held_stack = threading.local()


def _stack() -> list[str]:
    stack = getattr(_held_stack, "names", None)
    if stack is None:
        stack = []
        _held_stack.names = stack
    return stack


class TrackedRLock:
    """Re-entrant lock that records acquisition order per thread.

    Drop-in for ``with``-style use of :class:`threading.RLock`; every
    acquisition while the thread already holds other tracked locks
    records ``innermost-held -> this`` into *graph*.  Re-entrant
    acquisitions of the same name record nothing (a re-entry cannot
    invert an order).
    """

    def __init__(self, name: str, graph: LockOrderGraph | None = None) -> None:
        if not name:
            raise ValueError("a tracked lock needs a non-empty name")
        self.name = name
        self._graph = graph if graph is not None else LOCK_ORDER_GRAPH
        self._inner = threading.RLock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        stack = _stack()
        if stack and self.name not in stack:
            self._graph.record(stack[-1], self.name)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            stack.append(self.name)
        return acquired

    def release(self) -> None:
        self._inner.release()
        stack = _stack()
        # Remove the innermost entry for this name; release order follows
        # with-block nesting, so this is normally stack.pop().
        for position in range(len(stack) - 1, -1, -1):
            if stack[position] == self.name:
                del stack[position]
                break

    def __enter__(self) -> "TrackedRLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"TrackedRLock({self.name!r})"


def tracking_enabled() -> bool:
    """Whether :func:`make_lock` currently returns tracked locks."""
    return bool(os.environ.get(TRACK_ENV))


def make_lock(name: str):
    """A named re-entrant lock: plain RLock, or tracked when the
    ``REPRO_TRACK_LOCKS`` environment variable is set.

    The environment is consulted at construction time, so enabling
    tracking requires setting the variable *before* the locks' owners
    are built (the stress tests do this via ``monkeypatch.setenv``).
    """
    if tracking_enabled():
        return TrackedRLock(name)
    return threading.RLock()
