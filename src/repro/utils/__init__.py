"""Shared utilities: argument validation, RNG handling, running statistics,
and cost/time accounting used across the ViTri reproduction."""

from __future__ import annotations

from repro.utils.counters import CostCounters, Timer
from repro.utils.rng import ensure_rng
from repro.utils.stats import RunningStats
from repro.utils.validation import (
    check_finite,
    check_matrix,
    check_non_negative,
    check_positive,
    check_probability,
    check_vector,
)

__all__ = [
    "CostCounters",
    "Timer",
    "ensure_rng",
    "RunningStats",
    "check_finite",
    "check_matrix",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_vector",
]
