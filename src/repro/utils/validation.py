"""Argument validation helpers.

Every public entry point of the library validates its inputs through these
helpers so that user errors surface as clear ``ValueError``/``TypeError``
messages at the API boundary instead of as numpy broadcasting surprises deep
inside an algorithm.
"""

from __future__ import annotations

import numbers

import numpy as np

__all__ = [
    "check_finite",
    "check_matrix",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "check_shard_count",
    "check_vector",
]

MAX_SHARDS = 1024
"""Upper bound on shard counts (guards against typo'd fleet sizes)."""


def check_vector(value, name: str, *, dim: int | None = None) -> np.ndarray:
    """Coerce *value* to a 1-D float64 array and validate it.

    Parameters
    ----------
    value:
        Anything convertible to a numpy array.
    name:
        Name used in error messages.
    dim:
        If given, the required length of the vector.

    Returns
    -------
    numpy.ndarray
        A contiguous 1-D float64 array.
    """
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be a 1-D vector, got shape {arr.shape}")
    if dim is not None and arr.shape[0] != dim:
        raise ValueError(f"{name} must have dimension {dim}, got {arr.shape[0]}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must contain only finite values")
    return np.ascontiguousarray(arr)


def check_matrix(
    value,
    name: str,
    *,
    cols: int | None = None,
    min_rows: int = 0,
) -> np.ndarray:
    """Coerce *value* to a 2-D float64 array and validate it.

    Parameters
    ----------
    value:
        Anything convertible to a numpy array of shape ``(rows, cols)``.
    name:
        Name used in error messages.
    cols:
        If given, the required number of columns.
    min_rows:
        Minimum number of rows required.

    Returns
    -------
    numpy.ndarray
        A contiguous 2-D float64 array.
    """
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be a 2-D matrix, got shape {arr.shape}")
    if cols is not None and arr.shape[1] != cols:
        raise ValueError(f"{name} must have {cols} columns, got {arr.shape[1]}")
    if arr.shape[0] < min_rows:
        raise ValueError(
            f"{name} must have at least {min_rows} rows, got {arr.shape[0]}"
        )
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must contain only finite values")
    return np.ascontiguousarray(arr)


def check_positive(value, name: str) -> float:
    """Validate that *value* is a finite real number strictly greater than 0."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be a finite positive number, got {value}")
    return value


def check_non_negative(value, name: str) -> float:
    """Validate that *value* is a finite real number greater than or equal to 0."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not np.isfinite(value) or value < 0.0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value}")
    return value


def check_probability(value, name: str) -> float:
    """Validate that *value* lies in the closed interval [0, 1]."""
    value = check_non_negative(value, name)
    if value > 1.0:
        raise ValueError(f"{name} must be at most 1, got {value}")
    return value


def check_positive_int(value, name: str) -> int:
    """Validate that *value* is an int (not a bool) greater than or equal to 1.

    The boundary check shared by every count-like argument — ``k`` of a
    KNN query, worker counts, shard counts — so user errors surface as
    one consistent ``ValueError`` message instead of ad-hoc raises in
    each entry point.
    """
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise ValueError(f"{name} must be a positive int, got {value}")
    return value


def check_shard_count(value, name: str = "num_shards") -> int:
    """Validate a shard count: a positive int no larger than ``MAX_SHARDS``."""
    value = check_positive_int(value, name)
    if value > MAX_SHARDS:
        raise ValueError(
            f"{name} must be at most {MAX_SHARDS}, got {value}"
        )
    return value


def check_finite(value, name: str) -> float:
    """Validate that *value* is a finite real number."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    return value
