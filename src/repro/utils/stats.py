"""Running statistics (Welford's algorithm).

Used by the clustering code to compute the mean and standard deviation of
member-to-centre distances in one pass, and by the evaluation harness to
aggregate per-query costs.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.validation import check_probability

__all__ = ["RunningStats", "percentile"]


def percentile(
    sorted_values, fraction: float, *, default: float | None = None
) -> float:
    """Linear-interpolated percentile of an ascending-sorted sequence.

    The single definition shared by the serving metrics (p50/p95/p99
    latencies), the scatter-gather router and the resilience layer's
    hedge thresholds.

    ``fraction`` must be a finite number in ``[0, 1]``.  An empty
    sequence has no percentiles: it raises :class:`ValueError` unless
    the caller opts into a sentinel via ``default=`` (a metrics path
    reporting "no samples yet" passes ``default=0.0`` and says so,
    instead of every caller silently reading 0.0 that looks like a
    measurement).
    """
    fraction = check_probability(fraction, "fraction")
    count = len(sorted_values)
    if count == 0:
        if default is None:
            raise ValueError(
                "percentile() of an empty sequence (pass default= to map "
                "the no-samples case to a sentinel)"
            )
        return default
    if count == 1:
        return float(sorted_values[0])
    rank = fraction * (count - 1)
    low = int(rank)
    high = min(low + 1, count - 1)
    weight = rank - low
    return sorted_values[low] * (1.0 - weight) + sorted_values[high] * weight


class RunningStats:
    """Single-pass mean/variance accumulator (Welford).

    Population variance is used (divide by ``n``) to match the paper's
    definition of sigma in Section 4.1.

    Examples
    --------
    >>> rs = RunningStats()
    >>> for x in [1.0, 2.0, 3.0]:
    ...     rs.add(x)
    >>> rs.mean
    2.0
    """

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        value = float(value)
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def add_many(self, values) -> None:
        """Fold an iterable of observations into the accumulator."""
        for value in np.asarray(values, dtype=np.float64).ravel():
            self.add(float(value))

    @property
    def count(self) -> int:
        """Number of observations seen."""
        return self._count

    @property
    def mean(self) -> float:
        """Arithmetic mean of observations; 0.0 when empty."""
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Population variance; 0.0 when fewer than two observations."""
        if self._count < 2:
            return 0.0
        return self._m2 / self._count

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        """Smallest observation; ``inf`` when empty."""
        return self._min

    @property
    def max(self) -> float:
        """Largest observation; ``-inf`` when empty."""
        return self._max

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Return a new accumulator equivalent to seeing both streams."""
        if not isinstance(other, RunningStats):
            raise TypeError("can only merge with another RunningStats")
        merged = RunningStats()
        n = self._count + other._count
        if n == 0:
            return merged
        delta = other._mean - self._mean
        merged._count = n
        merged._mean = self._mean + delta * other._count / n
        merged._m2 = (
            self._m2 + other._m2 + delta * delta * self._count * other._count / n
        )
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged

    def __repr__(self) -> str:
        return (
            f"RunningStats(count={self.count}, mean={self.mean:.6g}, "
            f"std={self.std:.6g})"
        )
