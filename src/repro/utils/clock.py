"""Injectable clocks: real time for production, virtual time for tests.

The fault-tolerance layer (``repro.shard.resilience``) needs a notion of
time for three things — attempt latencies, retry backoff sleeps and
circuit-breaker cooldowns — and all three must be *deterministic* under
test.  Hard-wiring ``time.monotonic`` / ``time.sleep`` would make every
breaker transition and hedge decision depend on scheduler noise, so the
resilience code never touches the ``time`` module (enforced by the
``injected-clock`` vilint rule): it receives a :class:`Clock` and calls
:meth:`Clock.now` / :meth:`Clock.sleep`.

Two implementations:

* :class:`SystemClock` — the production clock.  ``now()`` reads the
  monotonic performance counter (this module is, like
  :class:`repro.utils.counters.Timer`, a sanctioned wall-clock wrapper);
  ``sleep()`` really sleeps.
* :class:`VirtualClock` — the test clock.  Time only moves when someone
  moves it: ``sleep(s)`` advances the *calling thread's* view by ``s``
  instantly (no real waiting), and :meth:`VirtualClock.advance` moves the
  shared base time (how tests let a breaker cooldown elapse).  Keeping
  per-thread offsets thread-local makes latencies measured inside one
  scatter worker independent of what every other worker sleeps, so a
  multi-threaded fault sweep is bit-for-bit repeatable.

:class:`Deadline` sits on top of either clock: a fixed clock-time budget
captured at construction, shared by everything resolving one request
(attempts, backoff sleeps, hedges, and — through the wire protocol —
remote shard servers).

Process and thread boundaries
-----------------------------
Clock state never crosses a process boundary.  A ``VirtualClock`` (its
base *and* its per-thread offsets) lives in the process that created it,
so a subprocess shard server cannot share the router's clock object —
each server installs its *own* clock (``--clock virtual`` in
``repro.serve.shard_server``) and determinism is preserved by what goes
over the wire instead: deadlines travel as **relative remaining
budgets** (seconds, not absolute times), so the two clocks never need a
common origin, and retry jitter stays a seeded hash on the client side.

Within one process, a ``VirtualClock`` deadline must be created on the
thread that will do the work: ``now()`` includes the *calling thread's*
accumulated sleep offset, so a :class:`Deadline` captured on thread A
and checked on thread B would mix two unrelated offset histories.  The
serve layer therefore constructs its deadlines inside the executor
thread that runs the query, never on the event-loop thread.
"""

from __future__ import annotations

import math
import threading
import time


__all__ = ["Clock", "Deadline", "SystemClock", "VirtualClock"]


class Clock:
    """Minimal clock interface the resilience layer programs against."""

    def now(self) -> float:
        """Current time in seconds (monotonic; origin is arbitrary)."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block (or pretend to) for ``seconds``; negative means zero."""
        raise NotImplementedError


class SystemClock(Clock):
    """The real, monotonic clock — the production default."""

    def now(self) -> float:
        # The clock module is the sanctioned wall-clock wrapper for the
        # resilience layer, exactly like Timer is for benchmarks.
        return time.perf_counter()  # vilint: disable=wall-clock-discipline

    def sleep(self, seconds: float) -> None:
        if seconds > 0.0:
            time.sleep(seconds)


class VirtualClock(Clock):
    """A deterministic clock that only moves when told to.

    ``now()`` returns ``base + thread-local offset``.  ``sleep(s)``
    advances only the calling thread's offset, so latencies measured
    inside one scatter worker (``now() - start``) see exactly that
    worker's injected delays and backoffs, never a sibling thread's.
    :meth:`advance` moves the shared base — the seam tests use to let
    breaker cooldowns elapse between queries.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._base = float(start)
        self._lock = threading.Lock()
        self._local = threading.local()

    def _offset(self) -> float:
        return getattr(self._local, "offset", 0.0)

    def now(self) -> float:
        with self._lock:
            base = self._base
        return base + self._offset()

    def sleep(self, seconds: float) -> None:
        if seconds > 0.0:
            self._local.offset = self._offset() + float(seconds)

    def advance(self, seconds: float) -> None:
        """Move the shared base time forward (visible to every thread)."""
        if seconds < 0.0:
            raise ValueError(f"cannot advance time backwards ({seconds})")
        with self._lock:
            self._base += float(seconds)

    def __repr__(self) -> str:
        return f"VirtualClock(now={self.now():.6f})"


class Deadline:
    """A clock-time budget shared by everything resolving one request.

    Captures ``clock.now() + budget`` at construction; every later
    :meth:`remaining` / :meth:`expired` call re-reads the same clock, so
    sleeps (real or virtual) performed by the constructing thread count
    against the budget.  ``budget=None`` means unbounded: ``expired()``
    is always false and ``remaining()`` is ``inf`` — callers never need
    to branch on whether a deadline was actually requested.

    Under a :class:`VirtualClock` the deadline must be constructed on
    the thread that will do the work (see the module docstring); to
    cross a process boundary, send :meth:`remaining` and rebuild with
    the receiver's own clock.
    """

    __slots__ = ("_clock", "_expires_at")

    def __init__(self, clock: Clock, budget: float | None) -> None:
        self._clock = clock
        if budget is None:
            self._expires_at = math.inf
        else:
            budget = float(budget)
            if not math.isfinite(budget):
                raise ValueError(f"budget must be finite or None, got {budget}")
            self._expires_at = clock.now() + budget

    @property
    def bounded(self) -> bool:
        """Whether this deadline can ever expire."""
        return math.isfinite(self._expires_at)

    def remaining(self) -> float:
        """Seconds of budget left (negative once past due, ``inf`` if
        unbounded) — what travels on the wire as the relative budget."""
        return self._expires_at - self._clock.now()

    def expired(self) -> bool:
        """Whether the budget is spent."""
        return self.remaining() <= 0.0

    def __repr__(self) -> str:
        if not self.bounded:
            return "Deadline(unbounded)"
        return f"Deadline(remaining={self.remaining():.6f})"
