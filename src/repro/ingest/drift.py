"""Streaming drift monitoring (paper Section 6.3.3, online form).

:class:`~repro.core.maintenance.RebuildPolicy` answers "has the first
principal component drifted past the threshold?" on an every-N-inserts
cadence.  Under continuous ingestion that cadence needs two more
properties:

* **per-shard state** — a fleet drifts unevenly; the monitor keys its
  insert counters by an opaque shard key so one hot shard's rebuild is
  not charged to the others;
* **a wall-clock floor** — the drift measurement scans every indexed
  position, and an online rebuild costs a full side build; a burst of
  inserts must not trigger back-to-back measurements or rebuilds.  The
  floor reads the *injected* :class:`~repro.utils.clock.Clock` (VIL007:
  a virtual-clock test replays the whole trigger schedule exactly).

The monitor only ever *measures and recommends*; actually rebuilding is
the pipeline's (or the router's) call.  Every measurement is returned
as a :class:`DriftCheck` so eval harnesses can plot angle-vs-time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.maintenance import RebuildPolicy
from repro.utils.clock import Clock, SystemClock

__all__ = ["DriftCheck", "DriftMonitor"]


@dataclass(frozen=True)
class DriftCheck:
    """One drift measurement: the angle, the threshold, the verdict."""

    key: object
    angle: float
    threshold: float
    rebuild: bool
    at: float


class DriftMonitor:
    """Decides *when* to measure drift and whether it warrants a rebuild.

    Parameters
    ----------
    max_angle_degrees:
        Principal-angle threshold (paper's allowed drift).
    check_every:
        Inserts per key between measurements (the measurement is a full
        position scan; see :class:`RebuildPolicy`).
    min_interval:
        Minimum injected-clock seconds between measurements per key
        (``0`` disables the floor).
    clock:
        Injected clock; defaults to the system clock.
    """

    def __init__(
        self,
        *,
        max_angle_degrees: float = 15.0,
        check_every: int = 100,
        min_interval: float = 0.0,
        clock: Clock | None = None,
    ) -> None:
        # One policy instance validates the knobs; per-key cadence is
        # tracked here (the policy's own counter assumes a single index).
        self._policy = RebuildPolicy(
            max_angle_degrees=max_angle_degrees, check_every=check_every
        )
        if min_interval < 0:
            raise ValueError(
                f"min_interval must be >= 0, got {min_interval}"
            )
        self._check_every = check_every
        self._min_interval = float(min_interval)
        self._clock = clock if clock is not None else SystemClock()
        if not isinstance(self._clock, Clock):
            raise TypeError("clock must be a Clock")
        self._since_check: dict = {}
        self._last_check_at: dict = {}
        self.checks = 0
        self.last_angle: float | None = None
        self.max_angle_seen = 0.0

    @property
    def threshold_radians(self) -> float:
        """The rebuild threshold in radians."""
        return self._policy.max_angle_radians

    def observe(self, key, index, inserted: int = 1) -> DriftCheck | None:
        """Record ``inserted`` insertions into ``key``'s index; maybe measure.

        Returns ``None`` when no measurement was due (count below
        ``check_every``, or inside the ``min_interval`` floor), else the
        :class:`DriftCheck` verdict.  The insert count resets only when
        a measurement actually runs, so a burst suppressed by the floor
        is measured at the first opportunity after it.
        """
        if inserted < 1:
            raise ValueError(f"inserted must be >= 1, got {inserted}")
        count = self._since_check.get(key, 0) + inserted
        self._since_check[key] = count
        if count < self._check_every:
            return None
        now = self._clock.now()
        last_at = self._last_check_at.get(key)
        if (
            self._min_interval > 0.0
            and last_at is not None
            and now - last_at < self._min_interval
        ):
            return None
        self._since_check[key] = 0
        self._last_check_at[key] = now
        angle, exceeded = self._policy.drift_exceeded(index)
        self.checks += 1
        self.last_angle = angle
        self.max_angle_seen = max(self.max_angle_seen, angle)
        return DriftCheck(
            key=key,
            angle=angle,
            threshold=self._policy.max_angle_radians,
            rebuild=exceeded,
            at=now,
        )

    def forget(self, key) -> None:
        """Drop a key's counters (its shard was rebuilt or removed)."""
        self._since_check.pop(key, None)
        self._last_check_at.pop(key, None)

    def __repr__(self) -> str:
        return (
            f"DriftMonitor(checks={self.checks}, "
            f"last_angle={self.last_angle}, keys={len(self._since_check)})"
        )
