"""Online ingestion: live inserts, drift monitoring, atomic cutover.

The write-heavy half of serving a video database.  Three pieces:

* :mod:`repro.ingest.pipeline` — :class:`IngestPipeline`, bounded
  admission and WAL-batched commits of streamed summaries into a live
  fleet, with typed backpressure mirroring the front door's shedding
  discipline.
* :mod:`repro.ingest.drift` — :class:`DriftMonitor`, the paper's
  Section 6.3.3 principal-angle drift policy re-cast for streaming:
  per-shard insert counts, a wall-clock floor between measurements (on
  the injected clock), and an explicit ``DriftCheck`` verdict the
  pipeline turns into an online rebuild.
* :mod:`repro.ingest.cutover` — the online side-build: construct the
  refitted index in a sibling generation directory while the old one
  serves, then cut over atomically through the ``epoch.json`` pointer
  (see :mod:`repro.core.database`).
"""

from __future__ import annotations

from repro.ingest.cutover import (
    CutoverReport,
    SideBuildResult,
    commit_cutover,
    rebuild_online,
    side_build,
)
from repro.ingest.drift import DriftCheck, DriftMonitor
from repro.ingest.pipeline import (
    IngestBackpressure,
    IngestDraining,
    IngestFailed,
    IngestOverloaded,
    IngestPipeline,
)

__all__ = [
    "CutoverReport",
    "DriftCheck",
    "DriftMonitor",
    "IngestBackpressure",
    "IngestDraining",
    "IngestFailed",
    "IngestOverloaded",
    "IngestPipeline",
    "SideBuildResult",
    "commit_cutover",
    "rebuild_online",
    "side_build",
]
