"""Online reference-point rebuild: side-build, then atomic cutover.

The paper's Section 6.3.3 remedy for drift — refit the reference point
and rebuild — is offline as stated: the index is unavailable for the
duration.  This module runs the same rebuild *beside* the live index:

1. :func:`side_build` checkpoints the serving database (anchoring the
   "old complete" state), scans its summaries, and builds a brand-new
   database — refitted reference point, packed pages, new content token
   — in a sibling *generation* directory (``gen-NNNN``) under the same
   root.  The old file set serves queries throughout; nothing it owns
   is touched.
2. :func:`commit_cutover` atomically re-points the directory's
   ``epoch.json`` at the new generation (one ``os.replace`` — the only
   commit point), swaps the shard onto a freshly reopened database, and
   lets every epoch-scoped artefact invalidate itself: the serving
   engine (and its L1 result / L2 range caches) rebuilds against the
   new content token, and a WAL shipper re-roots its hash chain so
   replicas re-bootstrap from a new-epoch snapshot instead of replaying
   across the boundary.

Crash safety is inherited, not bolted on: every write of the side build
and the pointer swap routes through the database's fault injector, so a
crash-at-every-step sweep can prove the invariant — before the pointer
replace lands, reopening serves the *old* index complete; after it, the
*new* one; no intermediate state is reachable.  Stale artefacts (a
crashed side-build, the previous epoch after cutover) are swept by the
next open, never by the cutover itself.

Rankings are unchanged by construction: similarity scores depend only
on the query and each video's own ViTris, never on the reference point,
so the new epoch answers bit-identically to the old (and to a
rebuilt-from-scratch oracle) — the cutover moves *cost*, not results.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass

from repro.core.database import (
    VideoDatabase,
    generation_name,
    write_epoch_pointer,
)

__all__ = [
    "CutoverReport",
    "SideBuildResult",
    "commit_cutover",
    "rebuild_online",
    "side_build",
]


@dataclass(frozen=True)
class SideBuildResult:
    """A completed side build, ready to cut over to.

    ``generation``/``epoch`` name the sibling directory holding the new
    file set; ``token`` is its index content token; ``drift_before`` is
    the old index's principal-angle drift (radians) at build time.
    """

    generation: str
    epoch: int
    token: str
    videos: int
    drift_before: float


@dataclass(frozen=True)
class CutoverReport:
    """What a completed online rebuild changed."""

    old_token: str
    new_token: str
    old_epoch: int
    new_epoch: int
    generation: str
    videos: int
    drift_before: float
    drift_after: float


def side_build(db: VideoDatabase, *, reference: str | None = None) -> SideBuildResult:
    """Build the refitted index in a sibling generation directory.

    The serving database is checkpointed first — the sweep's "old
    complete" anchor — then its summaries are scanned and bulk-built
    into a fresh :class:`VideoDatabase` under
    ``<db.path>/<next generation>/`` with the same epsilon, seed and id
    counter.  The old file set keeps serving; a crash anywhere in here
    leaves a stale sibling the next open sweeps away.

    The caller must hold writes off the database for the duration (the
    router's maintenance window does this); concurrent *reads* are safe
    — the checkpoint changes no page's visible content, and the side
    build only reads.
    """
    if not isinstance(db, VideoDatabase):
        raise TypeError("db must be a VideoDatabase")
    if db.path is None:
        raise ValueError("online rebuild requires a durable database")
    if len(db) == 0:
        raise ValueError("cannot side-build an empty database")
    db.checkpoint()
    drift_before = db.drift_angle()
    summaries = db.summaries()

    epoch = db.epoch + 1
    generation = generation_name(epoch)
    side_path = os.path.join(db.path, generation)
    if os.path.exists(side_path):
        # A crashed side build from this same process run (the open-time
        # sweep only covers reopens); plain removal — it was never live.
        shutil.rmtree(side_path)
    side = VideoDatabase(
        db.epsilon,
        reference=reference if reference is not None else db.reference,
        summarize_seed=db.summarize_seed,
        path=side_path,
        buffer_capacity=db.buffer_capacity,
        read_latency=db.read_latency,
        fault_injector=db.fault_injector,
    )
    side.reserve_video_ids(db.next_video_id)
    for summary in summaries:
        side.add_summary(summary)
    side.build()
    token = side.index.content_token()
    side.close()
    return SideBuildResult(
        generation=generation,
        epoch=epoch,
        token=token,
        videos=len(summaries),
        drift_before=drift_before,
    )


def commit_cutover(shard, result: SideBuildResult, *, shipper=None) -> CutoverReport:
    """Atomically switch a shard onto a completed side build.

    The commit point is one ``os.replace`` of ``epoch.json``; before it
    a reopen lands on the old epoch, after it on the new — nothing in
    between.  Then the shard adopts a freshly reopened database (whose
    open sweeps the old generation's files), dropping its engine and
    caches so the next query rebuilds them under the new content token.
    With a ``shipper``, the segment chain is re-rooted so replicas
    re-bootstrap from a new-epoch snapshot (see
    :meth:`~repro.replication.shipper.WalShipper.rehook`).

    ``shard`` is duck-typed (``database`` + ``adopt_database``) so this
    module stays importable from the routing layer without a cycle.
    """
    if not isinstance(result, SideBuildResult):
        raise TypeError("result must be a SideBuildResult")
    db = shard.database
    if db.path is None:
        raise ValueError("online rebuild requires a durable database")
    old_token = db.index.content_token() if db.index is not None else ""
    old_epoch = db.epoch

    write_epoch_pointer(
        db.path, result.generation, result.epoch,
        fault_injector=db.fault_injector,
    )
    # -- committed: from here on, every reopen lands on the new epoch --

    db.detach()  # no final checkpoint: the old generation is dead
    new_db = VideoDatabase(
        path=db.path,
        buffer_capacity=db.buffer_capacity,
        read_latency=db.read_latency,
        fault_injector=db.fault_injector,
    )
    shard.adopt_database(new_db)
    if shipper is not None:
        shipper.rehook()
    return CutoverReport(
        old_token=old_token,
        new_token=result.token,
        old_epoch=old_epoch,
        new_epoch=result.epoch,
        generation=result.generation,
        videos=result.videos,
        drift_before=result.drift_before,
        drift_after=new_db.drift_angle(),
    )


def rebuild_online(shard, *, reference: str | None = None, shipper=None) -> CutoverReport:
    """Side-build then cut over, in one call (writes must be held off)."""
    result = side_build(shard.database, reference=reference)
    return commit_cutover(shard, result, shipper=shipper)
