"""Streaming ingest: bounded admission, WAL-batched commits, typed sheds.

:class:`IngestPipeline` is the write-side front door.  Producers
:meth:`~IngestPipeline.submit` summaries into a bounded queue; a pump
(inline or a background thread) drains them in batches into the target
— a sharded fleet, a replica set, or a bare shard — and commits each
batch as **one** WAL transaction, so a replica set ships it as one
chained segment and a crash can only lose whole batches, never split
one.

The admission discipline mirrors :class:`repro.serve.FrontDoor`: a full
queue or a draining pipeline sheds with a *typed* error before any work
is done — :class:`IngestOverloaded` / :class:`IngestDraining`, both
:class:`IngestBackpressure` — so producers can tell "back off and
retry" from a real failure, exactly like the read path's 429-shaped
refusals.  Admission and drain share one lock, so a producer can never
slip a summary past a concurrent :meth:`~IngestPipeline.drain`'s final
flush: everything counted ``submitted`` is either committed by the
drain or was shed with a typed error.

With a :class:`~repro.ingest.drift.DriftMonitor` attached, every
committed batch feeds per-shard insert counts; when a measurement says
the principal angle drifted past the threshold, the pipeline launches
the online rebuild (:mod:`repro.ingest.cutover`) on the affected shard
— through the router's maintenance window for fleets, under the
primary's ``write_gate`` for a replica set — while queries keep being
served.  Fleet drift state is keyed by shard *identity*, not fleet
position: a concurrent ``rebalance()`` renumbers positions, and the
key must survive that.

A commit failure never silently kills ingestion: the background worker
records the error, keeps the un-applied remainder of the batch for the
next attempt, and retries with backoff (a concurrent maintenance window
is the common, transient cause).  Only after
``max_pump_failures`` consecutive failures does the pipeline transition
to a terminal failed state, which :meth:`~IngestPipeline.submit` then
reports as :class:`IngestFailed` instead of letting producers fill a
queue nobody drains.

All timing (pump backoff, drift floors) reads the injected
:class:`~repro.utils.clock.Clock` (VIL007): a virtual-clock test replays
the pipeline's entire schedule deterministically.
"""

from __future__ import annotations

# vilint: disable-file=blocking-while-locked -- the pump lock exists
# precisely to serialise committers: a commit IS durable I/O (batch
# checkpoint, online rebuild's side build + pointer swap), and holding
# the lock across it is the invariant the oracle-checkpoint quiesce and
# the one-segment-per-batch contract rely on.  Admission (submit) never
# takes this lock, so producers are not blocked by an in-flight commit.

import collections
import queue
import threading

from repro.core.vitri import VideoSummary
from repro.ingest.cutover import rebuild_online
from repro.ingest.drift import DriftMonitor
from repro.utils.clock import Clock, SystemClock
from repro.utils.locks import make_lock

__all__ = [
    "IngestBackpressure",
    "IngestDraining",
    "IngestFailed",
    "IngestOverloaded",
    "IngestPipeline",
]


class IngestBackpressure(RuntimeError):
    """Base of the pipeline's typed sheds (retriable by construction)."""


class IngestOverloaded(IngestBackpressure):
    """The admission queue is full; back off and resubmit."""


class IngestDraining(IngestBackpressure):
    """The pipeline is draining/closed; no new work is admitted."""


class IngestFailed(RuntimeError):
    """The pump failed terminally; submissions are refused, not queued.

    Deliberately *not* an :class:`IngestBackpressure`: retrying will not
    help until an operator intervenes (``stats()["failed"]`` carries the
    last error).
    """


class IngestPipeline:
    """Bounded, batching ingest into a live serving target.

    Parameters
    ----------
    target:
        Where summaries land, duck-typed by capability:

        * a sharded fleet (``rebuild_shard`` + ``shards``) — inserts
          route through the partitioner, drift is tracked per shard and
          rebuilds go through the router's maintenance window;
        * a replica set (``sync`` + ``primary``) — inserts hit the
          primary under its ``write_gate``, each batch commit seals one
          segment, then :meth:`sync` pumps the replicas;
        * a bare shard (``database``) — the single-index case.
    batch_size:
        Summaries per commit (one WAL transaction / shipped segment).
    max_queue:
        Admission bound; a full queue sheds :class:`IngestOverloaded`.
    clock:
        Injected clock for pump backoff (defaults to the system clock).
    drift:
        Optional :class:`DriftMonitor`; ``None`` disables drift-triggered
        rebuilds.
    linger:
        Group-commit window for the *background* worker: a partial batch
        is held until its oldest summary has been queued this many
        seconds (on the injected clock), so a paced trickle of writes
        produces full batches — and full-batch commit cadence — instead
        of one tiny commit (and one round of engine/cache invalidation)
        per summary.  ``0`` (the default) commits whatever is queued
        immediately.  A full batch never waits, and
        :meth:`pump`/:meth:`drain` always flush regardless.
    min_backoff / max_backoff:
        Idle-pump sleep bounds for the background worker (deterministic
        doubling, no jitter — reruns replay identically).  Commit
        failures retry on the same schedule.
    max_pump_failures:
        Consecutive commit failures the background worker tolerates
        (retrying with backoff) before it transitions the pipeline to
        the terminal failed state reported by :class:`IngestFailed`.
    """

    def __init__(
        self,
        target,
        *,
        batch_size: int = 32,
        max_queue: int = 256,
        clock: Clock | None = None,
        drift: DriftMonitor | None = None,
        linger: float = 0.0,
        min_backoff: float = 0.005,
        max_backoff: float = 0.25,
        max_pump_failures: int = 8,
    ) -> None:
        if not isinstance(batch_size, int) or batch_size < 1:
            raise ValueError(f"batch_size must be a positive int, got {batch_size}")
        if not isinstance(max_queue, int) or max_queue < 1:
            raise ValueError(f"max_queue must be a positive int, got {max_queue}")
        if drift is not None and not isinstance(drift, DriftMonitor):
            raise TypeError("drift must be a DriftMonitor")
        if not (0 < min_backoff <= max_backoff):
            raise ValueError(
                f"need 0 < min_backoff <= max_backoff, got "
                f"{min_backoff}/{max_backoff}"
            )
        if linger < 0:
            raise ValueError(f"linger must be >= 0, got {linger}")
        if not isinstance(max_pump_failures, int) or max_pump_failures < 1:
            raise ValueError(
                f"max_pump_failures must be a positive int, got "
                f"{max_pump_failures}"
            )
        self._target = target
        self._is_fleet = hasattr(target, "rebuild_shard") and hasattr(
            target, "shards"
        )
        self._is_replica_set = not self._is_fleet and hasattr(target, "sync")
        if not self._is_fleet and not hasattr(target, "add_summary"):
            raise TypeError(
                "target must expose add_summary (a fleet, replica set or shard)"
            )
        self._batch_size = batch_size
        self._queue: queue.Queue = queue.Queue(maxsize=max_queue)
        self._clock = clock if clock is not None else SystemClock()
        if not isinstance(self._clock, Clock):
            raise TypeError("clock must be a Clock")
        self._drift = drift
        self._linger = float(linger)
        self._min_backoff = float(min_backoff)
        self._max_backoff = float(max_backoff)
        self._max_pump_failures = max_pump_failures
        self._pump_lock = make_lock("IngestPipeline._pump_lock")
        self._admit_lock = make_lock("IngestPipeline._admit_lock")
        # Enqueue time of every queued-but-uncommitted summary, oldest
        # first: the group-commit linger gates on the *head*, so the
        # first batch after an idle gap still coalesces.
        self._enqueued_at: collections.deque = collections.deque()
        # Un-applied remainder of a failed commit, recommitted before
        # anything newly queued (only touched under the pump lock).
        self._carry: list[VideoSummary] = []
        self._draining = False
        self._failed: BaseException | None = None
        self._last_error: str | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.submitted = 0
        self.ingested = 0
        self.rejected = 0
        self.shed = 0
        self.batches = 0
        self.rebuilds = 0
        self.pump_errors = 0

    # ------------------------------------------------------------------
    # Admission (producer side)
    # ------------------------------------------------------------------
    def submit(self, summary: VideoSummary) -> None:
        """Admit one summary, or shed with a typed backpressure error.

        All refusals happen *before* any work — the FrontDoor
        discipline: a shed costs the producer nothing but the retry.
        Admission runs under the same lock :meth:`drain` uses to raise
        its flag, so a summary is either visible to the drain's final
        flush or refused — never admitted-and-abandoned.
        """
        if not isinstance(summary, VideoSummary):
            raise TypeError("summary must be a VideoSummary")
        with self._admit_lock:
            if self._failed is not None:
                raise IngestFailed(
                    "ingest pump failed terminally "
                    f"({self._last_error}); see stats()['failed']"
                ) from self._failed
            if self._draining:
                self.shed += 1
                raise IngestDraining("pipeline is draining; resubmit later")
            try:
                self._queue.put_nowait(summary)
            except queue.Full:
                self.shed += 1
                raise IngestOverloaded(
                    f"ingest queue full ({self._queue.maxsize}); back off"
                ) from None
            self._enqueued_at.append(self._clock.now())
            self.submitted += 1

    @property
    def depth(self) -> int:
        """Admitted, uncommitted summaries (queued + carried by a retry)."""
        return self._queue.qsize() + len(self._carry)  # vilint: disable=guard-discipline -- monitoring read: _carry is reassigned (never mutated in place) under the pump lock, and a momentarily stale length must not block producers behind an in-flight commit

    # ------------------------------------------------------------------
    # Pump (consumer side)
    # ------------------------------------------------------------------
    def pump(self) -> int:
        """Drain the queue into batched commits; returns summaries committed.

        Safe to call concurrently with :meth:`start`'s worker — a pump
        lock serialises committers, and admission stays open throughout.
        A commit failure propagates to the caller; the batch's
        un-applied remainder is kept and recommitted by the next pump.
        """
        committed = 0
        with self._pump_lock:
            while True:
                batch = self._take_batch()
                if not batch:
                    return committed
                committed += self._commit_batch(batch)

    def _take_batch(self) -> list[VideoSummary]:
        """Assemble one batch: a failed commit's carry first, then the queue."""
        batch = self._carry
        self._carry = []
        while len(batch) < self._batch_size:
            try:
                batch.append(self._queue.get_nowait())
            except queue.Empty:
                break
            try:
                self._enqueued_at.popleft()
            except IndexError:
                pass
        return batch

    def _commit_batch(self, batch: list[VideoSummary]) -> int:
        try:
            gate = getattr(self._target, "write_gate", None)
            if gate is not None:
                with gate:
                    applied, landed = self._apply(batch)
            else:
                applied, landed = self._apply(batch)
        except Exception:
            # ``_apply`` consumes ``batch`` destructively, so whatever
            # it did not reach is still in it: keep that remainder for
            # the next pump instead of losing a dequeued batch.
            self._carry = batch
            raise
        self._after_commit(landed)
        return applied

    def _apply(self, batch: list[VideoSummary]) -> tuple[int, dict]:
        """Insert a batch and commit it durably.

        Returns ``(applied, landed)``: how many summaries landed, and
        per-shard-key counts for drift accounting.  The batch list is
        consumed front-to-back, so on failure it holds exactly the
        un-applied remainder.
        """
        applied = 0
        landed: dict = {}
        while batch:
            try:
                video_id = self._target.add_summary(batch[0])
            except (TypeError, ValueError):
                self.rejected += 1
                batch.pop(0)
                continue
            batch.pop(0)
            applied += 1
            self.ingested += 1
            key = self._shard_key(video_id) if self._is_fleet else "primary"
            if key is not None:
                landed[key] = landed.get(key, 0) + 1
        if applied and self._durable():
            # One checkpoint per batch: the whole batch becomes one WAL
            # transaction (and one shipped segment on a replica set).
            self._target.checkpoint()
        if self._is_replica_set:
            self._target.sync()
        self.batches += 1
        return applied, landed

    def _durable(self) -> bool:
        if self._is_fleet:
            return self._target.path is not None
        if self._is_replica_set:
            return True  # a replica set's primary is durable by contract
        return self._target.database.path is not None

    def _shard_key(self, video_id):
        """Stable drift key for a fleet insert: the shard *object*.

        ``rebalance()`` renumbers fleet positions when it inserts a
        shard, so a position captured here could charge drift (or aim a
        rebuild) at the wrong shard by the time it is used.  The shard
        object survives renumbering; :meth:`_position_of` resolves it
        back to a position at rebuild time.
        """
        position = self._target.shard_of(video_id)
        shards = self._target.shards
        return shards[position] if position < len(shards) else None

    def _position_of(self, key):
        """Current fleet position of a drift key, or ``None`` if gone."""
        for position, shard in enumerate(self._target.shards):
            if shard is key or getattr(shard, "inner", None) is key:
                return position
        return None

    def _after_commit(self, landed: dict) -> None:
        if self._drift is None or not landed:
            return
        for key, count in landed.items():
            index = self._index_of(key)
            if index is None:
                continue
            check = self._drift.observe(key, index, inserted=count)
            if check is not None and check.rebuild:
                self._rebuild(key)

    def _index_of(self, key):
        if self._is_fleet:
            return key.database.index
        if self._is_replica_set:
            return self._target.primary.database.index
        return self._target.database.index

    def _rebuild(self, key) -> None:
        if self._is_fleet:
            position = self._position_of(key)
            if position is None:
                # The shard left the fleet between the commit and this
                # rebuild (rebalance/removal); drop its stale counters.
                self._drift.forget(key)
                return
            self._target.rebuild_shard(position)
        elif self._is_replica_set:
            # Same discipline as _commit_batch: the cutover detaches the
            # primary's database and resets engine state, so in-flight
            # primary-routed reads must be excluded for its duration.
            with self._target.write_gate:
                rebuild_online(
                    self._target.primary, shipper=self._target.shipper
                )
                self._target.sync()
        else:
            rebuild_online(self._target)
        self._drift.forget(key)
        self.rebuilds += 1

    # ------------------------------------------------------------------
    # Background worker
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Run the pump on a background thread until :meth:`stop`."""
        if self._thread is not None:
            raise RuntimeError("pipeline worker already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="ingest-pump", daemon=True
        )
        self._thread.start()

    def _ready_to_commit(self) -> bool:
        """Group-commit gate: full batch now, partial batch after linger."""
        if self._carry:
            return True  # a failed commit's remainder retries first
        depth = self._queue.qsize()
        if depth >= self._batch_size:
            return True
        if depth == 0:
            return False
        if self._linger <= 0.0:
            return True
        try:
            oldest = self._enqueued_at[0]
        except IndexError:
            return True
        return self._clock.now() - oldest >= self._linger

    def _pump_once(self) -> int:
        """Commit at most one batch, honouring the group-commit gate.

        The worker's pump path: unlike :meth:`pump` it leaves a
        not-yet-lingered partial batch queued, so a paced trickle of
        writes coalesces instead of committing summary by summary.
        """
        with self._pump_lock:
            if not self._ready_to_commit():
                return 0
            batch = self._take_batch()
            if not batch:
                return 0
            return self._commit_batch(batch)

    def _run(self) -> None:
        backoff = self._min_backoff
        failures = 0
        while not self._stop.is_set():
            try:
                committed = self._pump_once()
            except Exception as exc:
                # A dead pump thread must never be silent: record every
                # failure, retry with backoff (a concurrent maintenance
                # window is transient), and past the consecutive-failure
                # budget park the pipeline in a state submit() reports.
                self.pump_errors += 1
                failures += 1
                self._last_error = f"{type(exc).__name__}: {exc}"
                if failures >= self._max_pump_failures:
                    self._failed = exc
                    return
                self._clock.sleep(backoff)
                backoff = min(backoff * 2.0, self._max_backoff)
                continue
            failures = 0
            if committed > 0:
                backoff = self._min_backoff
            else:
                self._clock.sleep(backoff)
                backoff = min(backoff * 2.0, self._max_backoff)

    def stop(self) -> None:
        """Stop the background worker (queued work stays queued)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def drain(self) -> int:
        """Refuse new work, stop the worker, commit everything queued.

        Returns the number of summaries committed by the final pump.
        The draining flag is raised under the admission lock, so every
        summary counted ``submitted`` is either already in the queue
        when the final pump runs or was refused with a typed shed —
        nothing admitted is left volatile.  The front door drains
        ingest *before* its query drain so the last admitted writes are
        durable when the process exits.
        """
        with self._admit_lock:
            self._draining = True
        self.stop()
        return self.pump()

    def close(self) -> None:
        """Alias for :meth:`drain` (context-manager friendly)."""
        self.drain()

    def __enter__(self) -> "IngestPipeline":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counters snapshot (submitted/ingested/rejected/shed/...).

        Taken under both the pump and admission locks so commit-side
        *and* producer-side counters are each a consistent cut (never
        mid-batch, never mid-submit).  ``pump_errors`` counts every
        commit failure the worker survived; ``failed`` is ``None`` while
        healthy, else the terminal error message.
        """
        with self._pump_lock:
            with self._admit_lock:
                return {
                    "submitted": self.submitted,
                    "ingested": self.ingested,
                    "rejected": self.rejected,
                    "shed": self.shed,
                    "batches": self.batches,
                    "rebuilds": self.rebuilds,
                    "depth": self.depth,
                    "draining": self._draining,
                    "pump_errors": self.pump_errors,
                    "failed": (
                        self._last_error if self._failed is not None else None
                    ),
                    "drift_checks": self._drift.checks if self._drift else 0,
                }

    def __repr__(self) -> str:
        with self._pump_lock:
            return (
                f"IngestPipeline(ingested={self.ingested}, "
                f"depth={self.depth}, rebuilds={self.rebuilds})"
            )
