"""Streaming ingest: bounded admission, WAL-batched commits, typed sheds.

:class:`IngestPipeline` is the write-side front door.  Producers
:meth:`~IngestPipeline.submit` summaries into a bounded queue; a pump
(inline or a background thread) drains them in batches into the target
— a sharded fleet, a replica set, or a bare shard — and commits each
batch as **one** WAL transaction, so a replica set ships it as one
chained segment and a crash can only lose whole batches, never split
one.

The admission discipline mirrors :class:`repro.serve.FrontDoor`: a full
queue or a draining pipeline sheds with a *typed* error before any work
is done — :class:`IngestOverloaded` / :class:`IngestDraining`, both
:class:`IngestBackpressure` — so producers can tell "back off and
retry" from a real failure, exactly like the read path's 429-shaped
refusals.

With a :class:`~repro.ingest.drift.DriftMonitor` attached, every
committed batch feeds per-shard insert counts; when a measurement says
the principal angle drifted past the threshold, the pipeline launches
the online rebuild (:mod:`repro.ingest.cutover`) on the affected shard
— through the router's maintenance window for fleets, directly for a
bare shard or replica set — while queries keep being served.

All timing (pump backoff, drift floors) reads the injected
:class:`~repro.utils.clock.Clock` (VIL007): a virtual-clock test replays
the pipeline's entire schedule deterministically.
"""

from __future__ import annotations

# vilint: disable-file=blocking-while-locked -- the pump lock exists
# precisely to serialise committers: a commit IS durable I/O (batch
# checkpoint, online rebuild's side build + pointer swap), and holding
# the lock across it is the invariant the oracle-checkpoint quiesce and
# the one-segment-per-batch contract rely on.  Admission (submit) never
# takes this lock, so producers are not blocked by an in-flight commit.

import queue
import threading

from repro.core.vitri import VideoSummary
from repro.ingest.cutover import rebuild_online
from repro.ingest.drift import DriftMonitor
from repro.utils.clock import Clock, SystemClock
from repro.utils.locks import make_lock

__all__ = [
    "IngestBackpressure",
    "IngestDraining",
    "IngestOverloaded",
    "IngestPipeline",
]


class IngestBackpressure(RuntimeError):
    """Base of the pipeline's typed sheds (retriable by construction)."""


class IngestOverloaded(IngestBackpressure):
    """The admission queue is full; back off and resubmit."""


class IngestDraining(IngestBackpressure):
    """The pipeline is draining/closed; no new work is admitted."""


class IngestPipeline:
    """Bounded, batching ingest into a live serving target.

    Parameters
    ----------
    target:
        Where summaries land, duck-typed by capability:

        * a sharded fleet (``rebuild_shard`` + ``shards``) — inserts
          route through the partitioner, drift is tracked per shard and
          rebuilds go through the router's maintenance window;
        * a replica set (``sync`` + ``primary``) — inserts hit the
          primary under its ``write_gate``, each batch commit seals one
          segment, then :meth:`sync` pumps the replicas;
        * a bare shard (``database``) — the single-index case.
    batch_size:
        Summaries per commit (one WAL transaction / shipped segment).
    max_queue:
        Admission bound; a full queue sheds :class:`IngestOverloaded`.
    clock:
        Injected clock for pump backoff (defaults to the system clock).
    drift:
        Optional :class:`DriftMonitor`; ``None`` disables drift-triggered
        rebuilds.
    linger:
        Group-commit window for the *background* worker: a partial batch
        is held up to this many seconds (on the injected clock) waiting
        for more summaries before it commits, so a paced trickle of
        writes produces full batches — and full-batch commit cadence —
        instead of one tiny commit (and one round of engine/cache
        invalidation) per summary.  ``0`` (the default) commits whatever
        is queued immediately.  A full batch never waits, and
        :meth:`pump`/:meth:`drain` always flush regardless.
    min_backoff / max_backoff:
        Idle-pump sleep bounds for the background worker (deterministic
        doubling, no jitter — reruns replay identically).
    """

    def __init__(
        self,
        target,
        *,
        batch_size: int = 32,
        max_queue: int = 256,
        clock: Clock | None = None,
        drift: DriftMonitor | None = None,
        linger: float = 0.0,
        min_backoff: float = 0.005,
        max_backoff: float = 0.25,
    ) -> None:
        if not isinstance(batch_size, int) or batch_size < 1:
            raise ValueError(f"batch_size must be a positive int, got {batch_size}")
        if not isinstance(max_queue, int) or max_queue < 1:
            raise ValueError(f"max_queue must be a positive int, got {max_queue}")
        if drift is not None and not isinstance(drift, DriftMonitor):
            raise TypeError("drift must be a DriftMonitor")
        if not (0 < min_backoff <= max_backoff):
            raise ValueError(
                f"need 0 < min_backoff <= max_backoff, got "
                f"{min_backoff}/{max_backoff}"
            )
        if linger < 0:
            raise ValueError(f"linger must be >= 0, got {linger}")
        self._target = target
        self._is_fleet = hasattr(target, "rebuild_shard") and hasattr(
            target, "shards"
        )
        self._is_replica_set = not self._is_fleet and hasattr(target, "sync")
        if not self._is_fleet and not hasattr(target, "add_summary"):
            raise TypeError(
                "target must expose add_summary (a fleet, replica set or shard)"
            )
        self._batch_size = batch_size
        self._queue: queue.Queue = queue.Queue(maxsize=max_queue)
        self._clock = clock if clock is not None else SystemClock()
        if not isinstance(self._clock, Clock):
            raise TypeError("clock must be a Clock")
        self._drift = drift
        self._linger = float(linger)
        self._last_commit = self._clock.now()
        self._min_backoff = float(min_backoff)
        self._max_backoff = float(max_backoff)
        self._pump_lock = make_lock("IngestPipeline._pump_lock")
        self._draining = False
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.submitted = 0
        self.ingested = 0
        self.rejected = 0
        self.shed = 0
        self.batches = 0
        self.rebuilds = 0

    # ------------------------------------------------------------------
    # Admission (producer side)
    # ------------------------------------------------------------------
    def submit(self, summary: VideoSummary) -> None:
        """Admit one summary, or shed with a typed backpressure error.

        Both refusals happen *before* any work — the FrontDoor
        discipline: a shed costs the producer nothing but the retry.
        """
        if self._draining:
            self.shed += 1
            raise IngestDraining("pipeline is draining; resubmit later")
        if not isinstance(summary, VideoSummary):
            raise TypeError("summary must be a VideoSummary")
        try:
            self._queue.put_nowait(summary)
        except queue.Full:
            self.shed += 1
            raise IngestOverloaded(
                f"ingest queue full ({self._queue.maxsize}); back off"
            ) from None
        self.submitted += 1

    @property
    def depth(self) -> int:
        """Currently queued (admitted, uncommitted) summaries."""
        return self._queue.qsize()

    # ------------------------------------------------------------------
    # Pump (consumer side)
    # ------------------------------------------------------------------
    def pump(self) -> int:
        """Drain the queue into batched commits; returns summaries committed.

        Safe to call concurrently with :meth:`start`'s worker — a pump
        lock serialises committers, and admission stays open throughout.
        """
        committed = 0
        with self._pump_lock:
            while True:
                batch: list[VideoSummary] = []
                while len(batch) < self._batch_size:
                    try:
                        batch.append(self._queue.get_nowait())
                    except queue.Empty:
                        break
                if not batch:
                    return committed
                committed += self._commit_batch(batch)

    def _commit_batch(self, batch: list[VideoSummary]) -> int:
        gate = getattr(self._target, "write_gate", None)
        if gate is not None:
            with gate:
                landed = self._apply(batch)
        else:
            landed = self._apply(batch)
        self._last_commit = self._clock.now()
        self._after_commit(landed)
        return sum(landed.values())

    def _apply(self, batch: list[VideoSummary]) -> dict:
        """Insert a batch and commit it durably; returns per-key counts."""
        landed: dict = {}
        for summary in batch:
            try:
                video_id = self._target.add_summary(summary)
            except (TypeError, ValueError):
                self.rejected += 1
                continue
            key = (
                self._target.shard_of(video_id) if self._is_fleet else "primary"
            )
            landed[key] = landed.get(key, 0) + 1
            self.ingested += 1
        if landed and self._durable():
            # One checkpoint per batch: the whole batch becomes one WAL
            # transaction (and one shipped segment on a replica set).
            self._target.checkpoint()
        if self._is_replica_set:
            self._target.sync()
        self.batches += 1
        return landed

    def _durable(self) -> bool:
        if self._is_fleet:
            return self._target.path is not None
        if self._is_replica_set:
            return True  # a replica set's primary is durable by contract
        return self._target.database.path is not None

    def _after_commit(self, landed: dict) -> None:
        if self._drift is None or not landed:
            return
        for key, count in landed.items():
            index = self._index_of(key)
            if index is None:
                continue
            check = self._drift.observe(key, index, inserted=count)
            if check is not None and check.rebuild:
                self._rebuild(key)

    def _index_of(self, key):
        if self._is_fleet:
            return self._target.shards[key].database.index
        if self._is_replica_set:
            return self._target.primary.database.index
        return self._target.database.index

    def _rebuild(self, key) -> None:
        if self._is_fleet:
            self._target.rebuild_shard(key)
        elif self._is_replica_set:
            rebuild_online(self._target.primary, shipper=self._target.shipper)
            self._target.sync()
        else:
            rebuild_online(self._target)
        self._drift.forget(key)
        self.rebuilds += 1

    # ------------------------------------------------------------------
    # Background worker
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Run the pump on a background thread until :meth:`stop`."""
        if self._thread is not None:
            raise RuntimeError("pipeline worker already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="ingest-pump", daemon=True
        )
        self._thread.start()

    def _ready_to_commit(self) -> bool:
        """Group-commit gate: full batch now, partial batch after linger."""
        depth = self.depth
        if depth >= self._batch_size:
            return True
        if depth == 0:
            return False
        if self._linger <= 0.0:
            return True
        return self._clock.now() - self._last_commit >= self._linger

    def _pump_once(self) -> int:
        """Commit at most one batch, honouring the group-commit gate.

        The worker's pump path: unlike :meth:`pump` it leaves a
        not-yet-lingered partial batch queued, so a paced trickle of
        writes coalesces instead of committing summary by summary.
        """
        with self._pump_lock:
            if not self._ready_to_commit():
                return 0
            batch: list[VideoSummary] = []
            while len(batch) < self._batch_size:
                try:
                    batch.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            if not batch:
                return 0
            return self._commit_batch(batch)

    def _run(self) -> None:
        backoff = self._min_backoff
        while not self._stop.is_set():
            if self._pump_once() > 0:
                backoff = self._min_backoff
            else:
                self._clock.sleep(backoff)
                backoff = min(backoff * 2.0, self._max_backoff)

    def stop(self) -> None:
        """Stop the background worker (queued work stays queued)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def drain(self) -> int:
        """Refuse new work, stop the worker, commit everything queued.

        Returns the number of summaries committed by the final pump.
        The front door drains ingest *before* its query drain so the
        last admitted writes are durable when the process exits.
        """
        self._draining = True
        self.stop()
        return self.pump()

    def close(self) -> None:
        """Alias for :meth:`drain` (context-manager friendly)."""
        self.drain()

    def __enter__(self) -> "IngestPipeline":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counters snapshot (submitted/ingested/rejected/shed/...).

        Taken under the pump lock so the commit-side counters are a
        consistent cut (never mid-batch).
        """
        with self._pump_lock:
            return {
                "submitted": self.submitted,
                "ingested": self.ingested,
                "rejected": self.rejected,
                "shed": self.shed,
                "batches": self.batches,
                "rebuilds": self.rebuilds,
                "depth": self.depth,
                "draining": self._draining,
                "drift_checks": self._drift.checks if self._drift else 0,
            }

    def __repr__(self) -> str:
        with self._pump_lock:
            return (
                f"IngestPipeline(ingested={self.ingested}, "
                f"depth={self.depth}, rebuilds={self.rebuilds})"
            )
