"""Log-space hypersphere / hypercap / hypersector / hypercone volumes.

The paper's formulas (Section 3.2) are factorial series that overflow or
underflow float64 quickly as the dimensionality grows (a 64-dimensional unit
ball has volume ~4.7e-39; its reciprocal appears in every ViTri density).
Production code therefore works with:

* ``log_sphere_volume`` — ``(n/2)·ln(pi) - lnGamma(n/2 + 1) + n·ln(R)``;
* ``cap_fraction`` — the hyperspherical-cap volume as a *fraction* of the
  full ball, via the regularised incomplete beta function
  ``(1/2) · I_{sin^2(alpha)}((n+1)/2, 1/2)`` (Li 2011), extended to obtuse
  colatitude angles by symmetry;
* ``sector_fraction`` — the solid-angle fraction
  ``(1/2) · I_{sin^2(alpha)}((n-1)/2, 1/2)``.

The cone volume uses the paper's closed form (it is a single product, so a
direct log-space evaluation is exact).  ``sector = cap + cone`` holds for
acute angles and is asserted in the tests against both code paths.
"""

from __future__ import annotations

import math

from scipy import special

from repro.utils.validation import check_non_negative

__all__ = [
    "cap_fraction",
    "cap_volume",
    "cone_volume",
    "log_cap_fraction",
    "log_cap_volume",
    "log_sphere_volume",
    "log_unit_sphere_volume",
    "sector_fraction",
    "sector_volume",
    "sphere_volume",
]

_HALF_PI = math.pi / 2.0


def _check_dimension(n: int) -> int:
    if not isinstance(n, int) or isinstance(n, bool):
        raise TypeError(f"dimension n must be an int, got {type(n).__name__}")
    if n < 1:
        raise ValueError(f"dimension n must be >= 1, got {n}")
    return n


def _check_angle(alpha: float, *, max_angle: float = math.pi) -> float:
    alpha = float(alpha)
    if not math.isfinite(alpha) or alpha < 0.0 or alpha > max_angle + 1e-12:
        raise ValueError(
            f"angle must lie in [0, {max_angle:.6g}], got {alpha}"
        )
    return min(alpha, max_angle)


def log_unit_sphere_volume(n: int) -> float:
    """Natural log of the volume of the unit ball in ``n`` dimensions."""
    n = _check_dimension(n)
    return (n / 2.0) * math.log(math.pi) - special.gammaln(n / 2.0 + 1.0)


def log_sphere_volume(n: int, radius: float) -> float:
    """Natural log of ``V_hypersphere(O, R)``; ``-inf`` for zero radius."""
    n = _check_dimension(n)
    radius = check_non_negative(radius, "radius")
    if radius <= 0.0:
        return -math.inf
    return log_unit_sphere_volume(n) + n * math.log(radius)


def sphere_volume(n: int, radius: float) -> float:
    """Volume of an ``n``-dimensional hypersphere of the given radius.

    Overflows to ``inf`` / underflows to ``0.0`` gracefully for extreme
    inputs; use :func:`log_sphere_volume` when the magnitude matters.
    """
    log_volume = log_sphere_volume(n, radius)
    return math.exp(log_volume) if log_volume > -math.inf else 0.0


def _log_betainc_half(a: float, sin2: float) -> float:
    """``ln I_x(a, 1/2)`` with ``x = sin2``, robust to underflow.

    ``scipy.special.betainc`` returns exactly 0.0 once the true value drops
    below ~1e-308.  In that regime the leading term of the power series
    ``I_x(a, b) = x^a (1-x)^(b-1) / (a B(a, b)) (1 + O(x))`` is an accurate
    log-scale approximation, so we fall back to it.
    """
    if sin2 <= 0.0:
        return -math.inf
    if sin2 >= 1.0:
        return 0.0
    value = special.betainc(a, 0.5, sin2)
    if value > 0.0:
        return math.log(value)
    log_beta = special.betaln(a, 0.5)
    return (
        a * math.log(sin2)
        - 0.5 * math.log1p(-sin2)
        - math.log(a)
        - log_beta
    )


def log_cap_fraction(n: int, alpha: float) -> float:
    """Natural log of :func:`cap_fraction`; ``-inf`` for a zero-angle cap."""
    n = _check_dimension(n)
    alpha = _check_angle(alpha)
    if alpha <= 0.0:
        return -math.inf
    if alpha >= math.pi:
        return 0.0
    sin2 = math.sin(alpha) ** 2
    log_half_i = math.log(0.5) + _log_betainc_half((n + 1) / 2.0, sin2)
    if alpha <= _HALF_PI:
        return log_half_i
    # Obtuse colatitude: cap is the whole ball minus the opposite acute cap.
    return math.log1p(-math.exp(log_half_i)) if log_half_i < 0.0 else 0.0


def cap_fraction(n: int, alpha: float) -> float:
    """Hyperspherical-cap volume as a fraction of the full ball volume.

    Parameters
    ----------
    n:
        Dimensionality of the space.
    alpha:
        Colatitude angle in radians, measured at the sphere centre between
        the cap's axis and its boundary.  ``alpha = pi/2`` gives half the
        ball; ``alpha = pi`` gives the whole ball.
    """
    n = _check_dimension(n)
    alpha = _check_angle(alpha)
    if alpha <= 0.0:
        return 0.0
    if alpha >= math.pi:
        return 1.0
    sin2 = math.sin(alpha) ** 2
    half_i = 0.5 * special.betainc((n + 1) / 2.0, 0.5, sin2)
    if alpha <= _HALF_PI:
        return half_i
    return 1.0 - half_i


def log_cap_volume(n: int, radius: float, alpha: float) -> float:
    """Natural log of ``V_hypercap(O, R, alpha)``."""
    log_fraction = log_cap_fraction(n, alpha)
    if log_fraction == -math.inf:
        return -math.inf
    return log_fraction + log_sphere_volume(n, radius)


def cap_volume(n: int, radius: float, alpha: float) -> float:
    """Volume of the hypercap of colatitude ``alpha`` cut from a ball."""
    log_volume = log_cap_volume(n, radius, alpha)
    return math.exp(log_volume) if log_volume > -math.inf else 0.0


def sector_fraction(n: int, alpha: float) -> float:
    """Hypersector volume as a fraction of the full ball volume.

    The sector of half-angle ``alpha`` is the set of ball points whose
    direction lies within ``alpha`` of the axis, so its volume fraction
    equals the solid-angle fraction
    ``(1/2) I_{sin^2(alpha)}((n-1)/2, 1/2)`` for acute angles.
    """
    n = _check_dimension(n)
    alpha = _check_angle(alpha)
    if n == 1:
        # In one dimension the "sector" degenerates: alpha < pi selects one
        # ray (half the ball), alpha = pi selects both.
        return 1.0 if alpha >= math.pi else (0.5 if alpha > 0.0 else 0.0)
    if alpha <= 0.0:
        return 0.0
    if alpha >= math.pi:
        return 1.0
    sin2 = math.sin(alpha) ** 2
    half_i = 0.5 * special.betainc((n - 1) / 2.0, 0.5, sin2)
    if alpha <= _HALF_PI:
        return half_i
    return 1.0 - half_i


def sector_volume(n: int, radius: float, alpha: float) -> float:
    """Volume of ``V_hypersector(O, R, alpha)``."""
    fraction = sector_fraction(n, alpha)
    if fraction <= 0.0:
        return 0.0
    return fraction * sphere_volume(n, radius)


def cone_volume(n: int, radius: float, alpha: float) -> float:
    """Volume of ``V_hypercone(O, R, alpha)`` (paper's closed form).

    The cone has its apex at the sphere centre, half-angle ``alpha``
    (must be acute; for obtuse angles the paper's decomposition no longer
    applies) and its base on the chord hyperplane at distance
    ``R cos(alpha)``:

    ``V = R^n * pi^((n-1)/2) / (n * Gamma((n+1)/2)) * cos(alpha) * sin(alpha)^(n-1)``
    """
    n = _check_dimension(n)
    radius = check_non_negative(radius, "radius")
    alpha = _check_angle(alpha, max_angle=_HALF_PI)
    if radius <= 0.0 or alpha <= 0.0:
        return 0.0
    sin_a = math.sin(alpha)
    cos_a = math.cos(alpha)
    if sin_a <= 0.0 or cos_a <= 0.0:
        return 0.0
    log_volume = (
        n * math.log(radius)
        + ((n - 1) / 2.0) * math.log(math.pi)
        - math.log(n)
        - special.gammaln((n + 1) / 2.0)
        + math.log(cos_a)
        + (n - 1) * math.log(sin_a)
    )
    return math.exp(log_volume)
