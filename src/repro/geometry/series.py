"""The paper's explicit even/odd volume series (Section 3.2).

These are the factorial-series forms the paper prints for the hypersphere,
hypersector, hypercone and hypercap.  They are exact for small ``n`` but
overflow float64 for large ``n``; production code uses
:mod:`repro.geometry.volumes` instead.  The test suite cross-validates the
two implementations.

Two typographical errors in the paper's formulas were corrected (verified
against closed forms in 2-6 dimensions and against the regularised
incomplete-beta implementation):

* the odd-``n`` sector/cap coefficient is
  ``2^n * pi^((n-1)/2) * ((n+1)/2)! / (n+1)!``
  (the paper prints ``((n+1)/2)`` without the factorial, which fails for
  ``n = 5``);
* the hypercone volume is computed from the exact pyramid identity
  ``V_cone = V_{n-1}(R sin(alpha)) * R cos(alpha) / n``
  (the paper's printed even-``n`` coefficient ``2^(n-1) pi^((n-2)/2) / n!``
  disagrees with this identity — and with cap = sector - cone — from
  ``n = 6`` on).

The paper's structural claim *does* hold with these corrections: the
hypercap series is identical to the hypersector series except that the sum
runs one term further, and that extra term equals the hypercone volume.
"""

from __future__ import annotations

import math

from repro.utils.validation import check_non_negative

__all__ = [
    "cap_volume_series",
    "cone_volume_series",
    "sector_volume_series",
    "sphere_volume_series",
]

_HALF_PI = math.pi / 2.0


def _check_dimension(n: int, *, minimum: int = 1) -> int:
    if not isinstance(n, int) or isinstance(n, bool):
        raise TypeError(f"dimension n must be an int, got {type(n).__name__}")
    if n < minimum:
        raise ValueError(f"dimension n must be >= {minimum}, got {n}")
    return n


def _check_acute_angle(alpha: float) -> float:
    alpha = float(alpha)
    if not math.isfinite(alpha) or alpha < 0.0 or alpha > _HALF_PI + 1e-12:
        raise ValueError(f"angle must lie in [0, pi/2], got {alpha}")
    return min(alpha, _HALF_PI)


def sphere_volume_series(n: int, radius: float) -> float:
    """Hypersphere volume via the paper's even/odd factorial forms.

    Even ``n``: ``pi^(n/2) / (n/2)! * R^n``.
    Odd ``n``:  ``2^(n+1) * pi^((n-1)/2) * ((n+1)/2)! / (n+1)! * R^n``.
    """
    n = _check_dimension(n)
    radius = check_non_negative(radius, "radius")
    if n % 2 == 0:
        coefficient = math.pi ** (n // 2) / math.factorial(n // 2)
    else:
        coefficient = (
            2.0 ** (n + 1)
            * math.pi ** ((n - 1) // 2)
            * math.factorial((n + 1) // 2)
            / math.factorial(n + 1)
        )
    return coefficient * radius**n


def _even_series(alpha: float, top: int) -> float:
    """``alpha - cos(a) * sum_{i=0}^{top} 4^i (i!)^2 / (2i+1)! sin(a)^(2i+1)``."""
    if top < 0:
        return alpha
    sin_a = math.sin(alpha)
    cos_a = math.cos(alpha)
    total = 0.0
    for i in range(top + 1):
        term = (
            4.0**i
            * math.factorial(i) ** 2
            / math.factorial(2 * i + 1)
            * sin_a ** (2 * i + 1)
        )
        total += term
    return alpha - cos_a * total


def _odd_series(alpha: float, top: int) -> float:
    """``1 - cos(a) * sum_{i=0}^{top} C(2i, i) / 4^i * sin(a)^(2i)``."""
    if top < 0:
        return 1.0
    sin_a = math.sin(alpha)
    cos_a = math.cos(alpha)
    total = 0.0
    for i in range(top + 1):
        term = math.comb(2 * i, i) / 4.0**i * sin_a ** (2 * i)
        total += term
    return 1.0 - cos_a * total


def _even_coefficient(n: int, radius: float) -> float:
    return radius**n * math.pi ** ((n - 2) // 2) / math.factorial(n // 2)


def _odd_coefficient(n: int, radius: float) -> float:
    return (
        radius**n
        * 2.0**n
        * math.pi ** ((n - 1) // 2)
        * math.factorial((n + 1) // 2)
        / math.factorial(n + 1)
    )


def sector_volume_series(n: int, radius: float, alpha: float) -> float:
    """Hypersector volume via the paper's series (acute ``alpha`` only)."""
    n = _check_dimension(n, minimum=2)
    radius = check_non_negative(radius, "radius")
    alpha = _check_acute_angle(alpha)
    if radius <= 0.0 or alpha <= 0.0:
        return 0.0
    if n % 2 == 0:
        return _even_coefficient(n, radius) * _even_series(alpha, (n - 4) // 2)
    return _odd_coefficient(n, radius) * _odd_series(alpha, (n - 3) // 2)


def cap_volume_series(n: int, radius: float, alpha: float) -> float:
    """Hypercap volume via the paper's series: the hypersector series with
    the sum extended by one term (acute ``alpha`` only)."""
    n = _check_dimension(n, minimum=2)
    radius = check_non_negative(radius, "radius")
    alpha = _check_acute_angle(alpha)
    if radius <= 0.0 or alpha <= 0.0:
        return 0.0
    if n % 2 == 0:
        return _even_coefficient(n, radius) * _even_series(alpha, (n - 2) // 2)
    return _odd_coefficient(n, radius) * _odd_series(alpha, (n - 1) // 2)


def cone_volume_series(n: int, radius: float, alpha: float) -> float:
    """Hypercone volume via the exact pyramid identity.

    ``V_cone(n, R, alpha) = V_{n-1}(R sin(alpha)) * R cos(alpha) / n``
    where the base is an ``(n-1)``-ball on the chord hyperplane.
    """
    n = _check_dimension(n, minimum=2)
    radius = check_non_negative(radius, "radius")
    alpha = _check_acute_angle(alpha)
    if radius <= 0.0 or alpha <= 0.0:
        return 0.0
    base = sphere_volume_series(n - 1, radius * math.sin(alpha))
    height = radius * math.cos(alpha)
    return base * height / n
