"""Sphere-sphere intersection volume (paper Section 4.2).

Given two hyperspheres ``(O1, R1)`` and ``(O2, R2)`` at centre distance
``d``, the paper distinguishes four cases (with ``R1 >= R2``):

1. ``d >= R1 + R2`` — disjoint, intersection volume 0;
2. ``R2 <= d < R1 + R2`` — a lens, both boundary angles acute: the sum of
   the two hypercaps cut by the radical hyperplane;
3. ``R1 - R2 <= d < R2`` — a lens where the radical hyperplane lies beyond
   ``O2``: the cap of sphere 1 plus (sphere 2 minus its opposite cap);
4. ``d < R1 - R2`` — containment, the volume of the smaller sphere.

Cases 2 and 3 collapse to a single expression once the cap volume is
defined for obtuse colatitude angles (which
:func:`repro.geometry.volumes.cap_fraction` is), because for case 3 the
angle ``beta = arccos(x2 / R2)`` is obtuse and
``cap(R2, beta) = sphere(R2) - cap(R2, pi - beta)`` — exactly the paper's
case-3 formula.  :func:`classify_intersection` still reports the literal
paper case for tests and instrumentation.

All production maths is done on volume *ratios* in log space so the results
stay finite for any dimensionality.
"""

from __future__ import annotations

import enum
import math

import numpy as np

from repro.geometry.volumes import (
    log_cap_fraction,
    log_sphere_volume,
)
from repro.utils.validation import check_non_negative

__all__ = [
    "IntersectionCase",
    "classify_intersection",
    "intersection_fraction_of_smaller",
    "intersection_volume",
    "log_intersection_volume",
]


class IntersectionCase(enum.Enum):
    """The paper's four-way case analysis for two hyperspheres."""

    DISJOINT = 1
    LENS_ACUTE = 2
    LENS_OBTUSE = 3
    CONTAINED = 4


def _order_radii(r1: float, r2: float) -> tuple[float, float]:
    """Return (larger, smaller); the analysis assumes ``R1 >= R2``."""
    r1 = check_non_negative(r1, "r1")
    r2 = check_non_negative(r2, "r2")
    if r1 >= r2:
        return r1, r2
    return r2, r1


def classify_intersection(r1: float, r2: float, distance: float) -> IntersectionCase:
    """Classify the configuration of two spheres per the paper's cases.

    Parameters
    ----------
    r1, r2:
        Sphere radii (order does not matter).
    distance:
        Distance between the two centres.
    """
    big, small = _order_radii(r1, r2)
    distance = check_non_negative(distance, "distance")
    if distance >= big + small:
        return IntersectionCase.DISJOINT
    if distance < big - small:
        return IntersectionCase.CONTAINED
    if distance >= small:
        return IntersectionCase.LENS_ACUTE
    return IntersectionCase.LENS_OBTUSE


def _boundary_angles(big: float, small: float, distance: float) -> tuple[float, float]:
    """Half-angles ``alpha`` (larger sphere) and ``beta`` (smaller sphere).

    Derived from the radical hyperplane: its signed distance from the large
    centre along the centre line is ``x1 = (d^2 + R1^2 - R2^2) / (2d)``, so
    ``alpha = arccos(x1 / R1)`` and ``beta = arccos((d - x1) / R2)``.
    ``beta`` comes out obtuse automatically in the paper's case 3.
    """
    x1 = (distance * distance + big * big - small * small) / (2.0 * distance)
    cos_alpha = np.clip(x1 / big, -1.0, 1.0)
    cos_beta = np.clip((distance - x1) / small, -1.0, 1.0)
    return math.acos(cos_alpha), math.acos(cos_beta)


def log_intersection_volume(n: int, r1: float, r2: float, distance: float) -> float:
    """Natural log of the intersection volume; ``-inf`` when disjoint.

    Parameters
    ----------
    n:
        Dimensionality of the space.
    r1, r2:
        Sphere radii (order does not matter).
    distance:
        Distance between the centres.
    """
    big, small = _order_radii(r1, r2)
    distance = check_non_negative(distance, "distance")
    case = classify_intersection(big, small, distance)
    if case is IntersectionCase.DISJOINT or small <= 0.0:
        return -math.inf
    if case is IntersectionCase.CONTAINED or distance <= 0.0:
        return log_sphere_volume(n, small)
    alpha, beta = _boundary_angles(big, small, distance)
    log_cap_big = log_cap_fraction(n, alpha) + log_sphere_volume(n, big)
    log_cap_small = log_cap_fraction(n, beta) + log_sphere_volume(n, small)
    return float(np.logaddexp(log_cap_big, log_cap_small))


def intersection_volume(n: int, r1: float, r2: float, distance: float) -> float:
    """Intersection volume of two hyperspheres (may underflow for large n;
    prefer :func:`log_intersection_volume` or
    :func:`intersection_fraction_of_smaller` in production paths)."""
    log_volume = log_intersection_volume(n, r1, r2, distance)
    return math.exp(log_volume) if log_volume > -math.inf else 0.0


def intersection_fraction_of_smaller(
    n: int, r1: float, r2: float, distance: float
) -> float:
    """Intersection volume as a fraction of the smaller sphere's volume.

    This is the quantity that drives the estimated-shared-frames computation:
    it always lies in ``[0, 1]`` and never under/overflows, regardless of
    dimensionality.
    """
    big, small = _order_radii(r1, r2)
    if small <= 0.0:
        # A point-mass sphere: fully covered iff its centre is inside the
        # other sphere (boundary inclusive).
        distance = check_non_negative(distance, "distance")
        return 1.0 if distance <= big else 0.0
    log_volume = log_intersection_volume(n, big, small, distance)
    if log_volume == -math.inf:
        return 0.0
    fraction = math.exp(log_volume - log_sphere_volume(n, small))
    return min(fraction, 1.0)
