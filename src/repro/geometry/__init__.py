"""n-dimensional geometry for ViTri (paper Section 3.2).

Two parallel implementations are provided:

* :mod:`repro.geometry.volumes` — production code paths in **log space**,
  built on the regularised incomplete beta function.  These stay inside
  float range for any dimensionality (the volume of a unit 64-ball is
  ~4.7e-39, and ViTri densities are its reciprocal scale).
* :mod:`repro.geometry.series` — the paper's literal even/odd factorial
  series for hypersphere, hypersector, hypercone and hypercap.  They are
  exact for small ``n`` and are cross-validated against the log-space code
  in the test suite.

:mod:`repro.geometry.intersection` implements the sphere-sphere intersection
volume with the paper's four-case analysis (Section 4.2).
"""

from __future__ import annotations

from repro.geometry.intersection import (
    IntersectionCase,
    classify_intersection,
    intersection_fraction_of_smaller,
    intersection_volume,
    log_intersection_volume,
)
from repro.geometry.volumes import (
    cap_fraction,
    cap_volume,
    cone_volume,
    log_cap_volume,
    log_sphere_volume,
    log_unit_sphere_volume,
    sector_fraction,
    sector_volume,
    sphere_volume,
)

__all__ = [
    "IntersectionCase",
    "classify_intersection",
    "intersection_fraction_of_smaller",
    "intersection_volume",
    "log_intersection_volume",
    "cap_fraction",
    "cap_volume",
    "cone_volume",
    "log_cap_volume",
    "log_sphere_volume",
    "log_unit_sphere_volume",
    "sector_fraction",
    "sector_volume",
    "sphere_volume",
]
