"""Per-file analysis context shared by every rule.

Parses a source file once (AST + import table) so each rule can focus on
its own pattern matching.  The import table lets rules resolve attribute
chains like ``np.random.uniform`` back to the canonical dotted module
path ``numpy.random.uniform`` regardless of local aliasing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["FileContext", "dotted_name", "file_tier", "is_floatish"]

TIERS = ("library", "tests", "benchmarks")


def file_tier(path: str) -> str:
    """Coarse classification of a source path for rule scoping.

    ``tests`` and ``benchmarks`` directory components mark their tiers;
    everything else (including in-memory ``<string>`` sources and
    tempdir fixtures) is ``library``, the strictest tier.
    """
    parts = path.replace("\\", "/").split("/")
    if "tests" in parts:
        return "tests"
    if "benchmarks" in parts:
        return "benchmarks"
    return "library"


def _collect_imports(tree: ast.Module) -> dict[str, str]:
    """Map local names to the canonical dotted path they were bound to.

    ``import numpy as np``          -> ``{"np": "numpy"}``
    ``import numpy.random``         -> ``{"numpy": "numpy"}``
    ``from numpy import random``    -> ``{"random": "numpy.random"}``
    ``from random import randint``  -> ``{"randint": "random.randint"}``
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.asname is not None:
                    aliases[item.asname] = item.name
                else:
                    # ``import a.b.c`` binds the top-level package name.
                    top = item.name.split(".", 1)[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports never shadow stdlib/numpy
            for item in node.names:
                local = item.asname or item.name
                aliases[local] = f"{node.module}.{item.name}"
    return aliases


@dataclass
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: str
    source: str
    tree: ast.Module
    imports: dict[str, str] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, source: str) -> "FileContext":
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            source=source,
            tree=tree,
            imports=_collect_imports(tree),
        )

    def resolve(self, node: ast.expr) -> str | None:
        """Canonical dotted path of a Name/Attribute chain, or ``None``.

        ``np.random.uniform`` resolves to ``numpy.random.uniform`` when the
        file did ``import numpy as np``; an unresolvable chain (based on a
        local variable, a call result, ...) returns ``None``.
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.imports.get(current.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))


def dotted_name(node: ast.expr) -> str | None:
    """Literal dotted form of a Name/Attribute chain (no alias resolution)."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


_FLOAT_ATTRS = {
    "math.inf",
    "math.nan",
    "math.pi",
    "math.e",
    "math.tau",
    "numpy.inf",
    "numpy.nan",
    "numpy.pi",
    "numpy.e",
}


def is_floatish(node: ast.expr, ctx: FileContext) -> bool:
    """Conservatively decide whether an expression is float-valued.

    vilint has no type inference, so this only claims *certain* floats:
    float literals, their negations, ``float(...)`` casts, well-known
    float constants (``math.inf`` and friends), and arithmetic over them.
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        return is_floatish(node.operand, ctx)
    if isinstance(node, ast.Call):
        return isinstance(node.func, ast.Name) and node.func.id == "float"
    if isinstance(node, ast.Attribute):
        resolved = ctx.resolve(node)
        return resolved in _FLOAT_ATTRS
    if isinstance(node, ast.BinOp):
        return is_floatish(node.left, ctx) or is_floatish(node.right, ctx)
    return False
