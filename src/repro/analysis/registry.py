"""Rule base class and registry.

Rules self-register at import time via the :func:`register` decorator;
``repro.analysis.rules`` imports every rule module so that
:func:`all_rules` sees the full set.  Registration is keyed by the rule's
kebab-case ``name`` (the id users write in suppression comments and
baseline entries) and its short ``code``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Type

from repro.analysis.context import TIERS, FileContext
from repro.analysis.diagnostics import Diagnostic, Severity

__all__ = [
    "PackageRule",
    "Rule",
    "all_rules",
    "get_rule",
    "register",
    "rule_names",
]


class Rule:
    """Base class for vilint rules.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding one :class:`Diagnostic` per finding.  Rules are stateless:
    one instance is constructed per run and invoked once per file.

    ``tiers`` scopes where a rule applies: the engine classifies every
    file as ``library``, ``tests`` or ``benchmarks`` (see
    :func:`repro.analysis.context.file_tier`) and skips rules whose
    ``tiers`` set does not include the file's tier.
    """

    name: str = ""
    code: str = ""
    description: str = ""
    rationale: str = ""
    severity: Severity = Severity.ERROR
    tiers: frozenset[str] = frozenset(TIERS)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diagnostic(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Diagnostic:
        """Build a diagnostic for *node* in *ctx* with this rule's identity."""
        return Diagnostic(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.name,
            code=self.code,
            message=message,
            severity=self.severity,
        )


class PackageRule(Rule):
    """A rule that needs the whole package in view at once.

    Per-file rules pattern-match one AST at a time; package rules (the
    concurrency pass) reason across files — call graphs, lock-order
    edges spanning modules.  The engine parses every file first, then
    hands each package rule the full list of contexts (already filtered
    to the rule's ``tiers``).  Diagnostics still anchor to a concrete
    ``(path, line)`` so suppressions and the baseline work unchanged.
    """

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        return iter(())  # package rules only run in the package pass

    def check_package(
        self, contexts: Iterable[FileContext]
    ) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diagnostic_at(
        self, path: str, line: int, col: int, message: str
    ) -> Diagnostic:
        """Build a diagnostic at an explicit location (package rules
        often anchor findings in a different file than the one that
        triggered the analysis)."""
        return Diagnostic(
            path=path,
            line=line,
            col=col,
            rule=self.name,
            code=self.code,
            message=message,
            severity=self.severity,
        )


_REGISTRY: dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding *rule_class* to the global registry."""
    if not rule_class.name or not rule_class.code:
        raise ValueError(
            f"rule {rule_class.__name__} must define 'name' and 'code'"
        )
    for existing in _REGISTRY.values():
        if existing.code == rule_class.code and existing is not rule_class:
            raise ValueError(f"duplicate rule code {rule_class.code}")
    if _REGISTRY.get(rule_class.name) not in (None, rule_class):
        raise ValueError(f"duplicate rule name {rule_class.name}")
    _REGISTRY[rule_class.name] = rule_class
    return rule_class


def _ensure_loaded() -> None:
    # Importing the rules package triggers registration of every rule.
    from repro.analysis import rules  # noqa: F401


def all_rules() -> list[Rule]:
    """One instance of every registered rule, ordered by code."""
    _ensure_loaded()
    return [cls() for cls in sorted(_REGISTRY.values(), key=lambda c: c.code)]


def rule_names() -> list[str]:
    """Registered rule names, ordered by code."""
    _ensure_loaded()
    return [cls.name for cls in sorted(_REGISTRY.values(), key=lambda c: c.code)]


def get_rule(name: str) -> Type[Rule]:
    """Look up a rule class by kebab-case name (raises ``KeyError``)."""
    _ensure_loaded()
    return _REGISTRY[name]
