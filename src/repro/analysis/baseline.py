"""Baseline file for grandfathered findings.

A baseline lets vilint be adopted on a codebase with known, deliberate
violations without drowning new findings in old noise.  The format is one
entry per line::

    path:line: rule-name  # why this finding is deliberate

``#`` starts a comment; blank lines and pure comment lines are ignored.
Every entry is expected to carry a justification comment — the point of a
baseline is to record *why* a finding is allowed to stand.

Matching is exact on ``(path, line, rule)``: when the file moves the
entry goes stale and is reported (as a warning) so it can be refreshed
with ``--update-baseline`` or deleted.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic

__all__ = ["Baseline", "BaselineError"]

_ENTRY = re.compile(
    r"^(?P<path>[^:#]+):(?P<line>\d+):\s*(?P<rule>[A-Za-z0-9-]+)\s*$"
)


class BaselineError(ValueError):
    """Raised for unparseable baseline files."""


@dataclass
class Baseline:
    """In-memory view of a baseline file."""

    entries: dict[tuple[str, int, str], str] = field(default_factory=dict)
    matched: set[tuple[str, int, str]] = field(default_factory=set)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Parse the baseline at *path* (raises :class:`BaselineError`)."""
        baseline = cls()
        with open(path, encoding="utf-8") as handle:
            for number, raw in enumerate(handle, 1):
                line, _, comment = raw.partition("#")
                line = line.strip()
                if not line:
                    continue
                match = _ENTRY.match(line)
                if match is None:
                    raise BaselineError(
                        f"{path}:{number}: unparseable baseline entry: "
                        f"{line!r} (expected 'path:line: rule-name')"
                    )
                key = (
                    match.group("path").strip().replace(os.sep, "/"),
                    int(match.group("line")),
                    match.group("rule"),
                )
                baseline.entries[key] = comment.strip()
        return baseline

    def absorbs(self, diagnostic: Diagnostic) -> bool:
        """Whether *diagnostic* matches a baseline entry (records the hit)."""
        key = diagnostic.baseline_key()
        if key in self.entries:
            self.matched.add(key)
            return True
        return False

    def stale_entries(self) -> list[tuple[str, int, str]]:
        """Entries that matched nothing this run (sorted)."""
        return sorted(set(self.entries) - self.matched)

    @staticmethod
    def render(
        diagnostics: list[Diagnostic],
        comments: dict[tuple[str, int, str], str] | None = None,
    ) -> str:
        """Serialise *diagnostics* as baseline file content.

        *comments* maps ``(path, line, rule)`` to an existing
        justification; entries found there keep their human-written
        comment (``--update-baseline`` passes the previous baseline's
        entries so regenerating never destroys justifications).  New
        entries get a placeholder built from the finding's message,
        which adopters are expected to replace with the actual reason
        the finding is deliberate.
        """
        lines = [
            "# vilint baseline -- grandfathered findings.",
            "# Each entry must keep a justification comment explaining why",
            "# the finding is deliberate rather than fixed.",
        ]
        for diagnostic in sorted(diagnostics):
            key = diagnostic.baseline_key()
            comment = (comments or {}).get(key) or diagnostic.message
            lines.append(
                f"{diagnostic.path}:{diagnostic.line}: {diagnostic.rule}"
                f"  # {comment}"
            )
        return "\n".join(lines) + "\n"
