"""vilint — project-specific static analysis for the ViTri reproduction.

The paper's experimental claims are stated in deterministic,
hardware-independent units (page accesses, similarity computations), and
the codebase has conventions that keep those units trustworthy: seeded
RNG threading, ``CostCounters`` propagation, boundary validation, no
float equality, ``Timer``-only wall timing and uniform postponed
annotations.  This package machine-checks all of them — rule-by-rule
documentation lives in ``docs/static_analysis.md``.

Programmatic use::

    from repro.analysis import lint_paths, lint_source

    findings = lint_source("import numpy as np\\nnp.random.seed(0)\\n")

Command-line use: ``repro-video lint`` or ``python -m repro.analysis``.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.engine import LintResult, discover_files, lint_paths, lint_source
from repro.analysis.registry import Rule, all_rules, get_rule, register, rule_names

__all__ = [
    "Baseline",
    "Diagnostic",
    "LintResult",
    "Rule",
    "Severity",
    "all_rules",
    "discover_files",
    "get_rule",
    "lint_paths",
    "lint_source",
    "register",
    "rule_names",
]
