"""Command-line front end for vilint.

Reached two ways (both share this module):

* ``repro-video lint [paths...]`` — subcommand of the main CLI;
* ``python -m repro.analysis [paths...]`` — standalone module run.

Exit codes: ``0`` clean, ``1`` non-baselined error findings, ``2`` usage
errors (unknown rule, unreadable baseline, missing path).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.engine import lint_paths
from repro.analysis.registry import all_rules

__all__ = ["build_parser", "main", "run_lint"]

DEFAULT_BASELINE = "vilint.baseline"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="vilint",
        description=(
            "project-specific static analysis: determinism, validation "
            "and cost-accounting invariants (see docs/static_analysis.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "baseline file of grandfathered findings (default: "
            f"{DEFAULT_BASELINE} if it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report every finding)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file to absorb all current findings",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--concurrency",
        action="store_true",
        help=(
            "run only the concurrency rules (VIL008-VIL010: "
            "guard-discipline, lock-order-inversion, "
            "blocking-while-locked)"
        ),
    )
    parser.add_argument(
        "--lock-graph-dot",
        default=None,
        metavar="FILE",
        help=(
            "also write the statically-derived lock-order graph as "
            "Graphviz dot to FILE ('-' for stdout)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "analyse files with N worker threads (default: CPU count, "
            "capped at 8; output is identical regardless)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


CONCURRENCY_RULES = [
    "guard-discipline",
    "lock-order-inversion",
    "blocking-while-locked",
]


def _print_rules() -> None:
    for rule in all_rules():
        print(f"{rule.code}  {rule.name}")
        print(f"       {rule.description}")


def _render_lock_graph(paths: list[str]) -> str:
    """Build the static lock model over *paths* and render it as dot."""
    from repro.analysis.concurrency import build_model_from_paths

    return build_model_from_paths(paths).to_dot()


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run from parsed arguments; returns the exit code."""
    if args.list_rules:
        _print_rules()
        return 0

    if args.concurrency and args.select:
        print(
            "vilint: error: --concurrency and --select are mutually "
            "exclusive",
            file=sys.stderr,
        )
        return 2

    select = None
    if args.concurrency:
        select = list(CONCURRENCY_RULES)
    elif args.select:
        select = [name.strip() for name in args.select.split(",") if name.strip()]

    baseline = None
    baseline_path = args.baseline
    if not args.no_baseline and not args.update_baseline:
        if baseline_path is None:
            import os

            if os.path.exists(DEFAULT_BASELINE):
                baseline_path = DEFAULT_BASELINE
        if baseline_path is not None:
            try:
                baseline = Baseline.load(baseline_path)
            except (OSError, BaselineError) as error:
                print(f"vilint: error: {error}", file=sys.stderr)
                return 2

    try:
        result = lint_paths(
            args.paths, baseline=baseline, select=select, jobs=args.jobs
        )
    except (FileNotFoundError, ValueError) as error:
        print(f"vilint: error: {error}", file=sys.stderr)
        return 2

    if args.lock_graph_dot is not None:
        dot = _render_lock_graph(args.paths)
        if args.lock_graph_dot == "-":
            print(dot, end="")
        else:
            with open(args.lock_graph_dot, "w", encoding="utf-8") as handle:
                handle.write(dot)
            print(f"vilint: wrote lock graph to {args.lock_graph_dot}")

    if args.update_baseline:
        target = args.baseline or DEFAULT_BASELINE
        comments: dict[tuple[str, int, str], str] = {}
        import os

        if os.path.exists(target):
            try:
                comments = Baseline.load(target).entries
            except (OSError, BaselineError) as error:
                print(f"vilint: error: {error}", file=sys.stderr)
                return 2
        content = Baseline.render(result.diagnostics, comments)
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(content)
        print(
            f"vilint: wrote {len(result.diagnostics)} finding(s) to {target}"
        )
        return 0

    if args.format == "json":
        payload = {
            "files_checked": result.files_checked,
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "findings": [
                {
                    "path": d.path,
                    "line": d.line,
                    "col": d.col,
                    "rule": d.rule,
                    "code": d.code,
                    "severity": str(d.severity),
                    "message": d.message,
                }
                for d in result.diagnostics
            ],
            "stale_baseline": [
                {"path": path, "line": line, "rule": rule}
                for path, line, rule in result.stale_baseline
            ],
        }
        print(json.dumps(payload, indent=2))
        return result.exit_code

    for diagnostic in result.diagnostics:
        print(diagnostic.format())
    for path, line, rule in result.stale_baseline:
        print(
            f"{path}:{line}: warning: stale baseline entry for '{rule}' "
            "(finding no longer present; remove it or --update-baseline)"
        )
    summary = (
        f"vilint: {len(result.diagnostics)} finding(s) in "
        f"{result.files_checked} file(s)"
    )
    if result.suppressed:
        summary += f", {result.suppressed} suppressed inline"
    if result.baselined:
        summary += f", {result.baselined} baselined"
    print(summary)
    return result.exit_code


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return run_lint(args)
