"""Inline suppression comments.

Two forms are recognised, mirroring the usual linter conventions:

``# vilint: disable=<rule>[,<rule>...]``
    Suppresses the listed rules on the physical line the comment sits on.
    For a multi-line statement, put the comment on the line where the
    statement *starts* (that is where diagnostics anchor).

``# vilint: disable-file=<rule>[,<rule>...]``
    Suppresses the listed rules for the whole file.  Intended for
    sanctioned-wrapper modules (e.g. ``utils/rng.py`` is the one place
    allowed to touch ``np.random`` directly).

``all`` is accepted as a rule name in either form.  Suppression comments
should carry a short justification after the directive, e.g.::

    rng = np.random.default_rng()  # vilint: disable=seeded-rng -- wrapper
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic

__all__ = ["Suppressions", "collect_suppressions"]

_DIRECTIVE = re.compile(
    r"#\s*vilint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s-]+?)(?:\s*(?:--|$))"
)


@dataclass
class Suppressions:
    """Parsed suppression directives for one file."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)

    def is_suppressed(self, diagnostic: Diagnostic) -> bool:
        """Whether *diagnostic* is silenced by an inline directive."""
        for rules in (self.file_wide, self.by_line.get(diagnostic.line, ())):
            if "all" in rules or diagnostic.rule in rules:
                return True
        return False


def collect_suppressions(source: str) -> Suppressions:
    """Extract every ``vilint:`` directive from *source*'s comments."""
    suppressions = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except tokenize.TokenError:
        return suppressions
    for line, text in comments:
        match = _DIRECTIVE.search(text)
        if match is None:
            continue
        rules = {
            name.strip()
            for name in match.group("rules").split(",")
            if name.strip()
        }
        if match.group("kind") == "disable-file":
            suppressions.file_wide.update(rules)
        else:
            suppressions.by_line.setdefault(line, set()).update(rules)
    return suppressions
