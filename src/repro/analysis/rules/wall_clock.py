"""VIL006 ``wall-clock-discipline``: time only through ``utils.counters.Timer``.

The paper's cost model is hardware-independent — page accesses and
similarity computations — and wall time is only ever a *secondary*
signal recorded by :class:`repro.utils.counters.Timer`.  Scattered
``time.time()`` calls in measured paths invite two failure modes: costs
that silently become machine-dependent, and non-monotonic clocks
corrupting elapsed-time deltas.  ``Timer`` wraps ``perf_counter`` (the
right clock for intervals) in one place; ``utils/counters.py`` itself
carries the sanctioned inline suppression.

The rule flags direct calls to the ``time`` module's clock functions,
``timeit.default_timer`` and ``datetime``'s "now" family.  ``time.sleep``
is not a clock read and is not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, register

__all__ = ["WallClockRule"]

_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.thread_time",
        "time.thread_time_ns",
        "time.clock_gettime",
        "timeit.default_timer",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class WallClockRule(Rule):
    name = "wall-clock-discipline"
    code = "VIL006"
    description = (
        "no raw clock reads (time.time, perf_counter, ...); use "
        "repro.utils.counters.Timer"
    )
    rationale = (
        "the paper's costs are hardware-independent event counts; ad-hoc "
        "clock reads in measured paths reintroduce machine dependence"
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved in _CLOCK_CALLS:
                yield self.diagnostic(
                    ctx,
                    node,
                    f"raw clock read '{resolved}'; wall timing belongs in "
                    "repro.utils.counters.Timer (and costs belong in "
                    "CostCounters)",
                )
