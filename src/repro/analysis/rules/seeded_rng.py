"""VIL002 ``seeded-rng``: all randomness flows through seeded generators.

Every experiment in the reproduction must be replayable from a seed:
k-means initialisation, synthetic dataset generation and query sampling
all change the measured page-access and similarity-computation counts, so
an unseeded draw anywhere silently breaks figure-for-figure comparison.
The sanctioned pattern is a ``seed`` argument normalised through
``repro.utils.rng.ensure_rng`` into a threaded
:class:`numpy.random.Generator`.

This rule flags any call into the legacy ``numpy.random`` module-level
API (``np.random.uniform(...)``, ``np.random.seed(...)``, even
``np.random.default_rng()``) and the stdlib ``random`` module.  Method
calls on a ``Generator`` instance (``rng.normal(...)``) are fine — that
is the threaded-generator idiom the rule exists to enforce.
``utils/rng.py`` itself carries a file-level suppression: it is the one
sanctioned constructor of generators.

Outside the library tier (tests, benchmarks) the rule relaxes one
notch: ``np.random.default_rng(<literal seed>)`` is allowed — a fixture
constructing its own literal-seeded generator is exactly as replayable
as one threaded through ``ensure_rng``, and test files have no ``seed``
parameter to thread.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext, file_tier
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, register


def _literal_seeded_default_rng(node: ast.Call, resolved: str) -> bool:
    """``numpy.random.default_rng(<int literal>)`` — deterministic."""
    if resolved != "numpy.random.default_rng":
        return False
    if len(node.args) != 1 or node.keywords:
        return False
    seed = node.args[0]
    return isinstance(seed, ast.Constant) and isinstance(seed.value, int)

__all__ = ["SeededRngRule"]


@register
class SeededRngRule(Rule):
    name = "seeded-rng"
    code = "VIL002"
    description = (
        "no numpy.random / random module-level RNG calls; thread a seeded "
        "numpy.random.Generator (see repro.utils.rng.ensure_rng)"
    )
    rationale = (
        "unseeded draws make page-access and similarity-computation counts "
        "unreproducible, breaking comparison against the paper's figures"
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        relaxed = file_tier(ctx.path) != "library"
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved is None:
                continue
            if relaxed and _literal_seeded_default_rng(node, resolved):
                continue
            if resolved.startswith("numpy.random."):
                yield self.diagnostic(
                    ctx,
                    node,
                    f"call to '{resolved}' bypasses seed threading; accept "
                    "a 'seed' argument and draw from "
                    "repro.utils.rng.ensure_rng(seed) instead",
                )
            elif resolved == "random" or resolved.startswith("random."):
                yield self.diagnostic(
                    ctx,
                    node,
                    f"call to stdlib '{resolved}' is unseeded global state; "
                    "draw from a threaded numpy.random.Generator instead",
                )
