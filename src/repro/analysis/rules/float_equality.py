"""VIL005 ``float-equality``: no ``==`` / ``!=`` against float expressions.

Similarity scores, intersection fractions and radii are all products of
floating-point arithmetic; exact equality on them is either a logic bug
(two mathematically-equal expressions that differ in the last ulp) or a
disguised sentinel test.  The accepted idioms are:

* ``math.isclose`` / ``np.allclose`` / ``np.isclose`` for approximate
  comparison with an explicit tolerance;
* an *ordered* comparison against the sentinel for exact degenerate
  cases on quantities with a known sign — ``radius <= 0.0`` reads as
  "degenerate point sphere" and stays correct if a tiny negative ever
  slips through;
* an inline ``# vilint: disable=float-equality`` with justification for
  the rare genuine exact-representation test.

The rule is conservative: it only fires when one comparand is provably a
float — a float literal, its negation, a ``float(...)`` cast, a known
constant such as ``math.inf``, or arithmetic over those.  ``x == 0``
(int literal) is deliberately not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext, is_floatish
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, register

__all__ = ["FloatEqualityRule"]


@register
class FloatEqualityRule(Rule):
    name = "float-equality"
    code = "VIL005"
    tiers = frozenset({"library"})
    description = (
        "no ==/!= comparisons against float expressions; use math.isclose/"
        "np.allclose or an ordered comparison"
    )
    rationale = (
        "exact equality on computed floats is last-ulp-fragile and has "
        "silently reordered KNN results in similar systems"
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if is_floatish(left, ctx) or is_floatish(right, ctx):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"'{symbol}' against a float expression; use "
                        "math.isclose/np.allclose, or an ordered "
                        "comparison for exact sentinel checks",
                    )
                    break  # one diagnostic per comparison chain
