"""VIL004 ``boundary-validation``: validate arrays at the API boundary.

Public functions in ``core/`` and ``baselines/`` are the library's entry
points; user-supplied frame matrices and centre vectors arrive here.  The
convention (see ``repro/utils/validation.py``) is that every such entry
point normalises its array arguments through a ``check_*`` helper so that
shape and non-finite errors surface as clear ``ValueError`` messages at
the boundary, not as broadcasting surprises three layers down — where
they would also corrupt the cost accounting the benchmarks report.

Heuristic (vilint has no type inference): a *public module-level
function* in a ``core/`` or ``baselines/`` module is flagged when it has
a parameter that is array-like — annotated with ``ndarray``/``ArrayLike``
or named like an array (``frames``, ``positions``, ``points``, ...) —
and its body never calls a ``check_*`` helper.  Private helpers
(leading underscore) are trusted to receive pre-validated arrays.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, register

__all__ = ["BoundaryValidationRule"]

_ARRAYISH_NAMES = frozenset(
    {
        "frames",
        "frames_x",
        "frames_y",
        "points",
        "positions",
        "centers",
        "centres",
        "data",
        "matrix",
        "vector",
        "vectors",
        "radii",
        "counts",
        "features",
        "embedding",
        "embeddings",
    }
)

_ARRAYISH_ANNOTATIONS = ("ndarray", "ArrayLike", "NDArray")


def _annotation_text(node: ast.expr | None) -> str:
    if node is None:
        return ""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on parsed ASTs
        return ""


def _array_params(func: ast.FunctionDef) -> list[str]:
    names: list[str] = []
    args = func.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        if arg.arg in ("self", "cls"):
            continue
        annotation = _annotation_text(arg.annotation)
        if any(marker in annotation for marker in _ARRAYISH_ANNOTATIONS):
            names.append(arg.arg)
        elif arg.annotation is None and arg.arg in _ARRAYISH_NAMES:
            names.append(arg.arg)
    return names


def _calls_checker(func: ast.FunctionDef) -> bool:
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        name = None
        if isinstance(callee, ast.Name):
            name = callee.id
        elif isinstance(callee, ast.Attribute):
            name = callee.attr
        if name is not None and name.startswith("check_"):
            return True
    return False


@register
class BoundaryValidationRule(Rule):
    name = "boundary-validation"
    code = "VIL004"
    tiers = frozenset({"library"})
    description = (
        "public core/ and baselines/ functions taking array arguments "
        "must validate them through a check_* helper"
    )
    rationale = (
        "malformed inputs must fail loudly at the API boundary instead of "
        "producing silently-wrong similarity scores and cost counts"
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        path = ctx.path.replace("\\", "/")
        if "/core/" not in path and "/baselines/" not in path:
            return
        for node in ctx.tree.body:
            if not isinstance(node, ast.FunctionDef):
                continue
            if node.name.startswith("_"):
                continue
            params = _array_params(node)
            if not params:
                continue
            if _calls_checker(node):
                continue
            listed = ", ".join(f"'{name}'" for name in params)
            yield self.diagnostic(
                ctx,
                node,
                f"public function '{node.name}' takes array argument(s) "
                f"{listed} but never calls a check_* validation helper "
                "(see repro.utils.validation)",
            )
