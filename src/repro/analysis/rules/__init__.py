"""Rule modules — importing this package registers every rule."""

from __future__ import annotations

from repro.analysis.concurrency import rules as _concurrency_rules  # noqa: F401
from repro.analysis.rules import (  # noqa: F401
    boundary_validation,
    counter_discipline,
    float_equality,
    future_annotations,
    injected_clock,
    seeded_rng,
    wall_clock,
)
