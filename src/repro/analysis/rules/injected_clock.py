"""VIL007 ``injected-clock``: resilience code must not touch real time or RNGs.

The fault-tolerance layer's whole value is that its behaviour —
latencies, backoff schedules, hedge decisions, breaker transitions — is
*reproducible*: a failing fault sweep must replay bit-for-bit.  That
only holds if the resilience modules never read the machine clock or an
unseeded RNG.  Time comes from the injected
:class:`repro.utils.clock.Clock` the router owns; retry jitter comes
from a seeded ``blake2b`` hash of ``(seed, shard, attempt)``.

This rule polices the resilience paths (``shard/resilience.py`` and
``shard/faults.py``), the whole service layer (``repro/serve/`` —
token-bucket refills, admission timing and wire deadlines must replay
under a ``VirtualClock`` exactly like the in-process scatter), the
replication layer (``repro/replication/``), and the ingest layer
(``repro/ingest/`` — drift-measurement floors and idle-pump backoff
must replay so a drift-triggered rebuild fires at the same simulated
instant every run): any call into the ``time`` module (``sleep``
included — a real sleep would stall a virtual-clock test and desync
the thread-local offsets), the ``random`` module, or ``numpy.random``
is an error there.  VIL006
(wall-clock-discipline) already flags clock *reads* repo-wide; this
rule is stricter on the scoped paths because in the resilience layer
even a non-clock call like ``time.sleep`` breaks determinism.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, register

__all__ = ["InjectedClockRule"]

# Paths (normalised to "/") whose modules must use the injected clock:
# exact file suffixes, plus whole directories matched by containment
# (``endswith`` cannot scope a package).
_SCOPED_PATHS = ("shard/resilience.py", "shard/faults.py")
_SCOPED_DIRS = ("repro/serve/", "repro/replication/", "repro/ingest/")

_BANNED_PREFIXES = ("time.", "random.", "numpy.random.", "np.random.")


@register
class InjectedClockRule(Rule):
    name = "injected-clock"
    code = "VIL007"
    tiers = frozenset({"library"})
    description = (
        "resilience modules must use the injected Clock and seeded "
        "jitter, never the time/random modules"
    )
    rationale = (
        "retry backoffs, hedge decisions and breaker transitions must "
        "replay bit-for-bit; a raw time or random call makes a fault "
        "sweep unreproducible"
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        path = ctx.path.replace("\\", "/")
        if not path.endswith(_SCOPED_PATHS) and not any(
            directory in path for directory in _SCOPED_DIRS
        ):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved is None:
                continue
            if resolved.startswith(_BANNED_PREFIXES) or resolved in (
                "time",
                "random",
            ):
                yield self.diagnostic(
                    ctx,
                    node,
                    f"'{resolved}' call in a resilience module; use the "
                    "injected repro.utils.clock.Clock for time and the "
                    "seeded RetryPolicy jitter for randomness",
                )
