"""VIL001 ``future-annotations``: postponed annotation evaluation everywhere.

The codebase targets Python 3.10+ and uses PEP 604 unions (``int | None``)
and forward references in annotations throughout.  ``from __future__
import annotations`` makes every annotation lazily evaluated, which keeps
the modules importable on all supported interpreters, avoids runtime
annotation cost on hot paths, and lets type checkers see one consistent
semantics.  Requiring it in *every* module (rather than wherever someone
remembered) removes a whole class of "works until you add one annotation"
import errors.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, register

__all__ = ["FutureAnnotationsRule"]


@register
class FutureAnnotationsRule(Rule):
    name = "future-annotations"
    code = "VIL001"
    tiers = frozenset({"library"})
    description = (
        "every module must begin with 'from __future__ import annotations'"
    )
    rationale = (
        "uniform postponed annotation evaluation (PEP 563) across the "
        "codebase; annotations never execute at import time"
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        body = ctx.tree.body
        if not body:
            return  # an empty module has no annotations to defer
        statements = list(body)
        # A leading docstring is allowed (and idiomatic) before the import.
        if (
            isinstance(statements[0], ast.Expr)
            and isinstance(statements[0].value, ast.Constant)
            and isinstance(statements[0].value.value, str)
        ):
            statements = statements[1:]
        if not statements:
            return  # docstring-only module
        first = statements[0]
        if (
            isinstance(first, ast.ImportFrom)
            and first.module == "__future__"
            and any(alias.name == "annotations" for alias in first.names)
        ):
            return
        anchor = ast.Module(body=[], type_ignores=[])
        yield self.diagnostic(
            ctx,
            anchor,
            "module does not start with 'from __future__ import "
            "annotations' (it must be the first statement after the "
            "docstring)",
        )
