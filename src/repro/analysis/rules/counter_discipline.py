"""VIL003 ``counter-discipline``: measured work must reach ``CostCounters``.

The paper's Figures 16-19 are plotted in page accesses and similarity
computations, not seconds, so the reproduction's credibility rests on
every counted event actually being counted.  Three conventions keep the
accounting airtight, and this rule enforces all three:

1. **Counted kernels propagate.**  The similarity kernels that accept a
   ``counters`` argument (``shared_frames_matrix``, ``video_similarity``,
   ``frame_similarity``, ...) do their own accounting — but only if the
   caller hands them the bundle.  A function that takes ``counters`` and
   then calls a kernel without passing it on silently drops cost.
2. **Kernel callers account.**  A function calling a counted kernel, or a
   raw (uncounted) kernel such as ``_estimate_from_scalars``, must either
   accept a ``counters`` parameter itself or visibly record the work
   (an augmented assignment to an ``evaluations``/``computations``/
   counter attribute).
3. **No pager bypass.**  Raw pager I/O (``read_page`` / ``write_page`` /
   ``allocate_page``) outside ``repro/storage/`` bypasses the buffer
   pool's logical-request accounting, so hit/miss ratios (Figure 16's
   buffer sweep) become unmeasurable.  All other layers must go through
   ``BufferPool``.
4. **Query costs come from per-query bundles.**  A ``QueryStats(...)``
   construction may not read *global* counter attributes (the buffer
   pool's ``requests``/``misses``/``hits``, a tree's ``node_visits``, a
   pager's ``physical_reads``/``physical_writes``) — not even as
   before/after deltas: those aggregates are shared by every caller, so
   any interleaved query corrupts both queries' stats.  Cost fields must
   be read off a per-query ``CostCounters`` bundle (any base whose name
   mentions ``counter``).
5. **No stats re-aggregation.**  A ``QueryStats(...)`` construction may
   not read its cost fields off *other stats objects* either (any base
   whose name mentions ``stats``) — e.g. the scatter-gather router
   summing ``result.stats.page_requests`` over its shards.  Derived
   stats double-count whatever the originals shared (a cache hit's
   memoised stats, a retried range) and ``wall_time`` sums would erase
   the overlap concurrency exists to create.  Aggregate by folding the
   per-query ``CostCounters`` bundles (``CostCounters.add``) and build
   the global stats from the folded bundle.
6. **Batched reads stay record-accurate.**  A batched read API (a name
   combining a batch marker — ``batch``/``bulk``/``many`` — with a read
   verb — ``read``/``scan``/``search``/``decode``/``fetch``) must accept
   a ``counters`` parameter: batching is an *optimisation of the access
   pattern*, not a change in the logical work, so the vectorized path
   must charge the same record-level costs as the per-record path it
   replaces.  And inside such a function, charging a record-level
   counter by a literal constant (``counters.records_scanned += 1``)
   charges per batch *call* instead of per logical record — the batched
   and scalar cost signatures then diverge by exactly the batch factor.
   Charge by the batch's size (``+= len(entries)``, ``+= used``).
   ``load`` is deliberately not a read verb so one-time construction
   (``bulk_load``) stays out of scope.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, register

__all__ = ["CounterDisciplineRule"]

# Kernels that accept (and internally increment) a CostCounters bundle.
COUNTED_KERNELS = frozenset(
    {
        "shared_frames_matrix",
        "video_similarity",
        "temporal_video_similarity",
        "align_summaries",
        "frames_with_match",
        "frame_similarity",
        "knn_ground_truth",
    }
)

# Raw kernels with no counters argument: callers must account themselves.
RAW_KERNELS = frozenset(
    {
        "_estimate_from_scalars",
        "_estimate_batch",
        "estimated_shared_frames",
        "estimated_shared_frames_many",
        "vitri_similarity",
    }
)

# Pager-level physical I/O, only legal inside repro/storage/.
RAW_IO = frozenset({"read_page", "write_page", "allocate_page"})

# Attribute substrings that count as visible cost recording.
_ACCOUNTING_MARKERS = ("evaluation", "computation", "counter", "scanned")

# Name fragments identifying a batched read API (convention 6).  Both a
# batch marker and a read verb must appear; "load" is deliberately not a
# read verb so one-time construction (bulk_load) stays out of scope.
_BATCH_MARKERS = ("batch", "bulk", "many")
_READ_MARKERS = ("read", "scan", "search", "decode", "fetch")

# Per-record cost fields: a batched read charging one of these by a
# literal constant is charging per batch call, not per logical record.
_RECORD_LEVEL_COUNTERS = frozenset(
    {
        "records_scanned",
        "records_decoded",
        "similarity_computations",
        "distance_computations",
    }
)

# Global (lifetime-aggregate) counter attributes: shared by every caller,
# so per-query stats built from them are corrupted by any concurrent or
# interleaved query.  Exact names — the per-query bundle's fields
# (page_requests, page_reads, btree_node_visits, ...) are distinct.
_GLOBAL_COUNTER_ATTRS = frozenset(
    {
        "requests",
        "misses",
        "hits",
        "node_visits",
        "physical_reads",
        "physical_writes",
    }
)


# QueryStats' own field names: reading one of these off another stats
# object inside a QueryStats(...) construction is re-aggregation.
_QUERYSTATS_FIELDS = frozenset(
    {
        "page_requests",
        "physical_reads",
        "node_visits",
        "similarity_computations",
        "candidates",
        "ranges",
        "wall_time",
    }
)


def _call_name(node: ast.Call) -> str | None:
    """Trailing name of the called function (``a.b.f(...)`` -> ``f``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _passes_counters(node: ast.Call) -> bool:
    """Whether the call forwards a ``counters`` bundle."""
    for arg in node.args:
        if isinstance(arg, ast.Name) and arg.id == "counters":
            return True
        if (
            isinstance(arg, ast.Attribute)
            and arg.attr in ("counters", "_counters")
        ):
            return True
    for keyword in node.keywords:
        if keyword.arg == "counters" or keyword.arg is None:
            return True
    return False


def _bundle_read(node: ast.Attribute) -> bool:
    """Whether an attribute read comes off a per-query counter bundle."""
    base = node.value
    if isinstance(base, ast.Name):
        return "counter" in base.id.lower()
    if isinstance(base, ast.Attribute):
        return "counter" in base.attr.lower()
    return False


def _global_counter_reads(call: ast.Call) -> Iterator[ast.Attribute]:
    """Global-counter attribute reads inside a call's argument values."""
    values = list(call.args) + [kw.value for kw in call.keywords]
    for value in values:
        for node in ast.walk(value):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in _GLOBAL_COUNTER_ATTRS
                and not _bundle_read(node)
            ):
                yield node


def _stats_read(node: ast.Attribute) -> bool:
    """Whether an attribute read comes off another stats object."""
    base = node.value
    if isinstance(base, ast.Name):
        return "stats" in base.id.lower()
    if isinstance(base, ast.Attribute):
        return "stats" in base.attr.lower()
    return False


def _stats_reaggregation_reads(call: ast.Call) -> Iterator[ast.Attribute]:
    """QueryStats-field reads off stats objects inside a call's args."""
    values = list(call.args) + [kw.value for kw in call.keywords]
    for value in values:
        for node in ast.walk(value):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in _QUERYSTATS_FIELDS
                and _stats_read(node)
            ):
                yield node


def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    return set(names)


def _records_cost(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Whether the body visibly accounts for work it performs.

    Recognised forms: ``self.evaluations += n``, ``counters.X += n``,
    ``stats.similarity_computations += n`` — any augmented assignment to
    an attribute whose name mentions a counting concept, or to an
    attribute of a ``counters``-ish object.
    """
    for child in ast.walk(node):
        if not isinstance(child, ast.AugAssign):
            continue
        target = child.target
        if not isinstance(target, ast.Attribute):
            continue
        attr = target.attr.lower()
        if any(marker in attr for marker in _ACCOUNTING_MARKERS):
            return True
        base = target.value
        if isinstance(base, ast.Name) and "counter" in base.id.lower():
            return True
    return False


def _names_vector_read_api(name: str) -> bool:
    """Whether a function name denotes a batched read API."""
    lowered = name.lower()
    return any(marker in lowered for marker in _BATCH_MARKERS) and any(
        marker in lowered for marker in _READ_MARKERS
    )


def _constant_record_charges(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AugAssign]:
    """Record-level counter charges by a literal constant in *func*'s body.

    Nested function bodies are excluded — they are charged (and linted)
    as their own functions.
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if (
            isinstance(node, ast.AugAssign)
            and isinstance(node.target, ast.Attribute)
            and node.target.attr in _RECORD_LEVEL_COUNTERS
            and isinstance(node.op, ast.Add)
            and isinstance(node.value, ast.Constant)
        ):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _functions(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _direct_calls(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.Call]:
    """Calls in *func*'s own body, excluding nested function bodies."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class CounterDisciplineRule(Rule):
    name = "counter-discipline"
    code = "VIL003"
    tiers = frozenset({"library"})
    description = (
        "distance/similarity kernels and page I/O must flow through "
        "CostCounters accounting"
    )
    rationale = (
        "Figures 16-19 are measured in page accesses and similarity "
        "computations; dropped counters make reported costs undercounts"
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        in_storage_layer = "/storage/" in ctx.path.replace("\\", "/")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _call_name(node) != "QueryStats":
                continue
            for read in _global_counter_reads(node):
                yield self.diagnostic(
                    ctx,
                    read,
                    f"QueryStats built from global counter '{read.attr}': "
                    "lifetime aggregates misattribute interleaved queries' "
                    "costs; populate query-cost fields from a per-query "
                    "CostCounters bundle",
                )
            for read in _stats_reaggregation_reads(node):
                yield self.diagnostic(
                    ctx,
                    read,
                    f"QueryStats built by re-aggregating '{read.attr}' from "
                    "another stats object: derived stats double-count "
                    "shared work and sum away concurrency overlap; fold "
                    "the per-query CostCounters bundles instead and build "
                    "the aggregate from the folded bundle",
                )
        for func in _functions(ctx.tree):
            # Kernel definitions are the counted primitives themselves;
            # discipline applies to the layers calling them.
            is_kernel = func.name in COUNTED_KERNELS | RAW_KERNELS
            has_counters = "counters" in _param_names(func)
            if _names_vector_read_api(func.name) and not is_kernel:
                if not has_counters:
                    yield self.diagnostic(
                        ctx,
                        func,
                        f"batched read API '{func.name}' does not accept a "
                        "'counters' parameter: the batched path must charge "
                        "the same record-level costs as the per-record path "
                        "it replaces",
                    )
                for charge in _constant_record_charges(func):
                    assert isinstance(charge.target, ast.Attribute)
                    yield self.diagnostic(
                        ctx,
                        charge,
                        f"batched read API '{func.name}' charges "
                        f"'{charge.target.attr}' by a literal constant: "
                        "that counts per batch call, not per logical "
                        "record; charge by the batch's size "
                        "(e.g. += len(entries))",
                    )
            records = None  # computed lazily (walking bodies is not free)
            for call in _direct_calls(func):
                called = _call_name(call)
                if called is None:
                    continue
                if called in RAW_IO and not in_storage_layer:
                    yield self.diagnostic(
                        ctx,
                        call,
                        f"raw pager I/O '{called}' outside repro/storage/ "
                        "bypasses BufferPool logical-request accounting; "
                        "fetch pages through the buffer pool",
                    )
                    continue
                if called in COUNTED_KERNELS:
                    if has_counters:
                        # Applies to kernels too: a counters-accepting
                        # kernel that calls a counted sub-kernel must
                        # still hand the bundle down.
                        if not _passes_counters(call):
                            yield self.diagnostic(
                                ctx,
                                call,
                                f"call to counted kernel '{called}' drops "
                                "the 'counters' bundle this function "
                                "received; pass counters through",
                            )
                    elif is_kernel:
                        continue
                    else:
                        if records is None:
                            records = _records_cost(func)
                        if not records:
                            yield self.diagnostic(
                                ctx,
                                call,
                                f"function '{func.name}' calls counted "
                                f"kernel '{called}' but neither accepts a "
                                "'counters' parameter nor records the "
                                "cost itself",
                            )
                elif called in RAW_KERNELS:
                    if not has_counters and not is_kernel:
                        if records is None:
                            records = _records_cost(func)
                        if not records:
                            yield self.diagnostic(
                                ctx,
                                call,
                                f"function '{func.name}' calls raw kernel "
                                f"'{called}' without accounting: accept a "
                                "'counters' parameter or record the "
                                "evaluations performed",
                            )
