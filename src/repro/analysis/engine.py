"""The vilint engine: file discovery, rule dispatch, filtering.

One :class:`LintRun` drives the whole pass: it walks the requested paths,
parses each file once into a :class:`~repro.analysis.context.FileContext`,
runs every (selected) rule over it, then filters the raw findings through
inline suppressions and the baseline.  Unparseable files surface as
``parse-error`` diagnostics rather than crashing the run — a linter that
dies on the file you are editing is useless in CI.
"""

from __future__ import annotations

import ast
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.analysis.baseline import Baseline
from repro.analysis.context import FileContext, file_tier
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.registry import PackageRule, Rule, all_rules, get_rule
from repro.analysis.suppressions import Suppressions, collect_suppressions

__all__ = ["LintResult", "lint_paths", "lint_source", "discover_files"]


@dataclass
class LintResult:
    """Outcome of one lint run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    stale_baseline: list[tuple[str, int, str]] = field(default_factory=list)
    files_checked: int = 0

    @property
    def errors(self) -> list[Diagnostic]:
        return [
            d for d in self.diagnostics if d.severity is Severity.ERROR
        ]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0


def discover_files(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d not in ("__pycache__", ".git")
                )
                for name in sorted(names):
                    if name.endswith(".py"):
                        found.append(os.path.join(root, name))
        elif os.path.isfile(path):
            found.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(dict.fromkeys(found))


def _normalise(path: str) -> str:
    """Relative-to-cwd, forward-slash form used in diagnostics/baselines."""
    try:
        relative = os.path.relpath(path)
    except ValueError:  # different drive on Windows
        relative = path
    if not relative.startswith(".."):
        path = relative
    return path.replace(os.sep, "/")


def _select_rules(select: list[str] | None) -> list[Rule]:
    if select is None:
        return all_rules()
    rules = []
    seen: set[str] = set()
    for name in select:
        if name in seen:
            continue
        seen.add(name)
        try:
            rules.append(get_rule(name)())
        except KeyError:
            raise ValueError(f"unknown rule: {name!r}") from None
    return rules


def lint_source(
    source: str,
    path: str = "<string>",
    select: list[str] | None = None,
) -> list[Diagnostic]:
    """Lint one in-memory source string (suppressions honoured, no baseline).

    This is the engine's testing seam: golden-fixture tests feed snippets
    straight through it.
    """
    rules = _select_rules(select)
    try:
        ctx = FileContext.parse(path, source)
    except SyntaxError as error:
        return [
            Diagnostic(
                path=path,
                line=error.lineno or 1,
                col=(error.offset or 1) - 1,
                rule="parse-error",
                code="VIL000",
                message=f"could not parse file: {error.msg}",
            )
        ]
    suppressions = collect_suppressions(source)
    tier = file_tier(path)
    findings: list[Diagnostic] = []
    for rule in rules:
        if tier not in rule.tiers:
            continue
        raw = (
            rule.check_package([ctx])
            if isinstance(rule, PackageRule)
            else rule.check(ctx)
        )
        for diagnostic in raw:
            if not suppressions.is_suppressed(diagnostic):
                findings.append(diagnostic)
    return sorted(findings)


@dataclass
class _FileOutcome:
    """What one worker produced for one file (order restored by caller)."""

    norm: str
    tier: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    suppressed: int = 0
    ctx: FileContext | None = None
    suppressions: Suppressions = field(default_factory=Suppressions)


def _lint_one_file(filename: str, rules: list[Rule]) -> _FileOutcome:
    """Parse and run the per-file rules on one file (thread worker).

    Pure with respect to shared state: suppression filtering happens
    here (per-file), baseline matching in the caller (the baseline's
    matched-set is mutable shared state).
    """
    norm = _normalise(filename)
    tier = file_tier(norm)
    outcome = _FileOutcome(norm=norm, tier=tier)
    with open(filename, encoding="utf-8") as handle:
        source = handle.read()
    try:
        ctx = FileContext.parse(norm, source)
    except SyntaxError as error:
        outcome.diagnostics.append(
            Diagnostic(
                path=norm,
                line=error.lineno or 1,
                col=(error.offset or 1) - 1,
                rule="parse-error",
                code="VIL000",
                message=f"could not parse file: {error.msg}",
            )
        )
        return outcome
    suppressions = collect_suppressions(source)
    outcome.ctx = ctx
    outcome.suppressions = suppressions
    for rule in rules:
        if isinstance(rule, PackageRule) or tier not in rule.tiers:
            continue
        for diagnostic in rule.check(ctx):
            if suppressions.is_suppressed(diagnostic):
                outcome.suppressed += 1
            else:
                outcome.diagnostics.append(diagnostic)
    return outcome


def lint_paths(
    paths: list[str],
    baseline: Baseline | None = None,
    select: list[str] | None = None,
    jobs: int | None = None,
) -> LintResult:
    """Run the selected rules over *paths*, applying *baseline* if given.

    Files are analysed in parallel (*jobs* threads; default scales with
    the CPU count).  Output is deterministic regardless of *jobs*:
    workers are pure per-file functions, results are consumed in file
    order, and the final diagnostic list is sorted.
    """
    rules = _select_rules(select)
    result = LintResult()
    files = discover_files(paths)
    if jobs is None:
        jobs = min(8, os.cpu_count() or 1)
    jobs = max(1, min(jobs, max(1, len(files))))

    if jobs == 1:
        outcomes = [_lint_one_file(filename, rules) for filename in files]
    else:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            outcomes = list(
                pool.map(lambda name: _lint_one_file(name, rules), files)
            )

    raw: list[Diagnostic] = []
    for outcome in outcomes:
        result.files_checked += 1
        result.suppressed += outcome.suppressed
        raw.extend(outcome.diagnostics)

    # Package pass: rules that see the whole file set at once.  Inline
    # suppressions are looked up by the finding's own path.
    package_rules = [r for r in rules if isinstance(r, PackageRule)]
    if package_rules:
        by_path = {
            outcome.norm: outcome
            for outcome in outcomes
            if outcome.ctx is not None
        }
        for rule in package_rules:
            contexts = [
                outcome.ctx
                for outcome in outcomes
                if outcome.ctx is not None and outcome.tier in rule.tiers
            ]
            for diagnostic in rule.check_package(contexts):
                holder = by_path.get(diagnostic.path)
                if holder is not None and holder.suppressions.is_suppressed(
                    diagnostic
                ):
                    result.suppressed += 1
                else:
                    raw.append(diagnostic)

    for diagnostic in raw:
        if baseline is not None and baseline.absorbs(diagnostic):
            result.baselined += 1
        else:
            result.diagnostics.append(diagnostic)
    if baseline is not None:
        result.stale_baseline = baseline.stale_entries()
    result.diagnostics.sort()
    return result


def parse_ok(source: str) -> bool:
    """Cheap syntax probe used by tests."""
    try:
        ast.parse(source)
    except SyntaxError:
        return False
    return True
