"""Concurrency rules VIL008-VIL010 over the package lock model.

All three are :class:`~repro.analysis.registry.PackageRule` subclasses:
they need the whole package in view (held-lock sets propagate through
calls that cross module boundaries).  Each builds the shared
:class:`~repro.analysis.concurrency.model.PackageModel` for the run —
a single-slot cache keyed on the context list identity avoids building
it three times per lint pass.

Scope: library tier only.  Tests and benchmarks construct locks for
fixtures and deliberately poke at internals; lock discipline is a
production-code contract.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.analysis.concurrency.model import (
    Access,
    ClassModel,
    PackageModel,
    build_model,
    lock_node,
)
from repro.analysis.context import FileContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import PackageRule, register

__all__ = [
    "BlockingWhileLockedRule",
    "GuardDisciplineRule",
    "LockOrderInversionRule",
]

_LIBRARY_ONLY = frozenset({"library"})

# One-slot model cache: the engine runs each package rule over the same
# context list, so identity of the list members is a sound key for the
# duration of one lint pass.
_cache_key: tuple[int, ...] | None = None
_cache_model: PackageModel | None = None


def _model_for(contexts: Iterable[FileContext]) -> PackageModel:
    global _cache_key, _cache_model
    materialised = list(contexts)
    key = tuple(id(ctx) for ctx in materialised)
    if key != _cache_key or _cache_model is None:
        _cache_model = build_model(materialised)
        _cache_key = key
    return _cache_model


def _held_attrs(
    cls: ClassModel, method: str, local: tuple[str, ...]
) -> frozenset[str]:
    """Effective held own-class lock attrs at a site: the with-nesting
    plus the method's inferred entry-held set."""
    return frozenset(local) | cls.entry_held.get(method, frozenset())


def _held_nodes(
    cls: ClassModel, method: str, local: tuple[str, ...]
) -> frozenset[str]:
    return frozenset(
        lock_node(cls.name, attr) for attr in _held_attrs(cls, method, local)
    )


@register
class GuardDisciplineRule(PackageRule):
    """VIL008: a field written under a lock is that lock's to guard."""

    name = "guard-discipline"
    code = "VIL008"
    description = (
        "a field ever written while holding a lock must always be "
        "accessed with that lock held"
    )
    rationale = (
        "Mixed locked/unlocked access to the same attribute is the "
        "classic data race: the unlocked reader sees torn or stale "
        "state exactly when the timing is worst.  If an attribute "
        "needs a lock on any write path, every read and write path "
        "needs it (construction is exempt: __init__ and helpers "
        "reachable only from it run before the object is shared)."
    )
    tiers = _LIBRARY_ONLY

    def check_package(
        self, contexts: Iterable[FileContext]
    ) -> Iterator[Diagnostic]:
        model = _model_for(contexts)
        for class_name in sorted(model.classes):
            cls = model.classes[class_name]
            if not cls.locks:
                continue
            yield from self._check_class(cls)

    def _check_class(self, cls: ClassModel) -> Iterator[Diagnostic]:
        exempt = cls.init_only | {"__init__"}
        guards: dict[str, set[str]] = {}
        sites: list[tuple[str, Access]] = []
        for method, facts in cls.facts.items():
            if method in exempt:
                continue
            for access in facts.accesses:
                held = _held_attrs(cls, method, access.held)
                sites.append((method, access))
                if access.write and held:
                    guards.setdefault(access.attr, set()).update(held)
        findings = []
        for method, access in sites:
            guarding = guards.get(access.attr)
            if not guarding:
                continue
            held = _held_attrs(cls, method, access.held)
            if held & guarding:
                continue
            kind = "written" if access.write else "read"
            lock_names = ", ".join(
                sorted(lock_node(cls.name, attr) for attr in guarding)
            )
            findings.append(
                self.diagnostic_at(
                    cls.path,
                    access.line,
                    access.col,
                    f"attribute '{access.attr}' is guarded by "
                    f"{lock_names} on its write paths but {kind} here "
                    f"in {cls.name}.{method} without the lock",
                )
            )
        yield from sorted(findings)


@register
class LockOrderInversionRule(PackageRule):
    """VIL009: two paths acquire the same pair of locks in opposite order."""

    name = "lock-order-inversion"
    code = "VIL009"
    description = (
        "two code paths acquire the same locks in opposite order "
        "(deadlock when the paths interleave)"
    )
    rationale = (
        "A consistent acquisition order is the only cheap deadlock "
        "proof there is.  The analysis derives every held->acquired "
        "edge (through helper calls, properties and annotated "
        "lambdas) and reports each edge that closes a cycle in the "
        "package-wide lock-order graph."
    )
    tiers = _LIBRARY_ONLY

    def check_package(
        self, contexts: Iterable[FileContext]
    ) -> Iterator[Diagnostic]:
        model = _model_for(contexts)
        adjacency: dict[str, set[str]] = {}
        for held, acquired in model.edges:
            adjacency.setdefault(held, set()).add(acquired)

        def reaches(source: str, target: str) -> bool:
            stack, seen = [source], set()
            while stack:
                node = stack.pop()
                if node == target:
                    return True
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(adjacency.get(node, ()))
            return False

        findings = []
        reported: set[frozenset[str]] = set()
        for (held, acquired), witness in sorted(model.edges.items()):
            pair = frozenset((held, acquired))
            if pair in reported:
                continue
            if not reaches(acquired, held):
                continue
            reported.add(pair)
            reverse = model.edges.get((acquired, held))
            if reverse is not None:
                via = f"the reverse edge at {reverse.path}:{reverse.line}"
            else:
                via = f"a path from {acquired} back to {held}"
            findings.append(
                self.diagnostic_at(
                    witness.path,
                    witness.line,
                    witness.col,
                    f"lock-order inversion: {witness.description}; "
                    f"{via} closes the cycle",
                )
            )
        yield from sorted(findings)


@register
class BlockingWhileLockedRule(PackageRule):
    """VIL010: no file I/O, sleeps or scatter waits inside a lock region."""

    name = "blocking-while-locked"
    code = "VIL010"
    description = (
        "blocking operation (file I/O, sleep, socket op, future wait) "
        "executed while holding a lock"
    )
    rationale = (
        "A lock held across a blocking call turns one slow disk or "
        "scheduler tick into a convoy: every thread needing the lock "
        "queues behind I/O it did not issue.  Move the blocking work "
        "outside the critical section, or suppress with a "
        "justification where the serialisation is the design (e.g. a "
        "checkpoint that must be atomic against queries)."
    )
    tiers = _LIBRARY_ONLY

    def check_package(
        self, contexts: Iterable[FileContext]
    ) -> Iterator[Diagnostic]:
        model = _model_for(contexts)
        findings = []
        for class_name in sorted(model.classes):
            cls = model.classes[class_name]
            for method, facts in sorted(cls.facts.items()):
                for op in facts.blockops:
                    held = _held_nodes(cls, method, op.held)
                    if not held:
                        continue
                    locks = ", ".join(sorted(held))
                    findings.append(
                        self.diagnostic_at(
                            cls.path,
                            op.line,
                            op.col,
                            f"blocking operation {op.desc} in "
                            f"{cls.name}.{method} while holding {locks}",
                        )
                    )
                for call in facts.calls:
                    held = _held_nodes(cls, method, call.held)
                    if not held:
                        continue
                    blocked = [
                        target
                        for target in call.targets
                        if target in model.blocking
                    ]
                    if not blocked:
                        continue
                    target = sorted(blocked)[0]
                    locks = ", ".join(sorted(held))
                    findings.append(
                        self.diagnostic_at(
                            cls.path,
                            call.line,
                            call.col,
                            f"call to {target} "
                            f"({model.blocking[target]}) in "
                            f"{cls.name}.{method} while holding {locks}",
                        )
                    )
        yield from sorted(findings)
