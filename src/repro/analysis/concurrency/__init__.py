"""Concurrency-correctness analysis (VIL008-VIL010).

:mod:`~repro.analysis.concurrency.model` builds an interprocedural lock
model of the package — lock attributes, guarded fields, held-lock
propagation through helper calls, and the static lock-order graph.
:mod:`~repro.analysis.concurrency.rules` turns the model into the three
package rules; :func:`build_model_from_paths` feeds the CLI's
``--lock-graph-dot`` output and the stress tests' subgraph assertion.
"""

from __future__ import annotations

from repro.analysis.concurrency.model import PackageModel, build_model

__all__ = ["PackageModel", "build_model", "build_model_from_paths"]


def build_model_from_paths(paths: list[str]) -> PackageModel:
    """Build the lock model over the library-tier files under *paths*.

    Unparseable files are skipped (the lint pass reports them); tests
    and benchmarks are excluded for the same reason the rules scope to
    the library tier.
    """
    from repro.analysis.context import FileContext, file_tier
    from repro.analysis.engine import _normalise, discover_files

    contexts = []
    for filename in discover_files(paths):
        norm = _normalise(filename)
        if file_tier(norm) != "library":
            continue
        with open(filename, encoding="utf-8") as handle:
            source = handle.read()
        try:
            contexts.append(FileContext.parse(norm, source))
        except SyntaxError:
            continue
    return build_model(contexts)
