"""Interprocedural lock model over the package's classes.

This module builds everything the three concurrency rules (VIL008-010)
and the ``--lock-graph-dot`` CLI output share: which attributes are
locks, which regions hold them, what every method may acquire or block
on, and the package-wide lock-order graph.

The analysis is deliberately *syntactic type inference*, not a real
type system: it trusts the package's own annotations (parameter and
return annotations, ``self.x: T`` declarations, direct constructions
``self.x = ClassName(...)``) and propagates them through locals, loop
variables, subscripts, property getters and ``Callable[[...], ...]``
annotated lambda parameters.  Anything it cannot resolve it treats as
opaque — unresolved calls acquire nothing and (except for a small
blocking-name heuristic) block nothing, so the derived facts
under-approximate reality exactly where the code is missing
annotations.  The runtime validator (:mod:`repro.utils.locks`) is the
safety net for that gap: the stress tests assert every edge it observes
is present here, so a chain the static model lost shows up as a test
failure, not silence.

Modelled lock discipline:

* A lock is an attribute assigned ``threading.Lock()`` /
  ``threading.RLock()`` / ``repro.utils.locks.make_lock(...)`` in
  ``__init__``.  Its graph node is ``"ClassName._attr"`` — the same
  name the source passes to ``make_lock``.
* A region is ``with self._attr:`` (any number of items).  Explicit
  ``acquire()`` / ``release()`` pairs are *not* modelled; the codebase
  convention is with-blocks only.
* Held sets flow through private (underscore) helpers: a private
  method's entry-held set is the intersection of the held sets at its
  intra-class call sites (construction-time calls from ``__init__`` are
  excluded — construction is single-threaded by definition).  Public
  methods are assumed callable with nothing held.
* Lambdas and nested functions are analysed at their definition site
  with the definition site's held set — an over-approximation for
  callbacks that actually run elsewhere, and exactly right for the
  scatter work the router invokes inline on its single-shard path.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.context import FileContext

__all__ = [
    "Access",
    "Acquire",
    "BlockOp",
    "CallSite",
    "ClassModel",
    "EdgeWitness",
    "PackageModel",
    "TypeRef",
    "build_model",
    "lock_node",
]

# Dotted call paths that block (file I/O, sleeps, process-level ops).
BLOCKING_PATHS = frozenset(
    {
        "time.sleep",
        "os.fsync",
        "os.replace",
        "os.rename",
        "os.remove",
        "os.unlink",
        "os.makedirs",
        "os.fdatasync",
        "socket.create_connection",
        "subprocess.run",
        "subprocess.check_call",
        "subprocess.check_output",
    }
)

# Method names that block when called on a receiver the analysis cannot
# type: scheduler waits, socket ops and raw-handle I/O.  Resolved
# receivers never reach this heuristic — their methods are analysed for
# real.  ``join`` only counts with no positional arguments, so
# ``", ".join(parts)`` (one argument) never trips it.
BLOCKING_ATTR_NAMES = frozenset(
    {
        "sleep",
        "result",
        "fsync",
        "recv",
        "send",
        "sendall",
        "connect",
        "accept",
        "read",
        "write",
        "flush",
        "seek",
        "truncate",
    }
)

_LOCK_FACTORIES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "repro.utils.locks.make_lock",
    }
)

_SEQUENCE_NAMES = frozenset(
    {
        "list",
        "List",
        "tuple",
        "Tuple",
        "set",
        "Set",
        "frozenset",
        "FrozenSet",
        "Sequence",
        "Iterable",
        "Iterator",
        "deque",
        "Deque",
    }
)
_MAPPING_NAMES = frozenset(
    {"dict", "Dict", "Mapping", "MutableMapping", "OrderedDict", "defaultdict"}
)


def lock_node(class_name: str, attr: str) -> str:
    """Graph node id for a lock attribute (matches ``make_lock`` names)."""
    return f"{class_name}.{attr}"


@dataclass(frozen=True)
class TypeRef:
    """A conservative 'what classes might this expression be' summary.

    ``own`` are candidate class names for the value itself; ``elem``
    for what iterating/subscripting it yields; ``params`` carries the
    per-parameter types of a ``Callable[[...], ...]`` annotation (used
    to type lambda parameters at annotated call sites).
    """

    own: frozenset[str] = frozenset()
    elem: frozenset[str] = frozenset()
    params: tuple["TypeRef", ...] | None = None

    def merge(self, other: "TypeRef") -> "TypeRef":
        return TypeRef(
            own=self.own | other.own,
            elem=self.elem | other.elem,
            params=self.params if self.params is not None else other.params,
        )


EMPTY_TYPE = TypeRef()


@dataclass(frozen=True)
class Access:
    """One ``self.attr`` read or write inside a method body."""

    attr: str
    write: bool
    held: tuple[str, ...]  # own-class lock attrs held at the site
    line: int
    col: int


@dataclass(frozen=True)
class Acquire:
    """One ``with self.lock:`` entry."""

    lock_attr: str
    held: tuple[str, ...]
    line: int
    col: int


@dataclass(frozen=True)
class CallSite:
    """One call resolved to package methods/functions (possibly several
    candidates when the receiver type is a union)."""

    targets: tuple[str, ...]  # keys into PackageModel summaries
    held: tuple[str, ...]
    line: int
    col: int


@dataclass(frozen=True)
class BlockOp:
    """One directly-blocking operation (I/O, sleep, future wait)."""

    desc: str
    held: tuple[str, ...]
    line: int
    col: int


@dataclass
class FuncFacts:
    """Everything body analysis recorded for one method or function."""

    accesses: list[Access] = field(default_factory=list)
    acquires: list[Acquire] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    blockops: list[BlockOp] = field(default_factory=list)


@dataclass
class ClassModel:
    """One class's locks, methods and inferred attribute types."""

    name: str
    path: str
    module: str
    node: ast.ClassDef
    ctx: FileContext
    locks: dict[str, int] = field(default_factory=dict)
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    properties: set[str] = field(default_factory=set)
    attr_types: dict[str, TypeRef] = field(default_factory=dict)
    facts: dict[str, FuncFacts] = field(default_factory=dict)
    entry_held: dict[str, frozenset[str]] = field(default_factory=dict)
    init_only: set[str] = field(default_factory=set)


@dataclass(frozen=True)
class EdgeWitness:
    """Where one static lock-order edge was derived."""

    path: str
    line: int
    col: int
    description: str


@dataclass
class PackageModel:
    """The assembled package-wide lock model."""

    classes: dict[str, ClassModel] = field(default_factory=dict)
    ambiguous: set[str] = field(default_factory=set)
    # Module functions: key "module.func" -> (ctx, node); facts keyed the
    # same way in `facts`.
    functions: dict[str, tuple[FileContext, ast.FunctionDef]] = field(
        default_factory=dict
    )
    facts: dict[str, FuncFacts] = field(default_factory=dict)
    may_acquire: dict[str, frozenset[str]] = field(default_factory=dict)
    blocking: dict[str, str] = field(default_factory=dict)  # key -> reason
    edges: dict[tuple[str, str], EdgeWitness] = field(default_factory=dict)

    def lock_nodes(self) -> set[str]:
        return {
            lock_node(cls.name, attr)
            for cls in self.classes.values()
            for attr in cls.locks
        }

    def edge_set(self) -> set[tuple[str, str]]:
        return set(self.edges)

    def to_dot(self) -> str:
        """Graphviz form of the static lock-order graph (stable output)."""
        lines = ["digraph static_lock_order {"]
        for node in sorted(self.lock_nodes()):
            lines.append(f'  "{node}";')
        for (held, acquired), witness in sorted(self.edges.items()):
            lines.append(
                f'  "{held}" -> "{acquired}"'
                f'  [label="{witness.path}:{witness.line}"];'
            )
        lines.append("}")
        return "\n".join(lines) + "\n"


def _module_of(path: str) -> str:
    """Dotted module path of a source file (best effort)."""
    norm = path.replace("\\", "/")
    for marker in ("src/", ""):
        prefix = f"{marker}repro/"
        index = norm.find(prefix)
        if index != -1:
            trimmed = norm[index + len(marker) :]
            if trimmed.endswith(".py"):
                trimmed = trimmed[: -len(".py")]
            if trimmed.endswith("/__init__"):
                trimmed = trimmed[: -len("/__init__")]
            return trimmed.replace("/", ".")
    base = norm.rsplit("/", 1)[-1]
    return base[: -len(".py")] if base.endswith(".py") else base


def _is_lock_factory(ctx: FileContext, value: ast.expr) -> bool:
    if not isinstance(value, ast.Call):
        return False
    resolved = ctx.resolve(value.func)
    if resolved in _LOCK_FACTORIES:
        return True
    # Same-module (or star-imported) bare ``make_lock(...)``.
    return (
        isinstance(value.func, ast.Name) and value.func.id == "make_lock"
    )


def _self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _Annotations:
    """Annotation -> :class:`TypeRef` resolution against known classes."""

    def __init__(self, known: frozenset[str]) -> None:
        self._known = known

    def resolve(self, node: ast.expr | None) -> TypeRef:
        if node is None:
            return EMPTY_TYPE
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                parsed = ast.parse(node.value, mode="eval")
            except SyntaxError:
                return EMPTY_TYPE
            return self.resolve(parsed.body)
        if isinstance(node, ast.Name):
            return self._named(node.id)
        if isinstance(node, ast.Attribute):
            return self._named(node.attr)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            return self.resolve(node.left).merge(self.resolve(node.right))
        if isinstance(node, ast.Subscript):
            return self._subscript(node)
        return EMPTY_TYPE

    def _named(self, name: str) -> TypeRef:
        if name in self._known:
            return TypeRef(own=frozenset({name}))
        return EMPTY_TYPE

    def _base_name(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    def _subscript(self, node: ast.Subscript) -> TypeRef:
        base = self._base_name(node.value)
        slice_node = node.slice
        items: list[ast.expr]
        if isinstance(slice_node, ast.Tuple):
            items = list(slice_node.elts)
        else:
            items = [slice_node]
        if base == "Optional":
            return self.resolve(items[0]) if items else EMPTY_TYPE
        if base == "Union":
            merged = EMPTY_TYPE
            for item in items:
                merged = merged.merge(self.resolve(item))
            return merged
        if base in _SEQUENCE_NAMES:
            elems: frozenset[str] = frozenset()
            for item in items:
                if isinstance(item, ast.Constant) and item.value is Ellipsis:
                    continue
                elems |= self.resolve(item).own
            return TypeRef(elem=elems)
        if base in _MAPPING_NAMES:
            value_type = (
                self.resolve(items[1]) if len(items) >= 2 else EMPTY_TYPE
            )
            return TypeRef(elem=value_type.own)
        if base == "Callable" and items and isinstance(items[0], ast.List):
            params = tuple(
                self.resolve(param) for param in items[0].elts
            )
            return TypeRef(params=params)
        # Generic over something else (e.g. a user class) — keep the base.
        return self._named(base) if base is not None else EMPTY_TYPE


class _Analyzer:
    """Body analysis: held-set tracking + local type propagation."""

    def __init__(
        self,
        model: PackageModel,
        ann: _Annotations,
        ctx: FileContext,
        cls: ClassModel | None,
        facts: FuncFacts,
    ) -> None:
        self._model = model
        self._ann = ann
        self._ctx = ctx
        self._cls = cls
        self._facts = facts

    # -- type lookups ---------------------------------------------------
    def _class(self, name: str) -> ClassModel | None:
        if name in self._model.ambiguous:
            return None
        return self._model.classes.get(name)

    def _attr_type(self, owner: TypeRef, attr: str) -> TypeRef:
        merged = EMPTY_TYPE
        for name in owner.own:
            cls = self._class(name)
            if cls is None:
                continue
            merged = merged.merge(cls.attr_types.get(attr, EMPTY_TYPE))
            if attr in cls.properties:
                method = cls.methods.get(attr)
                if method is not None:
                    merged = merged.merge(self._ann.resolve(method.returns))
        return merged

    def _return_type(self, owner: TypeRef, method_name: str) -> TypeRef:
        merged = EMPTY_TYPE
        for name in owner.own:
            cls = self._class(name)
            method = cls.methods.get(method_name) if cls else None
            if method is not None:
                merged = merged.merge(self._ann.resolve(method.returns))
        return merged

    def _resolve_class_object(self, node: ast.expr) -> str | None:
        """A Name/Attribute that denotes a class (import or same module)."""
        dotted = self._ctx.resolve(node)
        if dotted is not None:
            tail = dotted.rsplit(".", 1)[-1]
            if self._class(tail) is not None:
                return tail
        if isinstance(node, ast.Name) and self._class(node.id) is not None:
            return node.id
        return None

    def _type_of(self, node: ast.expr, env: dict[str, TypeRef]) -> TypeRef:
        if isinstance(node, ast.Name):
            return env.get(node.id, EMPTY_TYPE)
        if isinstance(node, ast.Attribute):
            if node.value is not None and _self_attr(node) is not None:
                if self._cls is not None:
                    return self._attr_type(
                        TypeRef(own=frozenset({self._cls.name})), node.attr
                    )
                return EMPTY_TYPE
            return self._attr_type(self._type_of(node.value, env), node.attr)
        if isinstance(node, ast.Subscript):
            return TypeRef(own=self._type_of(node.value, env).elem)
        if isinstance(node, ast.Call):
            return self._call_type(node, env)
        if isinstance(node, ast.IfExp):
            return self._type_of(node.body, env).merge(
                self._type_of(node.orelse, env)
            )
        if isinstance(node, ast.BoolOp):
            merged = EMPTY_TYPE
            for value in node.values:
                merged = merged.merge(self._type_of(value, env))
            return merged
        return EMPTY_TYPE

    def _call_type(self, node: ast.Call, env: dict[str, TypeRef]) -> TypeRef:
        func = node.func
        cls_name = self._resolve_class_object(func)
        if cls_name is not None:
            return TypeRef(own=frozenset({cls_name}))
        if isinstance(func, ast.Attribute):
            # Classmethod constructors: ClassName.method(...)
            owner_cls = self._resolve_class_object(func.value)
            if owner_cls is not None:
                return self._return_type(
                    TypeRef(own=frozenset({owner_cls})), func.attr
                )
            receiver = self._type_of(func.value, env)
            if receiver.own:
                return self._return_type(receiver, func.attr)
            if func.attr == "get":
                # dict.get on a mapping-typed expression yields a value.
                return TypeRef(own=self._type_of(func.value, env).elem)
            return EMPTY_TYPE
        dotted = self._ctx.resolve(func)
        if dotted is not None and dotted in self._model.functions:
            _, fnode = self._model.functions[dotted]
            return self._ann.resolve(fnode.returns)
        if isinstance(func, ast.Name):
            key = f"{_module_of(self._ctx.path)}.{func.id}"
            if key in self._model.functions:
                _, fnode = self._model.functions[key]
                return self._ann.resolve(fnode.returns)
        return EMPTY_TYPE

    # -- call target resolution -----------------------------------------
    def _call_targets(
        self, node: ast.Call, env: dict[str, TypeRef]
    ) -> tuple[str, ...]:
        func = node.func
        targets: list[str] = []
        if isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and self._cls is not None
            ):
                if func.attr in self._cls.methods:
                    targets.append(f"{self._cls.name}.{func.attr}")
                return tuple(targets)
            owner_cls = self._resolve_class_object(func.value)
            if owner_cls is not None:
                cls = self._class(owner_cls)
                if cls is not None and func.attr in cls.methods:
                    targets.append(f"{owner_cls}.{func.attr}")
                return tuple(targets)
            receiver = self._type_of(func.value, env)
            for name in sorted(receiver.own):
                cls = self._class(name)
                if cls is not None and func.attr in cls.methods:
                    targets.append(f"{name}.{func.attr}")
            return tuple(targets)
        dotted = self._ctx.resolve(func)
        if dotted is not None and dotted in self._model.functions:
            return (dotted,)
        if isinstance(func, ast.Name):
            key = f"{_module_of(self._ctx.path)}.{func.id}"
            if key in self._model.functions:
                return (key,)
        return ()

    def _callee_param_types(
        self, target: str
    ) -> tuple[list[str], dict[str, TypeRef]]:
        """(positional parameter names, name -> TypeRef) for a target."""
        node: ast.FunctionDef | None = None
        skip_self = False
        if target in self._model.functions:
            node = self._model.functions[target][1]
        else:
            cls_name, _, method_name = target.rpartition(".")
            cls = self._class(cls_name)
            if cls is not None:
                node = cls.methods.get(method_name)
                skip_self = True
        if node is None:
            return [], {}
        params = [arg.arg for arg in node.args.args]
        if skip_self and params and params[0] in ("self", "cls"):
            params = params[1:]
            args = node.args.args[1:]
        else:
            args = node.args.args
        types = {
            arg.arg: self._ann.resolve(arg.annotation) for arg in args
        }
        return params, types

    # -- recording -------------------------------------------------------
    def _record_access(
        self, attr: str, write: bool, held: tuple[str, ...], node: ast.expr
    ) -> None:
        if self._cls is None or attr in self._cls.locks:
            return
        self._facts.accesses.append(
            Access(attr, write, held, node.lineno, node.col_offset)
        )

    def _record_block(
        self, desc: str, held: tuple[str, ...], node: ast.expr
    ) -> None:
        self._facts.blockops.append(
            BlockOp(desc, held, node.lineno, node.col_offset)
        )

    # -- statement walking ----------------------------------------------
    def run(
        self,
        body: Iterable[ast.stmt],
        env: dict[str, TypeRef],
        held: tuple[str, ...],
    ) -> None:
        for stmt in body:
            self._stmt(stmt, env, held)

    def _stmt(
        self, stmt: ast.stmt, env: dict[str, TypeRef], held: tuple[str, ...]
    ) -> None:
        if isinstance(stmt, ast.With):
            self._with(stmt, env, held)
        elif isinstance(stmt, ast.Assign):
            self._expr(stmt.value, env, held)
            value_type = self._type_of(stmt.value, env)
            for target in stmt.targets:
                self._assign_target(target, value_type, env, held)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._expr(stmt.value, env, held)
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = self._ann.resolve(stmt.annotation)
            else:
                self._assign_target(stmt.target, EMPTY_TYPE, env, held)
        elif isinstance(stmt, ast.AugAssign):
            self._expr(stmt.value, env, held)
            attr = _self_attr(stmt.target)
            if attr is not None:
                self._record_access(attr, True, held, stmt.target)
            elif isinstance(stmt.target, ast.Attribute):
                self._expr(stmt.target.value, env, held)
        elif isinstance(stmt, ast.For):
            self._expr(stmt.iter, env, held)
            iter_type = self._type_of(stmt.iter, env)
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = TypeRef(own=iter_type.elem)
            self.run(stmt.body, env, held)
            self.run(stmt.orelse, env, held)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._expr(stmt.test, env, held)
            self.run(stmt.body, env, held)
            self.run(stmt.orelse, env, held)
        elif isinstance(stmt, ast.Try):
            self.run(stmt.body, env, held)
            for handler in stmt.handlers:
                if handler.name:
                    env[handler.name] = EMPTY_TYPE
                self.run(handler.body, env, held)
            self.run(stmt.orelse, env, held)
            self.run(stmt.finalbody, env, held)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested function: analysed at the definition site's held set
            # (over-approximates callbacks that run elsewhere; see module
            # docstring).
            nested_env = {
                arg.arg: self._ann.resolve(arg.annotation)
                for arg in stmt.args.args
            }
            self.run(stmt.body, nested_env, held)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value, env, held)
        elif isinstance(stmt, ast.Expr):
            self._expr(stmt.value, env, held)
        elif isinstance(stmt, (ast.Raise, ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child, env, held)
        # pass/break/continue/import/global/nonlocal: nothing to record.

    def _assign_target(
        self,
        target: ast.expr,
        value_type: TypeRef,
        env: dict[str, TypeRef],
        held: tuple[str, ...],
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value_type
            return
        attr = _self_attr(target)
        if attr is not None:
            self._record_access(attr, True, held, target)
            return
        if isinstance(target, ast.Attribute):
            self._expr(target.value, env, held)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign_target(element, EMPTY_TYPE, env, held)
        elif isinstance(target, ast.Subscript):
            self._expr(target.value, env, held)
            self._expr(target.slice, env, held)

    def _with(
        self, stmt: ast.With, env: dict[str, TypeRef], held: tuple[str, ...]
    ) -> None:
        new_held = held
        for item in stmt.items:
            attr = _self_attr(item.context_expr)
            if (
                attr is not None
                and self._cls is not None
                and attr in self._cls.locks
            ):
                self._facts.acquires.append(
                    Acquire(
                        attr,
                        new_held,
                        item.context_expr.lineno,
                        item.context_expr.col_offset,
                    )
                )
                if attr not in new_held:
                    new_held = new_held + (attr,)
            else:
                self._expr(item.context_expr, env, new_held)
                if item.optional_vars is not None and isinstance(
                    item.optional_vars, ast.Name
                ):
                    env[item.optional_vars.id] = self._type_of(
                        item.context_expr, env
                    )
        self.run(stmt.body, env, new_held)

    # -- expression walking ----------------------------------------------
    def _expr(
        self, node: ast.expr, env: dict[str, TypeRef], held: tuple[str, ...]
    ) -> None:
        if isinstance(node, ast.Call):
            self._call(node, env, held)
            return
        if isinstance(node, ast.Attribute):
            self._attribute(node, env, held)
            return
        if isinstance(node, ast.Lambda):
            nested_env = {arg.arg: EMPTY_TYPE for arg in node.args.args}
            self._expr(node.body, nested_env, held)
            return
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            self._comprehension(node, env, held)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child, env, held)

    def _comprehension(
        self, node: ast.expr, env: dict[str, TypeRef], held: tuple[str, ...]
    ) -> None:
        inner = dict(env)
        for gen in node.generators:  # type: ignore[attr-defined]
            self._expr(gen.iter, inner, held)
            iter_type = self._type_of(gen.iter, inner)
            if isinstance(gen.target, ast.Name):
                inner[gen.target.id] = TypeRef(own=iter_type.elem)
            for condition in gen.ifs:
                self._expr(condition, inner, held)
        if isinstance(node, ast.DictComp):
            self._expr(node.key, inner, held)
            self._expr(node.value, inner, held)
        else:
            self._expr(node.elt, inner, held)  # type: ignore[attr-defined]

    def _attribute(
        self, node: ast.Attribute, env: dict[str, TypeRef], held: tuple[str, ...]
    ) -> None:
        attr = _self_attr(node)
        if attr is not None:
            write = isinstance(node.ctx, (ast.Store, ast.Del))
            self._record_access(attr, write, held, node)
            return
        # Property loads on typed receivers count as getter calls (a
        # property body can acquire locks or block).
        receiver = self._type_of(node.value, env)
        targets = [
            f"{name}.{node.attr}"
            for name in sorted(receiver.own)
            if (cls := self._class(name)) is not None
            and node.attr in cls.properties
        ]
        if targets:
            self._facts.calls.append(
                CallSite(tuple(targets), held, node.lineno, node.col_offset)
            )
        self._expr(node.value, env, held)

    def _call(
        self, node: ast.Call, env: dict[str, TypeRef], held: tuple[str, ...]
    ) -> None:
        targets = self._call_targets(node, env)
        if targets:
            self._facts.calls.append(
                CallSite(targets, held, node.lineno, node.col_offset)
            )
        else:
            self._unresolved_call(node, env, held)
        # Walk the receiver chain (records self.attr loads).
        if isinstance(node.func, ast.Attribute):
            self._expr(node.func.value, env, held)
        # Arguments; lambdas get parameter types from the callee's
        # Callable[[...], ...] annotations when a single target resolves.
        param_names: list[str] = []
        param_types: dict[str, TypeRef] = {}
        if len(targets) == 1:
            param_names, param_types = self._callee_param_types(targets[0])
        for position, arg in enumerate(node.args):
            self._argument(arg, position, None, param_names, param_types, env, held)
        for keyword in node.keywords:
            self._argument(
                keyword.value, None, keyword.arg, param_names, param_types, env, held
            )

    def _argument(
        self,
        arg: ast.expr,
        position: int | None,
        keyword: str | None,
        param_names: list[str],
        param_types: dict[str, TypeRef],
        env: dict[str, TypeRef],
        held: tuple[str, ...],
    ) -> None:
        if not isinstance(arg, ast.Lambda):
            self._expr(arg, env, held)
            return
        annotation = EMPTY_TYPE
        if keyword is not None:
            annotation = param_types.get(keyword, EMPTY_TYPE)
        elif position is not None and position < len(param_names):
            annotation = param_types.get(param_names[position], EMPTY_TYPE)
        callable_params = annotation.params or ()
        nested_env: dict[str, TypeRef] = {}
        for index, lambda_arg in enumerate(arg.args.args):
            nested_env[lambda_arg.arg] = (
                callable_params[index]
                if index < len(callable_params)
                else EMPTY_TYPE
            )
        self._expr(arg.body, nested_env, held)

    def _unresolved_call(
        self, node: ast.Call, env: dict[str, TypeRef], held: tuple[str, ...]
    ) -> None:
        func = node.func
        dotted = self._ctx.resolve(func)
        if dotted is not None and dotted in BLOCKING_PATHS:
            self._record_block(dotted, held, node)
            return
        if (
            isinstance(func, ast.Name)
            and func.id == "open"
            and func.id not in env
            and func.id not in self._ctx.imports
        ):
            self._record_block("open()", held, node)
            return
        if isinstance(func, ast.Attribute):
            receiver = self._type_of(func.value, env)
            if receiver.own:
                return  # typed receiver without that method: not blocking
            if func.attr in BLOCKING_ATTR_NAMES:
                self._record_block(f".{func.attr}()", held, node)
            elif func.attr == "join" and not node.args:
                self._record_block(".join()", held, node)


def _collect_class(
    ctx: FileContext, node: ast.ClassDef, module: str
) -> ClassModel:
    cls = ClassModel(
        name=node.name, path=ctx.path, module=module, node=node, ctx=ctx
    )
    for item in node.body:
        if isinstance(item, ast.FunctionDef):
            cls.methods[item.name] = item
            for decorator in item.decorator_list:
                if (
                    isinstance(decorator, ast.Name)
                    and decorator.id == "property"
                ):
                    cls.properties.add(item.name)
    init = cls.methods.get("__init__")
    if init is not None:
        for stmt in ast.walk(init):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                attr = _self_attr(stmt.targets[0])
                if attr is not None and _is_lock_factory(ctx, stmt.value):
                    cls.locks[attr] = stmt.lineno
    return cls


def _collect_attr_types(
    model: PackageModel, ann: _Annotations, cls: ClassModel
) -> None:
    """Infer self-attribute types from annotations and constructions."""
    analyzer = _Analyzer(model, ann, cls.ctx, cls, FuncFacts())
    for method in cls.methods.values():
        param_env = {
            arg.arg: ann.resolve(arg.annotation)
            for arg in method.args.args
        }
        for stmt in ast.walk(method):
            attr: str | None
            if isinstance(stmt, ast.AnnAssign):
                attr = _self_attr(stmt.target)
                if attr is not None:
                    inferred = ann.resolve(stmt.annotation)
                    if inferred is not EMPTY_TYPE:
                        cls.attr_types[attr] = cls.attr_types.get(
                            attr, EMPTY_TYPE
                        ).merge(inferred)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                attr = _self_attr(stmt.targets[0])
                if attr is None or attr in cls.locks:
                    continue
                inferred = analyzer._type_of(stmt.value, param_env)
                if inferred.own or inferred.elem:
                    cls.attr_types[attr] = cls.attr_types.get(
                        attr, EMPTY_TYPE
                    ).merge(inferred)


def _analyze_bodies(model: PackageModel, ann: _Annotations) -> None:
    for cls in model.classes.values():
        for name, method in cls.methods.items():
            facts = FuncFacts()
            analyzer = _Analyzer(model, ann, cls.ctx, cls, facts)
            env = {
                arg.arg: ann.resolve(arg.annotation)
                for arg in method.args.args
            }
            if method.args.args and method.args.args[0].arg == "self":
                env["self"] = TypeRef(own=frozenset({cls.name}))
            analyzer.run(method.body, env, ())
            key = f"{cls.name}.{name}"
            cls.facts[name] = facts
            model.facts[key] = facts
    for key, (ctx, node) in model.functions.items():
        facts = FuncFacts()
        analyzer = _Analyzer(model, ann, ctx, None, facts)
        env = {
            arg.arg: ann.resolve(arg.annotation) for arg in node.args.args
        }
        analyzer.run(node.body, env, ())
        model.facts[key] = facts


def _compute_entry_held(cls: ClassModel) -> None:
    """Fixed point: held-at-entry for private helpers, and the set of
    construction-only helpers exempt from guard checks."""
    # Intra-class call sites: method -> list of (caller, held-at-site).
    sites: dict[str, list[tuple[str, tuple[str, ...]]]] = {}
    for caller, facts in cls.facts.items():
        for call in facts.calls:
            for target in call.targets:
                owner, _, method_name = target.rpartition(".")
                if owner == cls.name and method_name in cls.methods:
                    sites.setdefault(method_name, []).append(
                        (caller, call.held)
                    )

    # Construction-only helpers: every call site is in __init__ or
    # another construction-only helper, and there is at least one site.
    init_only = {
        name
        for name in cls.methods
        if name != "__init__" and sites.get(name)
    }
    changed = True
    while changed:
        changed = False
        for name in sorted(init_only):
            callers = {caller for caller, _ in sites.get(name, [])}
            if not callers <= (init_only | {"__init__"}):
                init_only.discard(name)
                changed = True
    cls.init_only = init_only

    all_locks = frozenset(cls.locks)
    entry: dict[str, frozenset[str]] = {}
    for name in cls.methods:
        private = name.startswith("_") and not name.startswith("__")
        eligible = [
            (caller, held)
            for caller, held in sites.get(name, [])
            if caller != "__init__" and caller not in init_only
        ]
        if private and eligible:
            entry[name] = all_locks  # optimistic top, narrowed below
        else:
            entry[name] = frozenset()
    changed = True
    while changed:
        changed = False
        for name in sorted(cls.methods):
            eligible = [
                (caller, held)
                for caller, held in sites.get(name, [])
                if caller != "__init__" and caller not in init_only
            ]
            if not (
                name.startswith("_")
                and not name.startswith("__")
                and eligible
            ):
                continue
            narrowed = all_locks
            for caller, held in eligible:
                narrowed &= frozenset(held) | entry.get(caller, frozenset())
            if narrowed != entry[name]:
                entry[name] = narrowed
                changed = True
    cls.entry_held = entry


def _fixed_points(model: PackageModel) -> None:
    """may-acquire and blocking closures over the package call graph."""
    may: dict[str, frozenset[str]] = {}
    blocking: dict[str, str] = {}
    for key, facts in model.facts.items():
        owner, _, _ = key.rpartition(".")
        direct = frozenset(
            lock_node(owner, acq.lock_attr)
            for acq in facts.acquires
            if owner in model.classes
        )
        may[key] = direct
        if facts.blockops:
            first = min(facts.blockops, key=lambda op: (op.line, op.col))
            blocking[key] = first.desc
    changed = True
    while changed:
        changed = False
        for key, facts in model.facts.items():
            acquired = may[key]
            block_reason = blocking.get(key)
            for call in facts.calls:
                for target in call.targets:
                    acquired = acquired | may.get(target, frozenset())
                    if block_reason is None and target in blocking:
                        block_reason = f"calls {target} ({blocking[target]})"
            if acquired != may[key]:
                may[key] = acquired
                changed = True
            if block_reason is not None and key not in blocking:
                blocking[key] = block_reason
                changed = True
    model.may_acquire = may
    model.blocking = blocking


def _held_nodes(
    cls: ClassModel, method_name: str, held: tuple[str, ...]
) -> frozenset[str]:
    local = frozenset(held) | cls.entry_held.get(method_name, frozenset())
    return frozenset(lock_node(cls.name, attr) for attr in local)


def _derive_edges(model: PackageModel) -> None:
    edges: dict[tuple[str, str], EdgeWitness] = {}

    def add(held: str, acquired: str, witness: EdgeWitness) -> None:
        if held != acquired and (held, acquired) not in edges:
            edges[(held, acquired)] = witness

    for cls in model.classes.values():
        for method_name, facts in sorted(cls.facts.items()):
            for acq in facts.acquires:
                target_node = lock_node(cls.name, acq.lock_attr)
                for held in sorted(
                    _held_nodes(cls, method_name, acq.held)
                ):
                    add(
                        held,
                        target_node,
                        EdgeWitness(
                            cls.path,
                            acq.line,
                            acq.col,
                            f"{cls.name}.{method_name} nests "
                            f"{target_node} under {held}",
                        ),
                    )
            for call in facts.calls:
                held_nodes = _held_nodes(cls, method_name, call.held)
                if not held_nodes:
                    continue
                for target in call.targets:
                    for acquired in sorted(
                        model.may_acquire.get(target, frozenset())
                    ):
                        for held in sorted(held_nodes):
                            add(
                                held,
                                acquired,
                                EdgeWitness(
                                    cls.path,
                                    call.line,
                                    call.col,
                                    f"{cls.name}.{method_name} calls "
                                    f"{target} (acquires {acquired}) "
                                    f"under {held}",
                                ),
                            )
    model.edges = edges


def build_model(contexts: Iterable[FileContext]) -> PackageModel:
    """Assemble the package lock model from parsed file contexts."""
    model = PackageModel()
    modules: list[tuple[FileContext, str]] = []
    for ctx in contexts:
        module = _module_of(ctx.path)
        modules.append((ctx, module))
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                if node.name in model.classes:
                    model.ambiguous.add(node.name)
                model.classes[node.name] = _collect_class(ctx, node, module)
            elif isinstance(node, ast.FunctionDef):
                model.functions[f"{module}.{node.name}"] = (ctx, node)
    for name in model.ambiguous:
        model.classes.pop(name, None)

    known = frozenset(model.classes)
    ann = _Annotations(known)
    for cls in model.classes.values():
        _collect_attr_types(model, ann, cls)
    _analyze_bodies(model, ann)
    for cls in model.classes.values():
        _compute_entry_held(cls)
    _fixed_points(model)
    _derive_edges(model)
    return model
