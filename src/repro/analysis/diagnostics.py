"""Diagnostic records emitted by vilint rules.

A diagnostic pins one finding to a (rule, file, line) location.  The
location triple is also the identity used by the baseline file and by
inline suppressions, so it is deliberately small and stable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Diagnostic", "Severity"]


class Severity(enum.Enum):
    """How seriously a finding should be taken.

    ``ERROR`` findings fail the lint run (non-zero exit).  ``WARNING``
    findings are printed but never fail the run — used for advisory
    conditions such as stale baseline entries.
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One lint finding.

    Attributes
    ----------
    path:
        File the finding is in, normalised to forward slashes and made
        relative to the working directory when possible.
    line / col:
        1-based line and 0-based column of the offending node.
    rule:
        The rule's kebab-case name (e.g. ``seeded-rng``) — the id used in
        suppression comments and baseline entries.
    code:
        The rule's short numeric code (e.g. ``VIL002``).
    message:
        Human-readable explanation of the finding.
    severity:
        :class:`Severity` of the finding.
    """

    path: str
    line: int
    col: int
    rule: str
    code: str
    message: str
    severity: Severity = Severity.ERROR

    def format(self) -> str:
        """Render as ``path:line:col: CODE [rule] message``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} [{self.rule}] {self.message}"
        )

    def baseline_key(self) -> tuple[str, int, str]:
        """Identity used for baseline matching."""
        return (self.path, self.line, self.rule)
