"""Sealed-segment wire format: framed, fingerprinted WAL transactions.

A segment is one committed transaction exactly as the primary's
write-ahead log made it durable — the raw PAGE/META/COMMIT record bytes
the WAL's segment sink received — wrapped in a frame that pins *where
the transaction belongs in the replication stream*:

``seq``
    The segment's position.  Segments apply in sequence with no gaps; a
    replica seeing ``seq != applied_seq + 1`` has missed (or re-received)
    traffic and must re-bootstrap rather than guess.
``base_token`` / ``after_token``
    The index content tokens (:meth:`VitriIndex.content_token`) of the
    primary's state immediately before and after the transaction.
    Because a replica is a byte-identical copy, its own token must equal
    ``base_token`` before the apply and ``after_token`` after it — the
    end-to-end check that catches any divergence the per-record CRCs
    cannot (a valid segment applied to the wrong base, a reordered
    stream, an apply that half-failed).

The frame itself carries a CRC32 over header *and* payload, so transport
corruption is detected before the stricter per-record validation in
:func:`repro.storage.wal.scan_transaction` even runs.  Any defect raises
:class:`SegmentFrameError`; decoding never returns a best-effort prefix.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

__all__ = [
    "EMPTY_TOKEN",
    "SealedSegment",
    "SegmentFrameError",
    "decode_segment",
    "encode_segment",
    "iter_segments",
    "verify_segment_chain",
]

#: Content token of a database with no built index (tokens are 32-char
#: blake2b-16 hex digests; the zero digest is unreachable in practice).
EMPTY_TOKEN = "0" * 32

_MAGIC = b"VSEG"
_VERSION = 1
# magic, version, seq, base token (16 raw bytes), after token, payload len
_HEADER = struct.Struct("<4sBQ16s16sI")
_CRC = struct.Struct("<I")
_TOKEN_HEX_LEN = 32


class SegmentFrameError(ValueError):
    """A shipped segment's frame failed validation."""


def _token_bytes(token: str, name: str) -> bytes:
    if not isinstance(token, str) or len(token) != _TOKEN_HEX_LEN:
        raise ValueError(
            f"{name} must be a {_TOKEN_HEX_LEN}-char hex token, got {token!r}"
        )
    try:
        return bytes.fromhex(token)
    except ValueError as exc:
        raise ValueError(f"{name} is not valid hex: {token!r}") from exc


@dataclass(frozen=True)
class SealedSegment:
    """One committed transaction plus its position in the stream.

    ``payload`` is the transaction's raw WAL record bytes — what
    :func:`repro.storage.wal.scan_transaction` parses.
    """

    seq: int
    base_token: str
    after_token: str
    payload: bytes

    def __post_init__(self) -> None:
        if not isinstance(self.seq, int) or isinstance(self.seq, bool):
            raise TypeError("seq must be an int")
        if self.seq < 0:
            raise ValueError(f"seq must be >= 0, got {self.seq}")
        _token_bytes(self.base_token, "base_token")
        _token_bytes(self.after_token, "after_token")
        if not isinstance(self.payload, (bytes, bytearray)):
            raise TypeError("payload must be bytes")


def encode_segment(segment: SealedSegment) -> bytes:
    """Frame a sealed segment for shipping."""
    if not isinstance(segment, SealedSegment):
        raise TypeError("segment must be a SealedSegment")
    body = (
        _HEADER.pack(
            _MAGIC,
            _VERSION,
            segment.seq,
            _token_bytes(segment.base_token, "base_token"),
            _token_bytes(segment.after_token, "after_token"),
            len(segment.payload),
        )
        + bytes(segment.payload)
    )
    return body + _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)


def decode_segment(raw: bytes) -> SealedSegment:
    """Parse one framed segment, validating every field.

    Raises :class:`SegmentFrameError` on any defect — wrong magic or
    version, truncation, trailing bytes, or CRC mismatch.
    """
    if not isinstance(raw, (bytes, bytearray)):
        raise TypeError("raw must be bytes")
    raw = bytes(raw)
    if len(raw) < _HEADER.size + _CRC.size:
        raise SegmentFrameError(
            f"segment is {len(raw)} bytes, shorter than the minimal frame"
        )
    magic, version, seq, base_raw, after_raw, length = _HEADER.unpack_from(raw)
    if magic != _MAGIC:
        raise SegmentFrameError(f"bad segment magic {magic!r}")
    if version != _VERSION:
        raise SegmentFrameError(f"unsupported segment version {version}")
    end = _HEADER.size + length
    if end + _CRC.size != len(raw):
        raise SegmentFrameError(
            f"segment length mismatch: header says {length} payload bytes, "
            f"frame holds {len(raw) - _HEADER.size - _CRC.size}"
        )
    body = raw[:end]
    (stored,) = _CRC.unpack_from(raw, end)
    if stored != (zlib.crc32(body) & 0xFFFFFFFF):
        raise SegmentFrameError("segment checksum mismatch")
    return SealedSegment(
        seq=seq,
        base_token=base_raw.hex(),
        after_token=after_raw.hex(),
        payload=raw[_HEADER.size : end],
    )


def iter_segments(raw: bytes):
    """Yield every framed segment from a concatenated stream, in order.

    The durable ``segments.log`` is exactly this: back-to-back encoded
    frames.  Each frame's extent comes from its own header, so a
    truncated tail (a crash mid-append) or any in-frame corruption
    raises :class:`SegmentFrameError` with the byte offset — decoding
    never silently stops at a bad frame.
    """
    if not isinstance(raw, (bytes, bytearray)):
        raise TypeError("raw must be bytes")
    raw = bytes(raw)
    offset = 0
    while offset < len(raw):
        remaining = len(raw) - offset
        if remaining < _HEADER.size + _CRC.size:
            raise SegmentFrameError(
                f"truncated segment log at byte {offset}: {remaining} "
                f"trailing bytes, shorter than the minimal frame"
            )
        _, _, _, _, _, length = _HEADER.unpack_from(raw, offset)
        end = offset + _HEADER.size + length + _CRC.size
        if end > len(raw):
            raise SegmentFrameError(
                f"truncated segment log at byte {offset}: frame claims "
                f"{end - offset} bytes, {remaining} remain"
            )
        try:
            yield decode_segment(raw[offset:end])
        except SegmentFrameError as exc:
            raise SegmentFrameError(
                f"bad segment frame at byte {offset}: {exc}"
            ) from exc
        offset = end


def verify_segment_chain(raw: bytes) -> dict:
    """Structurally verify a concatenated segment stream.

    Checks what a replica's apply gauntlet checks, minus the apply:
    every frame's CRC, strictly gap-free ascending sequence numbers, and
    the hash chain — each segment's ``base_token`` must equal its
    predecessor's ``after_token`` (the first segment's base is accepted
    as the chain root).  Raises :class:`SegmentFrameError` on any
    defect; returns a summary dict for reporting::

        {"segments": n, "first_seq": s0, "last_seq": s1,
         "base_token": root, "after_token": tip}

    (zeros/``None`` tokens when the stream is empty — an empty log is a
    valid chain of length zero).
    """
    count = 0
    first_seq = 0
    last_seq = 0
    root: str | None = None
    tip: str | None = None
    for segment in iter_segments(raw):
        if count == 0:
            first_seq = segment.seq
            root = segment.base_token
        else:
            if segment.seq != last_seq + 1:
                raise SegmentFrameError(
                    f"sequence gap: segment {segment.seq} follows {last_seq}"
                )
            if segment.base_token != tip:
                raise SegmentFrameError(
                    f"hash chain broken at seq {segment.seq}: base token "
                    f"{segment.base_token} != previous after token {tip}"
                )
        last_seq = segment.seq
        tip = segment.after_token
        count += 1
    return {
        "segments": count,
        "first_seq": first_seq,
        "last_seq": last_seq,
        "base_token": root,
        "after_token": tip,
    }
