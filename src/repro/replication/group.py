"""Replica-set serving: one shard's copies behind a single shard-like face.

:class:`ReplicaSet` groups a durable primary :class:`Shard` with N
:class:`ReplicaShard` copies and presents the whole group through the
shard interface the routing layer already speaks (``knn``,
``similarity_range``, ``may_contain``, ...), plus one extension the
router discovers by duck typing: ``replica_aware = True`` and an
``attempt=`` keyword on the query methods.  The attempt ordinal is the
dispatch count :func:`repro.shard.resilience.run_attempts` hands its
work callable — folding it into copy selection is what sends a hedged or
retried attempt to a *different* copy instead of re-hitting the one that
was slow.

Routing rules, in order:

1. Reads route by *query affinity*: the query's video id hashes to a
   home copy among the admitted ones (primary + synced replicas whose
   per-copy breaker allows).  Affinity is what makes the cache tiers
   pay under replication — a hot key's repeats keep landing on the
   copy whose caches already hold it, so N copies partition the
   working set instead of each paying the full warmup.  The attempt
   ordinal offsets from the home copy, sending a hedge or retry to a
   *different* copy than the one being slow.
2. A copy whose breaker is open is skipped at admission; when every
   replica is tripped or unsynced, the primary serves (it is always
   admitted as the last resort).
3. Per-copy outcomes feed per-copy breakers, so a copy that keeps
   failing stops receiving traffic after ``BreakerPolicy.min_volume``
   failures and is probed again after its cooldown.

Each copy carries a serving gate (a lock held for the duration of one
query) modelling what the network layer makes physical — one
single-worker server per copy — so in-process throughput benchmarks see
the same scaling shape as the fleet: N copies ≈ N concurrent queries.

Writes go to the primary only.  :meth:`ReplicaSet.sync` pumps sealed
segments to every replica and re-bootstraps any copy that refused one or
fell behind the shipper's retained log; :meth:`ReplicaSet.attach_replica`
bootstraps a new copy from a snapshot and (by default) warms its range
cache with the primary's current hot ranges.
"""

from __future__ import annotations

# vilint: disable-file=blocking-while-locked -- each copy's serving gate
# is *meant* to be held across a whole query: it models the copy's
# single-worker server, so closed-loop clients contend per copy exactly
# as they would over the network.  Distinct copies' gates are never
# nested.

from repro.replication.replica import NEEDS_BOOTSTRAP, SYNCED, ReplicaShard
from repro.replication.shipper import WalShipper
from repro.shard.resilience import BreakerPolicy, CircuitBreaker
from repro.shard.shard import Shard
from repro.utils.clock import Clock
from repro.utils.counters import CostCounters
from repro.utils.locks import make_lock

__all__ = ["ReplicaSet"]

# Fibonacci-hash multiplier: spreads consecutive video ids across the
# copy pool instead of striping them by id parity.
_MIX = 2654435761


def _affinity(key: int) -> int:
    """Deterministic spread of a query key over copy indices."""
    return (int(key) * _MIX) & 0xFFFFFFFF


class _Copy:
    """One serving copy: the shard-like, its breaker, its gate."""

    def __init__(self, target, breaker: CircuitBreaker, name: str) -> None:
        self.target = target
        self.breaker = breaker
        self.gate = make_lock(f"ReplicaSet._gate[{name}]")


class ReplicaSet:
    """A primary shard plus its read replicas, served as one shard.

    Parameters
    ----------
    primary:
        The writable copy; must be durable (WAL shipping needs its log).
    clock:
        Injected clock driving breakers and replication telemetry.
    breaker_policy:
        Per-copy breaker tuning (shared by all copies).
    warm_on_attach:
        Whether :meth:`attach_replica` / re-bootstraps replay the
        primary's hot composed ranges into the new copy's range cache.
    retain:
        Shipper segment-log retention (``None`` = unbounded).
    segment_log_path:
        Durable mirror file for the shipped segment stream (``None`` =
        in-memory only); what ``repro-video check`` chain-verifies.
    """

    #: The routing layer checks this before passing ``attempt=``.
    replica_aware = True

    def __init__(
        self,
        primary: Shard,
        *,
        clock: Clock,
        breaker_policy: BreakerPolicy | None = None,
        warm_on_attach: bool = True,
        retain: int | None = None,
        segment_log_path: str | None = None,
    ) -> None:
        if not isinstance(primary, Shard):
            raise TypeError("primary must be a Shard")
        if not isinstance(clock, Clock):
            raise TypeError("clock must be a Clock")
        self._primary = primary
        self._clock = clock
        self._policy = breaker_policy or BreakerPolicy()
        self._warm_on_attach = warm_on_attach
        self._shipper = WalShipper(
            primary, clock=clock, retain=retain, log_path=segment_log_path
        )
        self._primary_copy = _Copy(
            primary, CircuitBreaker(self._policy), "primary"
        )
        self._replicas: list[_Copy] = []
        self.fallbacks_to_primary = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @property
    def primary(self) -> Shard:
        """The writable copy."""
        return self._primary

    @property
    def shipper(self) -> WalShipper:
        """The primary's segment shipper."""
        return self._shipper

    @property
    def write_gate(self):
        """The primary copy's serving gate.

        Writers (the ingest pipeline) hold it across a batch commit so
        an in-flight read on the primary copy never interleaves with an
        index mutation; replicas keep serving throughout.
        """
        return self._primary_copy.gate

    @property
    def replicas(self) -> list[ReplicaShard]:
        """The attached replicas (synced or not)."""
        return [copy.target for copy in self._replicas]

    def attach_replica(self, replica: ReplicaShard) -> None:
        """Bootstrap a replica from the current state and start serving it.

        Cuts a fresh snapshot (checkpointing the primary), restores the
        replica from it, and — with ``warm_on_attach`` — replays the
        primary's hot composed ranges into the new copy's cache tier so
        its first queries hit warm instead of paying the primary's
        accumulated misses again.
        """
        if not isinstance(replica, ReplicaShard):
            raise TypeError("replica must be a ReplicaShard")
        replica.bootstrap(self._shipper.snapshot())
        self._warm(replica)
        self._replicas.append(
            _Copy(
                replica,
                CircuitBreaker(self._policy),
                f"replica{len(self._replicas)}",
            )
        )

    def _warm(self, replica: ReplicaShard) -> None:
        if not self._warm_on_attach or len(self._primary) == 0:
            return
        engine = self._primary._engine
        if engine is None:
            return
        ranges = engine.hot_ranges()
        if ranges:
            replica.warm(ranges)

    # ------------------------------------------------------------------
    # Replication pump
    # ------------------------------------------------------------------
    def sync(self) -> dict:
        """Bring every replica to the shipper's current position.

        For each replica: replay the retained segments past its applied
        position; on any refusal (corruption, gap, token mismatch) or a
        truncated log, re-bootstrap from a fresh snapshot.  Returns a
        tally ``{"applied": n, "bootstrapped": n}``.
        """
        applied = 0
        bootstrapped = 0
        for copy in self._replicas:
            replica = copy.target
            if replica.state != SYNCED:
                self._bootstrap(replica)
                bootstrapped += 1
                continue
            pending = self._shipper.segments_since(replica.applied_seq)
            if pending is None:
                # The suffix this replica needs was truncated away.
                self._bootstrap(replica)
                bootstrapped += 1
                continue
            refused = False
            for encoded in pending:
                if replica.apply_segment(encoded):
                    applied += 1
                else:
                    self._bootstrap(replica)
                    bootstrapped += 1
                    refused = True
                    break
            if not refused and replica.token != self._shipper.token:
                # Caught up by position yet on a different content token:
                # an online-rebuild cutover re-rooted the chain (same
                # videos, new reference point, new token).  Replay cannot
                # bridge epochs; only a fresh snapshot can.
                self._bootstrap(replica)
                bootstrapped += 1
        return {"applied": applied, "bootstrapped": bootstrapped}

    def _bootstrap(self, replica: ReplicaShard) -> None:
        # snapshot() checkpoints, so the image is at the latest seq and
        # the replica lands fully caught up in one step.
        replica.bootstrap(self._shipper.snapshot())
        self._warm(replica)

    # ------------------------------------------------------------------
    # Read routing
    # ------------------------------------------------------------------
    def _admitted(self, attempt: int, key: int) -> _Copy:
        """Pick the copy for this dispatch: affinity + attempt offset.

        ``key`` hashes to the query's home among the admitted copies,
        and the attempt ordinal walks away from it, so a hedge or
        retry reaches a *different* copy than the one being slow (as
        long as the admitted pool holds still between attempts —
        breaker flips in the gap make distinctness best-effort).
        """
        now = self._clock.now()
        pool = [
            copy
            for copy in self._replicas
            if copy.target.state == SYNCED and copy.breaker.allow(now)
        ]
        if self._primary_copy.breaker.allow(now) or not pool:
            # The primary is always the last resort, even mid-cooldown.
            if not pool and self._replicas:
                self.fallbacks_to_primary += 1
            pool.append(self._primary_copy)
        return pool[(_affinity(key) + attempt) % len(pool)]

    def _serve(self, attempt, key, method_name, args, kwargs):
        copy = self._admitted(attempt, key)
        with copy.gate:
            try:
                result = getattr(copy.target, method_name)(*args, **kwargs)
            except Exception:
                copy.breaker.record(False, self._clock.now())
                raise
        copy.breaker.record(True, self._clock.now())
        return result

    def knn(self, query, k, *, attempt: int = 0, **kwargs):
        """Top-``k`` from the query's affine copy (bit-identical on all).

        Affinity keys on the video id alone, *not* ``(video id, k)``:
        the result cache would tolerate spreading ``k`` variants over
        different copies, but the range tier's locality is per query —
        one copy that has fetched a video's composed ranges serves
        every ``k`` over them from memory.
        """
        return self._serve(
            attempt, getattr(query, "video_id", 0), "knn", (query, k), kwargs
        )

    def similarity_range(
        self, query, min_similarity, *, attempt: int = 0, **kwargs
    ):
        """Threshold query from the query's affine copy."""
        return self._serve(
            attempt,
            getattr(query, "video_id", 0),
            "similarity_range",
            (query, min_similarity),
            kwargs,
        )

    # ------------------------------------------------------------------
    # Shard-interface delegation (metadata + writes go to the primary)
    # ------------------------------------------------------------------
    @property
    def shard_id(self) -> int:
        """Fleet position of the shard this group serves."""
        return self._primary.shard_id

    def renumber(self, shard_id: int) -> None:
        """Reassign the group's fleet position on every copy."""
        self._primary.renumber(shard_id)
        for copy in self._replicas:
            copy.target.renumber(shard_id)

    def __len__(self) -> int:
        return len(self._primary)

    def video_ids(self) -> set[int]:
        """Ids of the videos this shard owns (primary's view)."""
        return self._primary.video_ids()

    def summaries(self):
        """Summaries of the shard's videos (primary's view)."""
        return self._primary.summaries()

    def key_bounds(self, *, counters: CostCounters | None = None):
        """Key bounds of the shard's tree (identical on every copy)."""
        return self._primary.key_bounds(counters=counters)

    def composed_ranges(self, query):
        """The query's composed ranges in this shard's key space."""
        return self._primary.composed_ranges(query)

    def may_contain(
        self, query, *, counters: CostCounters | None = None
    ) -> bool:
        """Lossless overlap filter (primary's view; copies are identical)."""
        return self._primary.may_contain(query, counters=counters)

    def add_summary(self, summary) -> int:
        """Store one routed summary (primary only; replicas follow on
        the next checkpoint + :meth:`sync`)."""
        return self._primary.add_summary(summary)

    def remove(self, video_id: int) -> None:
        """Remove one video (primary only)."""
        self._primary.remove(video_id)

    def checkpoint(self) -> None:
        """Checkpoint the primary (sealing the changes into a segment)."""
        self._primary.checkpoint()

    def serving_engines(self) -> list:
        """Every built engine across the copies (cache-tally seam)."""
        engines = []
        if self._primary._engine is not None:
            engines.append(self._primary._engine)
        for copy in self._replicas:
            engine = copy.target.built_engine
            if engine is not None:
                engines.append(engine)
        return engines

    def replication_status(self) -> dict:
        """Telemetry: shipper position plus per-replica status."""
        return {
            "shard_id": self.shard_id,
            "shipper_seq": self._shipper.seq,
            "shipper_token": self._shipper.token,
            "retained_segments": len(self._shipper.log),
            "fallbacks_to_primary": self.fallbacks_to_primary,
            "primary_breaker": self._primary_copy.breaker.state,
            "replicas": [
                dict(
                    copy.target.status(),
                    breaker=copy.breaker.state,
                )
                for copy in self._replicas
            ],
        }

    def close(self) -> None:
        """Detach the shipper and release every copy's files."""
        self._shipper.detach()
        for copy in self._replicas:
            copy.target.close()
        self._replicas.clear()
        self._primary.close()

    def __repr__(self) -> str:
        synced = sum(
            1 for copy in self._replicas if copy.target.state == SYNCED
        )
        return (
            f"ReplicaSet(shard_id={self.shard_id}, "
            f"replicas={len(self._replicas)}, synced={synced}, "
            f"seq={self._shipper.seq})"
        )
