"""Read replication: WAL shipping, replica catch-up, replica routing.

The write path (PR 2's redo-only WAL) already funnels every committed
mutation through one choke point; this package turns that choke point
into a replication stream:

* :mod:`repro.replication.segments` — the sealed-segment wire format: a
  committed transaction's raw WAL record bytes framed with a sequence
  number and the content tokens of the states it connects.
* :mod:`repro.replication.shipper` — the primary side: a
  :class:`~repro.replication.shipper.WalShipper` seals every commit into
  the retained :class:`~repro.replication.shipper.SegmentLog` and cuts
  checkpoint :class:`~repro.replication.shipper.Snapshot` images for
  bootstrap.
* :mod:`repro.replication.replica` — the replica side: a read-only
  :class:`~repro.replication.replica.ReplicaShard` applying shipped
  segments through idempotent full-page redo, verifying the content
  token after every apply, and demoting itself to ``NEEDS_BOOTSTRAP``
  rather than ever serving a state the primary never had.
* :mod:`repro.replication.group` — the serving side: a
  :class:`~repro.replication.group.ReplicaSet` that load-balances reads
  across the synced copies, sends hedged attempts to *different* copies,
  trips per-copy breakers, and falls back to the primary.
"""

from __future__ import annotations

from repro.replication.group import ReplicaSet
from repro.replication.replica import (
    NEEDS_BOOTSTRAP,
    SYNCED,
    ReplicaShard,
    ReplicaUnavailable,
    ReplicationError,
)
from repro.replication.segments import (
    EMPTY_TOKEN,
    SealedSegment,
    SegmentFrameError,
    decode_segment,
    encode_segment,
    iter_segments,
    verify_segment_chain,
)
from repro.replication.shipper import SegmentLog, Snapshot, WalShipper

__all__ = [
    "EMPTY_TOKEN",
    "NEEDS_BOOTSTRAP",
    "ReplicaSet",
    "ReplicaShard",
    "ReplicaUnavailable",
    "ReplicationError",
    "SYNCED",
    "SealedSegment",
    "SegmentFrameError",
    "SegmentLog",
    "Snapshot",
    "WalShipper",
    "decode_segment",
    "encode_segment",
    "iter_segments",
    "verify_segment_chain",
]
