"""The replica side of WAL shipping: a read-only, self-verifying copy.

:class:`ReplicaShard` owns a directory that is always either a
byte-faithful copy of some primary checkpoint state or explicitly marked
unserviceable.  Its life is a two-state machine::

    NEEDS_BOOTSTRAP --bootstrap(snapshot)--> SYNCED
    SYNCED --apply_segment(ok)--> SYNCED        (seq += 1, token advances)
    SYNCED --apply_segment(defect)--> NEEDS_BOOTSTRAP

Every :meth:`ReplicaShard.apply_segment` runs the full gauntlet — frame
CRC, sequence continuity, base-token match, strict per-record validation
(:func:`repro.storage.wal.scan_transaction`), idempotent full-page redo
(:meth:`WriteAheadLog.apply_external`), reload, and finally an
*after-token* check against the freshly reconstructed index.  Any defect
at any stage demotes the replica instead of serving: the one invariant
this module defends is that a replica never answers a query from a state
whose content token the primary never had.

Queries on a demoted replica raise :class:`ReplicaUnavailable` (a
:class:`~repro.shard.resilience.ShardDown`, so the routing layer's
breakers and retries treat it like any other down shard).  Recovery is
always re-bootstrap: snapshots are cheap (three file copies) and
bring the replica to an exact, verified ``(seq, token)`` in one step.
"""

from __future__ import annotations

import os

from repro.replication.segments import (
    EMPTY_TOKEN,
    SegmentFrameError,
    decode_segment,
)
from repro.replication.shipper import SNAPSHOT_FILES, Snapshot, database_token
from repro.shard.resilience import ShardDown
from repro.shard.shard import Shard
from repro.storage.wal import WalSegmentError, scan_transaction
from repro.utils.clock import Clock
from repro.utils.counters import CostCounters

__all__ = [
    "NEEDS_BOOTSTRAP",
    "ReplicaShard",
    "ReplicaUnavailable",
    "ReplicationError",
    "SYNCED",
]

SYNCED = "synced"
NEEDS_BOOTSTRAP = "needs_bootstrap"

_WAL_FILE = "db.wal"


class ReplicationError(RuntimeError):
    """A replication-protocol operation could not be completed."""


class ReplicaUnavailable(ShardDown):
    """The replica is not synced and refuses to serve."""


class ReplicaShard:
    """A read-only shard copy kept current by applying shipped segments.

    Parameters
    ----------
    shard_id:
        Fleet position (mirrors the primary's; the routing layer treats
        primary and replicas as copies of the same shard).
    path:
        The replica's own directory (wiped and rewritten on bootstrap).
    epsilon:
        Frame similarity threshold; must match the primary's (the
        restored ``db.json`` re-asserts it on open).
    clock:
        Injected clock; stamps apply/bootstrap times for lag telemetry.
    buffer_capacity, read_latency, cache_size, range_cache_size:
        Serving knobs of the replica's own :class:`Shard`/engine.  For
        bit-identical counters across copies, give every copy the same
        values the primary uses.
    """

    def __init__(
        self,
        shard_id: int,
        path: str | os.PathLike,
        *,
        epsilon: float,
        clock: Clock,
        buffer_capacity: int = 256,
        read_latency: float = 0.0,
        cache_size: int = 128,
        range_cache_size: int = 0,
    ) -> None:
        if not isinstance(clock, Clock):
            raise TypeError("clock must be a Clock")
        self._shard_id = shard_id
        self._path = os.fspath(path)
        self._epsilon = epsilon
        self._clock = clock
        self._buffer_capacity = buffer_capacity
        self._read_latency = read_latency
        self._cache_size = cache_size
        self._range_cache_size = range_cache_size
        self._shard: Shard | None = None
        self._state = NEEDS_BOOTSTRAP
        self._seq = -1
        self._token = EMPTY_TOKEN
        self.last_error: str | None = None
        self.bootstraps = 0
        self.segments_applied = 0
        self.segments_refused = 0
        self.last_apply_at: float | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shard_id(self) -> int:
        """Fleet position (same as the primary's)."""
        return self._shard_id

    @property
    def path(self) -> str:
        """The replica's backing directory."""
        return self._path

    def renumber(self, shard_id: int) -> None:
        """Reassign this copy's fleet position (mirrors the primary's)."""
        self._shard_id = shard_id
        if self._shard is not None:
            self._shard.renumber(shard_id)

    @property
    def state(self) -> str:
        """``SYNCED`` or ``NEEDS_BOOTSTRAP``."""
        return self._state

    @property
    def applied_seq(self) -> int:
        """Stream position of the last verified state (-1 = never)."""
        return self._seq

    @property
    def token(self) -> str:
        """Content token of the last verified state."""
        return self._token

    @property
    def built_engine(self):
        """The replica's query engine if one was built, else ``None``
        (the routing layer's cache-tally seam; never builds)."""
        return self._shard._engine if self._shard is not None else None

    def status(self) -> dict:
        """Telemetry snapshot (state, position, apply/bootstrap tallies)."""
        return {
            "shard_id": self._shard_id,
            "state": self._state,
            "applied_seq": self._seq,
            "token": self._token,
            "bootstraps": self.bootstraps,
            "segments_applied": self.segments_applied,
            "segments_refused": self.segments_refused,
            "last_error": self.last_error,
        }

    # ------------------------------------------------------------------
    # Catch-up state machine
    # ------------------------------------------------------------------
    def _demote(self, reason: str) -> None:
        self._state = NEEDS_BOOTSTRAP
        self.last_error = reason
        self.segments_refused += 1

    def bootstrap(self, snapshot: Snapshot) -> None:
        """Restore the replica to exactly the snapshot's state.

        Drops the current copy (whatever condition it is in), writes the
        snapshot's artefacts plus a fresh empty WAL, reopens, and
        verifies the restored index's content token against the
        snapshot's before serving.  A verification failure keeps the
        replica demoted and raises :class:`ReplicationError`.
        """
        if not isinstance(snapshot, Snapshot):
            raise TypeError("snapshot must be a Snapshot")
        if self._shard is not None:
            # The current copy is being discarded, possibly mid-defect:
            # drop the file handles without checkpointing anything.
            self._shard.crash()
            self._shard = None
        self._state = NEEDS_BOOTSTRAP
        os.makedirs(self._path, exist_ok=True)
        for name in SNAPSHOT_FILES + (_WAL_FILE,):
            file_path = os.path.join(self._path, name)
            if os.path.exists(file_path):
                os.remove(file_path)
        for name in SNAPSHOT_FILES:
            content = snapshot.files.get(name, b"")
            if name == "db.json" and not content:
                continue  # a never-checkpointed primary has no metadata
            with open(os.path.join(self._path, name), "wb") as handle:
                handle.write(content)
        self._shard = Shard(
            self._shard_id,
            epsilon=self._epsilon,
            path=self._path,
            buffer_capacity=self._buffer_capacity,
            read_latency=self._read_latency,
            cache_size=self._cache_size,
            range_cache_size=self._range_cache_size,
        )
        restored = database_token(self._shard.database)
        if restored != snapshot.token:
            self.last_error = (
                f"bootstrap token mismatch: snapshot {snapshot.token}, "
                f"restored {restored}"
            )
            raise ReplicationError(self.last_error)
        self._seq = snapshot.seq
        self._token = snapshot.token
        self._state = SYNCED
        self.last_error = None
        self.bootstraps += 1
        self.last_apply_at = self._clock.now()

    def apply_segment(self, encoded: bytes) -> bool:
        """Verify and apply one shipped segment; ``True`` on success.

        ``False`` means the segment was refused and the replica demoted
        itself to ``NEEDS_BOOTSTRAP`` — the caller should re-bootstrap
        from a fresh snapshot.  The replica's serving state is never a
        half-applied transaction: a defect detected before the redo
        leaves the old verified state intact (it keeps serving only
        after a successful re-sync), and a defect detected after it
        (token mismatch) blocks serving entirely.
        """
        if self._state != SYNCED or self._shard is None:
            self._demote("apply on an unsynced replica")
            return False
        try:
            segment = decode_segment(encoded)
        except SegmentFrameError as exc:
            self._demote(f"bad frame: {exc}")
            return False
        if segment.seq != self._seq + 1:
            self._demote(
                f"sequence gap: expected {self._seq + 1}, got {segment.seq}"
            )
            return False
        if segment.base_token != self._token:
            self._demote(
                f"base token mismatch: at {self._token}, segment expects "
                f"{segment.base_token}"
            )
            return False
        try:
            images, sizes, meta = scan_transaction(segment.payload)
        except WalSegmentError as exc:
            self._demote(f"bad transaction: {exc}")
            return False
        db = self._shard.database
        try:
            db.wal.apply_external(images, sizes, meta)
            db.reload()
        except Exception as exc:  # noqa: BLE001 - any defect demotes
            self._demote(f"apply failed: {exc}")
            return False
        restored = database_token(db)
        if restored != segment.after_token:
            self._demote(
                f"after token mismatch: applied to {restored}, segment "
                f"promised {segment.after_token}"
            )
            return False
        self._seq = segment.seq
        self._token = segment.after_token
        self.segments_applied += 1
        self.last_apply_at = self._clock.now()
        return True

    # ------------------------------------------------------------------
    # Serving (read-only delegation)
    # ------------------------------------------------------------------
    def _serving_shard(self) -> Shard:
        if self._state != SYNCED or self._shard is None:
            raise ReplicaUnavailable(
                f"replica of shard {self._shard_id} is {self._state}"
                + (f" ({self.last_error})" if self.last_error else "")
            )
        return self._shard

    def __len__(self) -> int:
        return len(self._serving_shard())

    def video_ids(self) -> set[int]:
        """Ids of the videos this copy holds."""
        return self._serving_shard().video_ids()

    def key_bounds(self, *, counters: CostCounters | None = None):
        """Key bounds of this copy's B+-tree (see :meth:`Shard.key_bounds`)."""
        return self._serving_shard().key_bounds(counters=counters)

    def may_contain(
        self, query, *, counters: CostCounters | None = None
    ) -> bool:
        """Lossless overlap filter (see :meth:`Shard.may_contain`)."""
        return self._serving_shard().may_contain(query, counters=counters)

    def knn(self, query, k, **kwargs):
        """Serve one KNN query from the verified copy."""
        return self._serving_shard().knn(query, k, **kwargs)

    def similarity_range(self, query, min_similarity, **kwargs):
        """Serve one threshold query from the verified copy."""
        return self._serving_shard().similarity_range(
            query, min_similarity, **kwargs
        )

    def warm(self, ranges) -> int:
        """Pre-load the primary's hot composed ranges into this copy's
        range-cache tier; returns how many were loaded.

        Tokens transfer because the copy is byte-identical, so the
        primary's ``(token, low, high)`` working set is directly valid
        here.  A no-op on an empty copy or a disabled tier.
        """
        shard = self._serving_shard()
        if len(shard) == 0 or not ranges:
            return 0
        return shard.engine().warm(list(ranges))

    def close(self) -> None:
        """Release the copy's files (checkpointing nothing new)."""
        if self._shard is not None:
            self._shard.close()
            self._shard = None
        self._state = NEEDS_BOOTSTRAP

    def __repr__(self) -> str:
        return (
            f"ReplicaShard(id={self._shard_id}, state={self._state!r}, "
            f"seq={self._seq}, path={self._path!r})"
        )
