"""The primary side of WAL shipping: seal commits, cut snapshots.

:class:`WalShipper` hooks a durable primary shard's write-ahead log
(:meth:`WriteAheadLog.set_segment_sink`): every committing transaction's
record bytes are captured at the durability point — after the log's
fsync, before the images are applied locally — framed as a
:class:`~repro.replication.segments.SealedSegment` and retained in the
:class:`SegmentLog`.  Shipping therefore costs the primary one in-memory
copy per commit; no second read of the log file, no extra fsync.

Content tokens bracket every segment.  The token *before* the first
sealed segment is read at attach time; after that each seal stamps the
primary's post-commit token and carries the previous one as its base, so
the stream is a hash chain over index states: a replica can verify every
hop and a segment can never silently apply to the wrong base.

:meth:`WalShipper.snapshot` cuts a bootstrap image: checkpoint the
primary (which itself seals a segment, so the snapshot's sequence number
is exact), then read the three data artefacts — ``index.btree``,
``index.heap``, ``db.json``.  A replica restores those bytes plus a
fresh (empty) WAL and is, by construction, at exactly
``(snapshot.seq, snapshot.token)``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.database import VideoDatabase
from repro.replication.segments import (
    EMPTY_TOKEN,
    SealedSegment,
    encode_segment,
)
from repro.utils.clock import Clock
from repro.utils.locks import make_lock

__all__ = ["SegmentLog", "Snapshot", "WalShipper", "database_token"]

#: The artefacts a bootstrap snapshot carries (everything but the WAL;
#: a replica starts with a fresh, empty log).
SNAPSHOT_FILES = ("index.btree", "index.heap", "db.json")


def database_token(db: VideoDatabase) -> str:
    """The database's current index content token.

    ``EMPTY_TOKEN`` when no index has been built yet — the fingerprint
    of the "nothing indexed" state, so token chains are well defined
    from the very first commit.
    """
    index = db.index
    return index.content_token() if index is not None else EMPTY_TOKEN


@dataclass(frozen=True)
class Snapshot:
    """A consistent bootstrap image of the primary at one checkpoint.

    ``files`` maps artefact name to raw bytes; ``seq``/``token`` are the
    stream position and content token the restored replica will be at.
    """

    seq: int
    token: str
    files: dict = field(repr=False)


class SegmentLog:
    """Retained encoded segments, ordered by sequence number.

    ``retain`` bounds how many recent segments are kept (``None`` keeps
    everything).  :meth:`since` returns ``None`` when the requested
    suffix reaches into truncated history — the caller must bootstrap
    from a snapshot instead of replaying.

    ``path`` additionally mirrors every retained append into a durable
    append-only file (``segments.log``), the artefact ``repro-video
    check`` chain-verifies offline.  The file is advisory — like the
    fleet's ``health.json`` it is written outside the fault injector, so
    crash-sweep op counts never depend on whether shipping is enabled —
    and it is truncated fresh at attach and at :meth:`reset` (an online
    cutover re-roots the token chain, so pre-cutover frames would no
    longer verify against the new epoch).
    """

    def __init__(
        self, retain: int | None = None, path: str | None = None
    ) -> None:
        if retain is not None:
            if not isinstance(retain, int) or isinstance(retain, bool):
                raise TypeError("retain must be an int or None")
            if retain < 1:
                raise ValueError(f"retain must be >= 1, got {retain}")
        self._retain = retain
        self._lock = make_lock("SegmentLog._lock")
        self._entries: list[tuple[int, bytes]] = []
        self._truncated_through = 0
        self._path = os.fspath(path) if path is not None else None
        self._file = None
        if self._path is not None:
            self._file = open(self._path, "wb")

    @property
    def path(self) -> str | None:
        """The durable mirror file (``None`` = in-memory only)."""
        return self._path

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def latest_seq(self) -> int:
        """Sequence number of the newest retained segment (0 if none)."""
        with self._lock:
            return self._entries[-1][0] if self._entries else 0

    def append(self, seq: int, encoded: bytes) -> None:
        """Retain one encoded segment (sequence numbers must ascend)."""
        with self._lock:
            if self._entries and seq <= self._entries[-1][0]:
                raise ValueError(
                    f"segment seq {seq} not after retained tail "
                    f"{self._entries[-1][0]}"
                )
            self._entries.append((seq, bytes(encoded)))
            if self._file is not None:
                self._file.write(bytes(encoded))  # vilint: disable=blocking-while-locked -- the lock IS the mirror's write serialiser: appended bytes must hit the file in seq order
                self._file.flush()  # vilint: disable=blocking-while-locked -- the lock IS the mirror's write serialiser: appended bytes must hit the file in seq order
                os.fsync(self._file.fileno())  # vilint: disable=blocking-while-locked -- the lock IS the mirror's write serialiser: appended bytes must hit the file in seq order
            if self._retain is not None:
                while len(self._entries) > self._retain:
                    popped_seq, _ = self._entries.pop(0)
                    self._truncated_through = popped_seq

    def since(self, seq: int) -> list[bytes] | None:
        """Encoded segments with sequence number > ``seq``, in order.

        ``None`` when part of that suffix was truncated away — replay
        cannot bridge the gap, only a snapshot can.
        """
        with self._lock:
            if seq < self._truncated_through:
                return None
            return [
                encoded for entry_seq, encoded in self._entries
                if entry_seq > seq
            ]

    def reset(self, through_seq: int) -> None:
        """Drop every retained segment and floor replay at ``through_seq``.

        The cutover epilogue: segments sealed against the old epoch can
        never chain onto the new one, so replay across the cutover is
        impossible by construction — :meth:`since` answers ``None`` for
        any pre-cutover position, forcing a snapshot bootstrap.  The
        durable mirror (if any) is truncated with the same logic.
        """
        with self._lock:
            self._entries.clear()
            self._truncated_through = max(self._truncated_through, through_seq)
            if self._file is not None:
                self._file.seek(0)  # vilint: disable=blocking-while-locked -- the lock IS the mirror's write serialiser: appended bytes must hit the file in seq order
                self._file.truncate()  # vilint: disable=blocking-while-locked -- the lock IS the mirror's write serialiser: appended bytes must hit the file in seq order
                self._file.flush()  # vilint: disable=blocking-while-locked -- the lock IS the mirror's write serialiser: appended bytes must hit the file in seq order
                os.fsync(self._file.fileno())  # vilint: disable=blocking-while-locked -- the lock IS the mirror's write serialiser: appended bytes must hit the file in seq order

    def close(self) -> None:
        """Release the durable mirror's file handle (idempotent)."""
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


class WalShipper:
    """Seals a durable primary shard's commits into a segment stream.

    Parameters
    ----------
    shard:
        The primary (:class:`repro.shard.shard.Shard`); must be durable.
    clock:
        Injected clock; stamps :attr:`last_seal_at` for lag telemetry.
    retain:
        Segment-log retention (``None`` = unbounded).
    log_path:
        Durable mirror file for the retained segments (``None`` = keep
        the stream in memory only); see :class:`SegmentLog`.
    """

    def __init__(
        self,
        shard,
        *,
        clock: Clock,
        retain: int | None = None,
        log_path: str | None = None,
    ) -> None:
        if not isinstance(clock, Clock):
            raise TypeError("clock must be a Clock")
        db = shard.database
        if db.path is None:
            raise ValueError("WAL shipping requires a durable primary shard")
        self._shard = shard
        self._clock = clock
        self._log = SegmentLog(retain=retain, path=log_path)
        self._token = database_token(db)
        self._seq = 0
        self.last_seal_at: float | None = None
        db.wal.set_segment_sink(self._seal)

    @property
    def log(self) -> SegmentLog:
        """The retained segment stream."""
        return self._log

    @property
    def seq(self) -> int:
        """Sequence number of the last sealed segment (0 before any)."""
        return self._seq

    @property
    def token(self) -> str:
        """The primary's content token as of the last sealed segment."""
        return self._token

    def _seal(self, raw: bytes) -> None:
        # Runs inside WriteAheadLog.commit, after the fsync: the
        # in-memory index already reflects the committing transaction,
        # so its token is the segment's after-state.
        after = database_token(self._shard.database)
        self._seq += 1
        segment = SealedSegment(
            seq=self._seq,
            base_token=self._token,
            after_token=after,
            payload=raw,
        )
        self._log.append(self._seq, encode_segment(segment))
        self._token = after
        self.last_seal_at = self._clock.now()

    def segments_since(self, seq: int) -> list[bytes] | None:
        """Encoded segments a replica at ``seq`` must replay (see
        :meth:`SegmentLog.since`)."""
        return self._log.since(seq)

    def snapshot(self) -> Snapshot:
        """Cut a consistent bootstrap image at the current state.

        Checkpoints the primary first — the checkpoint commit seals its
        own segment, so the returned ``seq`` is exactly the stream
        position the on-disk bytes correspond to.
        """
        self._shard.checkpoint()
        db = self._shard.database
        files: dict[str, bytes] = {}
        for name in SNAPSHOT_FILES:
            # data_dir, not path: after an online-rebuild cutover the
            # active file set lives in a generation sub-directory.
            file_path = os.path.join(db.data_dir, name)
            if os.path.exists(file_path):
                with open(file_path, "rb") as handle:
                    files[name] = handle.read()
            else:
                files[name] = b""
        return Snapshot(seq=self._seq, token=self._token, files=files)

    def rehook(self) -> None:
        """Re-attach to the shard's current database after a cutover.

        The online rebuild swaps the shard's :class:`VideoDatabase` for
        a fresh object over the new generation; its WAL has no sink yet.
        Re-install the seal hook, re-read the content token (the new
        epoch's chain root — the refitted reference point changes the
        token even though the videos are the same), and reset the
        segment log so no replica can replay across the epoch boundary.
        The sequence counter keeps ascending: a replica's position
        remains comparable before and after.
        """
        db = self._shard.database
        if db.path is None:
            raise ValueError("WAL shipping requires a durable primary shard")
        db.wal.set_segment_sink(self._seal)
        self._token = database_token(db)
        self._log.reset(self._seq)

    def detach(self) -> None:
        """Stop sealing (clears the WAL's segment sink) and release the
        durable segment mirror, if any."""
        self._shard.database.wal.set_segment_sink(None)
        self._log.close()

    def __repr__(self) -> str:
        return (
            f"WalShipper(seq={self._seq}, token={self._token[:8]}..., "
            f"retained={len(self._log)})"
        )
