"""Covariance-eigendecomposition PCA with variance segments.

This is a from-scratch implementation (no sklearn): centre the data, form
the covariance matrix, take its symmetric eigendecomposition, and order the
eigenpairs by decreasing eigenvalue.  Component signs are made deterministic
by forcing the largest-magnitude coordinate of each component to be
positive, so repeated fits of the same data give identical reference points.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.validation import check_matrix, check_vector

__all__ = ["PCA", "principal_angle"]


class PCA:
    """Principal Component Analysis.

    Parameters
    ----------
    n_components:
        Number of components to retain; ``None`` keeps all of them.

    Attributes
    ----------
    center_:
        Mean of the fitted data, shape ``(n,)``.
    components_:
        Principal directions as rows, shape ``(n_components, n)``, ordered
        by decreasing explained variance; each row has unit norm.
    explained_variance_:
        Eigenvalues of the covariance matrix for the retained components.
    """

    def __init__(self, n_components: int | None = None) -> None:
        if n_components is not None:
            if not isinstance(n_components, int) or isinstance(n_components, bool):
                raise TypeError("n_components must be an int or None")
            if n_components < 1:
                raise ValueError(f"n_components must be >= 1, got {n_components}")
        self.n_components = n_components
        self.center_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, data) -> "PCA":
        """Fit the PCA model on a ``(rows, n)`` data matrix."""
        data = check_matrix(data, "data", min_rows=1)
        n = data.shape[1]
        k = n if self.n_components is None else min(self.n_components, n)

        self.center_ = data.mean(axis=0)
        centered = data - self.center_
        # Population covariance (divide by rows, matching sigma in Sec 4.1).
        covariance = centered.T @ centered / data.shape[0]
        eigenvalues, eigenvectors = np.linalg.eigh(covariance)
        order = np.argsort(eigenvalues)[::-1]
        eigenvalues = eigenvalues[order][:k]
        # eigh returns eigenvectors as columns.
        components = eigenvectors[:, order][:, :k].T

        # Deterministic signs: force the largest-magnitude coordinate of
        # each component to be positive.
        for row in components:
            pivot = np.argmax(np.abs(row))
            if row[pivot] < 0.0:
                row *= -1.0

        self.components_ = np.ascontiguousarray(components)
        self.explained_variance_ = np.clip(eigenvalues, 0.0, None)
        return self

    def _require_fitted(self) -> None:
        if self.components_ is None:
            raise RuntimeError("PCA instance is not fitted; call fit() first")

    # ------------------------------------------------------------------
    # Projections
    # ------------------------------------------------------------------
    def transform(self, data) -> np.ndarray:
        """Project ``(rows, n)`` data onto the retained components."""
        self._require_fitted()
        data = check_matrix(data, "data", cols=self.center_.shape[0])
        return (data - self.center_) @ self.components_.T

    def fit_transform(self, data) -> np.ndarray:
        """Fit on *data* and return its projection."""
        return self.fit(data).transform(data)

    def inverse_transform(self, projected) -> np.ndarray:
        """Map component-space coordinates back to the original space."""
        self._require_fitted()
        projected = check_matrix(
            projected, "projected", cols=self.components_.shape[0]
        )
        return projected @ self.components_ + self.center_

    def project_scalar(self, data, component: int = 0) -> np.ndarray:
        """Scalar projections of *data* onto one component (about the centre)."""
        self._require_fitted()
        self._check_component(component)
        data = check_matrix(data, "data", cols=self.center_.shape[0])
        return (data - self.center_) @ self.components_[component]

    # ------------------------------------------------------------------
    # Variance segments (paper Definition 1)
    # ------------------------------------------------------------------
    def variance_segment(self, data, component: int = 0) -> tuple[float, float]:
        """Extent of the data's projections along *component*.

        Returns the (min, max) scalar projection of the data points onto the
        chosen principal component, measured about the fitted centre.  This
        is the paper's *variance segment* (Definition 1): the segment of the
        component's line between the two furthermost projections.
        """
        projections = self.project_scalar(data, component)
        return float(projections.min()), float(projections.max())

    def _check_component(self, component: int) -> None:
        if not isinstance(component, int) or isinstance(component, bool):
            raise TypeError("component must be an int")
        if component < 0 or component >= self.components_.shape[0]:
            raise ValueError(
                f"component must be in [0, {self.components_.shape[0] - 1}], "
                f"got {component}"
            )

    @property
    def first_component(self) -> np.ndarray:
        """The direction of largest variance (``Phi_1`` in the paper)."""
        self._require_fitted()
        return self.components_[0]


def principal_angle(direction_a, direction_b) -> float:
    """Angle in radians between two directions, ignoring orientation.

    Directions are lines, not arrows, so the result lies in ``[0, pi/2]``.
    Used by the rebuild policy of Section 6.3.3: once the angle between the
    original first principal component and the current one exceeds a
    threshold, the index is rebuilt.
    """
    a = check_vector(direction_a, "direction_a")
    b = check_vector(direction_b, "direction_b", dim=a.shape[0])
    norm_a = np.linalg.norm(a)
    norm_b = np.linalg.norm(b)
    if norm_a <= 0.0 or norm_b <= 0.0:
        raise ValueError("directions must be non-zero vectors")
    cosine = abs(float(a @ b) / (norm_a * norm_b))
    return math.acos(min(cosine, 1.0))
