"""Exact streaming moments for incremental principal-component tracking.

The Section 6.3.3 rebuild policy needs the *current* first principal
component after every batch of insertions.  Refitting PCA from scratch
means scanning every stored position — I/O the policy is supposed to
save.  :class:`IncrementalMoments` maintains the exact mean and scatter
matrix under updates (and exact downdates for removals), so the current
component is an ``O(n^2)``-memory, zero-I/O eigendecomposition away.

The update rule is the matrix form of Welford/Chan et al.'s parallel
variance algorithm; it is exact (not an approximation), so the component
it yields equals a from-scratch PCA's up to floating-point noise — which
the tests assert.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_matrix

__all__ = ["IncrementalMoments"]


class IncrementalMoments:
    """Running mean and scatter matrix of a point stream.

    Parameters
    ----------
    dim:
        Dimensionality of the points.
    """

    def __init__(self, dim: int) -> None:
        if not isinstance(dim, int) or isinstance(dim, bool) or dim < 1:
            raise ValueError(f"dim must be a positive int, got {dim}")
        self._dim = dim
        self._count = 0
        self._mean = np.zeros(dim)
        # Scatter matrix: sum of outer products of deviations from the mean.
        self._scatter = np.zeros((dim, dim))

    @property
    def dim(self) -> int:
        """Dimensionality of the tracked points."""
        return self._dim

    @property
    def count(self) -> int:
        """Number of points currently folded in."""
        return self._count

    @property
    def mean(self) -> np.ndarray:
        """Current mean (copy)."""
        return self._mean.copy()

    def update(self, points) -> None:
        """Fold a batch of points into the moments."""
        points = check_matrix(points, "points", cols=self._dim, min_rows=1)
        batch_count = points.shape[0]
        batch_mean = points.mean(axis=0)
        centred = points - batch_mean
        batch_scatter = centred.T @ centred

        total = self._count + batch_count
        delta = batch_mean - self._mean
        self._scatter += batch_scatter + np.outer(delta, delta) * (
            self._count * batch_count / total
        )
        self._mean += delta * batch_count / total
        self._count = total

    def downdate(self, points) -> None:
        """Remove a batch of previously folded points (exact)."""
        points = check_matrix(points, "points", cols=self._dim, min_rows=1)
        batch_count = points.shape[0]
        if batch_count > self._count:
            raise ValueError(
                f"cannot remove {batch_count} points from {self._count}"
            )
        remaining = self._count - batch_count
        batch_mean = points.mean(axis=0)
        centred = points - batch_mean
        batch_scatter = centred.T @ centred

        if remaining == 0:
            self._count = 0
            self._mean = np.zeros(self._dim)
            self._scatter = np.zeros((self._dim, self._dim))
            return
        # Invert the update formula.
        new_mean = (self._count * self._mean - batch_count * batch_mean) / remaining
        delta = batch_mean - new_mean
        self._scatter -= batch_scatter + np.outer(delta, delta) * (
            remaining * batch_count / self._count
        )
        self._mean = new_mean
        self._count = remaining

    def covariance(self) -> np.ndarray:
        """Population covariance matrix of the folded points."""
        if self._count == 0:
            raise RuntimeError("no points folded in yet")
        return self._scatter / self._count

    def first_component(self) -> np.ndarray:
        """Current first principal component (unit vector, deterministic
        sign: largest-magnitude coordinate positive)."""
        eigenvalues, eigenvectors = np.linalg.eigh(self.covariance())
        component = eigenvectors[:, int(np.argmax(eigenvalues))].copy()
        pivot = int(np.argmax(np.abs(component)))
        if component[pivot] < 0.0:
            component *= -1.0
        return component
