"""Principal Component Analysis built from scratch on numpy.

Provides the pieces Section 3.3 / Section 5.1 of the paper need:

* :class:`repro.pca.PCA` — covariance-eigendecomposition PCA with
  deterministic component signs;
* variance segments (Definition 1) — the extent of the data's projections
  along a component, used to place the optimal reference point outside it;
* :func:`repro.pca.principal_angle` — angle between two direction vectors,
  used by the Section 6.3.3 rebuild policy to detect correlation drift;
* :class:`repro.pca.IncrementalMoments` — exact streaming mean/covariance
  so the drift check needs no full rescan of the stored positions.
"""

from __future__ import annotations

from repro.pca.incremental import IncrementalMoments
from repro.pca.pca import PCA, principal_angle

__all__ = ["IncrementalMoments", "PCA", "principal_angle"]
