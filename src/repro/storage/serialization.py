"""Struct codecs for on-page record formats.

Two codecs live here:

* the page *frame* codec — every :data:`~repro.storage.page.PAGE_SIZE`-byte
  frame that reaches a backing store is the page content followed by a
  CRC32 trailer, sealed by :func:`pack_page_frame` and verified by
  :func:`unpack_page_frame`.  A torn or bit-rotted page surfaces as a
  :class:`ChecksumError` at read time instead of silently corrupt bytes.
  An all-zero frame is deliberately valid (it decodes to all-zero
  content): it is the state of a freshly allocated page whose image was
  lost to a crash, and write-ahead-log replay is responsible for its
  content, not the checksum.
* the ViTri record codec — the only fixed record the reproduction
  persists is the full ViTri payload (the position vector plus its scalar
  attributes); B+-tree leaves store the 1-D key and a
  :class:`~repro.storage.heap_file.RecordId` pointing here.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

import numpy as np

from repro.storage.page import PAGE_CONTENT_SIZE, PAGE_SIZE
from repro.utils.counters import CostCounters
from repro.utils.validation import check_non_negative, check_vector

__all__ = [
    "ChecksumError",
    "ViTriColumns",
    "ViTriRecord",
    "ViTriRecordCodec",
    "pack_page_frame",
    "page_checksum",
    "unpack_page_frame",
]

_CRC = struct.Struct("<I")


class ChecksumError(ValueError):
    """A page frame's CRC32 trailer does not match its content."""


def page_checksum(content: bytes | bytearray | memoryview) -> int:
    """CRC32 of a page's content bytes."""
    return zlib.crc32(content) & 0xFFFFFFFF


def pack_page_frame(content: bytes | bytearray) -> bytes:
    """Seal page content into an on-disk frame (content + CRC32 trailer)."""
    if len(content) != PAGE_CONTENT_SIZE:
        raise ValueError(
            f"page content must be {PAGE_CONTENT_SIZE} bytes, "
            f"got {len(content)}"
        )
    return bytes(content) + _CRC.pack(page_checksum(content))


def unpack_page_frame(frame: bytes | bytearray, page_id: int) -> bytearray:
    """Verify a frame's checksum and return its content bytes.

    Raises
    ------
    ChecksumError
        If the frame is short (torn) or its trailer disagrees with the
        content.  An all-zero frame is valid and decodes to zero content
        (fresh-page convention, see the module docstring).
    """
    if len(frame) != PAGE_SIZE:
        raise ChecksumError(
            f"page {page_id}: torn frame ({len(frame)} of {PAGE_SIZE} bytes)"
        )
    content = frame[:PAGE_CONTENT_SIZE]
    (stored,) = _CRC.unpack_from(frame, PAGE_CONTENT_SIZE)
    if stored != page_checksum(content):
        if not any(frame):
            return bytearray(PAGE_CONTENT_SIZE)
        raise ChecksumError(
            f"page {page_id}: checksum mismatch (stored {stored:#010x}, "
            f"computed {page_checksum(content):#010x})"
        )
    return bytearray(content)


@dataclass(frozen=True)
class ViTriRecord:
    """A persisted ViTri: identifiers plus the triplet itself.

    Attributes
    ----------
    video_id:
        Identifier of the owning video sequence.
    vitri_id:
        Identifier of the ViTri, unique database-wide.
    count:
        ``|C|`` — number of frames in the cluster.
    radius:
        Refined cluster radius ``R``.
    position:
        Cluster centre ``O``, shape ``(n,)``.

    The density ``D = |C| / V_hypersphere(R)`` is derived, not stored: it is
    fully determined by ``count`` and ``radius`` and recomputing it avoids
    keeping two representations in sync.
    """

    video_id: int
    vitri_id: int
    count: int
    radius: float
    position: np.ndarray


@dataclass(frozen=True)
class ViTriColumns:
    """A batch of decoded ViTri records in columnar (struct-of-arrays) form.

    Produced by the page-batched decode paths
    (:meth:`ViTriRecordCodec.decode_columns` /
    :meth:`ViTriRecordCodec.decode_batch`); row ``i`` of every column is
    record ``i`` of the batch, in the order the records appeared in the
    source bytes.

    Attributes
    ----------
    video_ids, vitri_ids, counts:
        ``int64`` arrays of shape ``(m,)``.
    radii:
        ``float64`` array of shape ``(m,)``.
    positions:
        ``float64`` array of shape ``(m, n)``.
    """

    video_ids: np.ndarray
    vitri_ids: np.ndarray
    counts: np.ndarray
    radii: np.ndarray
    positions: np.ndarray

    def __len__(self) -> int:
        return int(self.video_ids.shape[0])

    def record(self, index: int) -> ViTriRecord:
        """Materialise row ``index`` as a :class:`ViTriRecord`."""
        return ViTriRecord(
            video_id=int(self.video_ids[index]),
            vitri_id=int(self.vitri_ids[index]),
            count=int(self.counts[index]),
            radius=float(self.radii[index]),
            position=self.positions[index].copy(),
        )

    def take(self, selection: np.ndarray) -> "ViTriColumns":
        """Rows selected by a boolean mask or integer index array."""
        return ViTriColumns(
            video_ids=self.video_ids[selection],
            vitri_ids=self.vitri_ids[selection],
            counts=self.counts[selection],
            radii=self.radii[selection],
            positions=self.positions[selection],
        )

    @classmethod
    def empty(cls, dim: int) -> "ViTriColumns":
        return cls(
            video_ids=np.empty(0, dtype=np.int64),
            vitri_ids=np.empty(0, dtype=np.int64),
            counts=np.empty(0, dtype=np.int64),
            radii=np.empty(0, dtype=np.float64),
            positions=np.empty((0, dim), dtype=np.float64),
        )

    @classmethod
    def concat(cls, parts: "list[ViTriColumns]", dim: int) -> "ViTriColumns":
        """Concatenate batches, preserving row order."""
        if not parts:
            return cls.empty(dim)
        return cls(
            video_ids=np.concatenate([p.video_ids for p in parts]),
            vitri_ids=np.concatenate([p.vitri_ids for p in parts]),
            counts=np.concatenate([p.counts for p in parts]),
            radii=np.concatenate([p.radii for p in parts]),
            positions=np.concatenate([p.positions for p in parts]),
        )


class ViTriRecordCodec:
    """Fixed-size binary codec for :class:`ViTriRecord`.

    Layout (little-endian): ``video_id u32 | vitri_id u32 | count u32 |
    radius f64 | position f64[n]``.

    Parameters
    ----------
    dim:
        Dimensionality ``n`` of the position vectors.
    """

    _HEADER = struct.Struct("<IIId")

    def __init__(self, dim: int) -> None:
        if not isinstance(dim, int) or isinstance(dim, bool):
            raise TypeError("dim must be an int")
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self._dim = dim
        self._record_size = self._HEADER.size + 8 * dim
        # Packed structured view of one record; matches the struct layout
        # byte for byte (<IIId has no padding), letting a whole page of
        # records be decoded with a single buffer view.
        self._record_dtype = np.dtype(
            [
                ("video_id", "<u4"),
                ("vitri_id", "<u4"),
                ("count", "<u4"),
                ("radius", "<f8"),
                ("position", "<f8", (dim,)),
            ]
        )
        if self._record_dtype.itemsize != self._record_size:  # pragma: no cover
            raise AssertionError(
                "record dtype does not match the struct layout: "
                f"{self._record_dtype.itemsize} != {self._record_size}"
            )

    @property
    def dim(self) -> int:
        """Dimensionality of the encoded position vectors."""
        return self._dim

    @property
    def record_size(self) -> int:
        """Encoded size of one record in bytes."""
        return self._record_size

    @property
    def record_dtype(self) -> np.dtype:
        """Packed numpy structured dtype of one encoded record.

        Byte-compatible with :meth:`encode`'s output; bulk readers (the
        B+-tree's ``range_search_many``) use it to view whole pages of
        records without per-record unpacking.
        """
        return self._record_dtype

    def encode(self, record: ViTriRecord) -> bytes:
        """Serialise a record to ``record_size`` bytes."""
        position = check_vector(record.position, "position", dim=self._dim)
        radius = check_non_negative(record.radius, "radius")
        for name, value in (
            ("video_id", record.video_id),
            ("vitri_id", record.vitri_id),
            ("count", record.count),
        ):
            if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
                raise TypeError(f"{name} must be an int")
            if value < 0 or value > 0xFFFFFFFF:
                raise ValueError(f"{name} must fit in an unsigned 32-bit int")
        header = self._HEADER.pack(
            int(record.video_id), int(record.vitri_id), int(record.count), radius
        )
        return header + position.astype("<f8").tobytes()

    def decode(self, payload: bytes) -> ViTriRecord:
        """Deserialise ``record_size`` bytes back into a record."""
        if len(payload) != self._record_size:
            raise ValueError(
                f"payload must be {self._record_size} bytes, got {len(payload)}"
            )
        video_id, vitri_id, count, radius = self._HEADER.unpack_from(payload, 0)
        position = np.frombuffer(
            payload, dtype="<f8", count=self._dim, offset=self._HEADER.size
        ).copy()
        return ViTriRecord(
            video_id=video_id,
            vitri_id=vitri_id,
            count=count,
            radius=radius,
            position=position,
        )

    def columns_from_struct(
        self,
        records: np.ndarray,
        *,
        counters: CostCounters | None = None,
    ) -> ViTriColumns:
        """Convert a :attr:`record_dtype` struct array to owned columns.

        The returned columns are contiguous copies, so the source array
        may be a transient view into a buffer-pool page.  Decode cost is
        charged per logical record (``records_decoded``), exactly like
        the per-record :meth:`decode` path charges it.
        """
        if records.dtype != self._record_dtype:
            raise ValueError(
                f"records dtype {records.dtype} != codec record dtype"
            )
        if counters is not None:
            counters.records_decoded += int(records.shape[0])
        return ViTriColumns(
            video_ids=records["video_id"].astype(np.int64),
            vitri_ids=records["vitri_id"].astype(np.int64),
            counts=records["count"].astype(np.int64),
            radii=records["radius"].astype(np.float64),
            positions=records["position"].astype(np.float64),
        )

    def decode_columns(
        self,
        buffer: bytes | bytearray | memoryview,
        count: int,
        *,
        offset: int = 0,
        counters: CostCounters | None = None,
    ) -> ViTriColumns:
        """Decode ``count`` consecutive records with **one** buffer view.

        This is the page-batch decode path: a single ``np.frombuffer``
        over the records region replaces ``count`` per-record views (the
        per-record pattern re-created a dtype view for every record —
        ~29% of warm query time before this existed).  A test asserts the
        one-view property by counting ``np.frombuffer`` calls.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        end = offset + count * self._record_size
        if offset < 0 or end > len(buffer):
            raise ValueError(
                f"{count} records at offset {offset} need {end} bytes, "
                f"buffer has {len(buffer)}"
            )
        view = np.frombuffer(
            buffer, dtype=self._record_dtype, count=count, offset=offset
        )
        return self.columns_from_struct(view, counters=counters)

    def decode_batch(
        self,
        payloads: "list[bytes]",
        *,
        counters: CostCounters | None = None,
    ) -> ViTriColumns:
        """Decode many single-record payloads as one columnar batch.

        Accepts the output shape of :meth:`~repro.storage.heap_file.
        HeapFile.read_batch`; charges ``records_decoded`` per record via
        :meth:`columns_from_struct`.
        """
        for payload in payloads:
            if len(payload) != self._record_size:
                raise ValueError(
                    f"payloads must be {self._record_size} bytes each, "
                    f"got {len(payload)}"
                )
        return self.decode_columns(
            b"".join(payloads), len(payloads), counters=counters
        )
