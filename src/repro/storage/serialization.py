"""Struct codecs for on-page record formats.

The only fixed record the reproduction persists is the full ViTri payload
(the position vector plus its scalar attributes); B+-tree leaves store the
1-D key and a :class:`~repro.storage.heap_file.RecordId` pointing here.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_non_negative, check_vector

__all__ = ["ViTriRecord", "ViTriRecordCodec"]


@dataclass(frozen=True)
class ViTriRecord:
    """A persisted ViTri: identifiers plus the triplet itself.

    Attributes
    ----------
    video_id:
        Identifier of the owning video sequence.
    vitri_id:
        Identifier of the ViTri, unique database-wide.
    count:
        ``|C|`` — number of frames in the cluster.
    radius:
        Refined cluster radius ``R``.
    position:
        Cluster centre ``O``, shape ``(n,)``.

    The density ``D = |C| / V_hypersphere(R)`` is derived, not stored: it is
    fully determined by ``count`` and ``radius`` and recomputing it avoids
    keeping two representations in sync.
    """

    video_id: int
    vitri_id: int
    count: int
    radius: float
    position: np.ndarray


class ViTriRecordCodec:
    """Fixed-size binary codec for :class:`ViTriRecord`.

    Layout (little-endian): ``video_id u32 | vitri_id u32 | count u32 |
    radius f64 | position f64[n]``.

    Parameters
    ----------
    dim:
        Dimensionality ``n`` of the position vectors.
    """

    _HEADER = struct.Struct("<IIId")

    def __init__(self, dim: int) -> None:
        if not isinstance(dim, int) or isinstance(dim, bool):
            raise TypeError("dim must be an int")
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self._dim = dim
        self._record_size = self._HEADER.size + 8 * dim

    @property
    def dim(self) -> int:
        """Dimensionality of the encoded position vectors."""
        return self._dim

    @property
    def record_size(self) -> int:
        """Encoded size of one record in bytes."""
        return self._record_size

    def encode(self, record: ViTriRecord) -> bytes:
        """Serialise a record to ``record_size`` bytes."""
        position = check_vector(record.position, "position", dim=self._dim)
        radius = check_non_negative(record.radius, "radius")
        for name, value in (
            ("video_id", record.video_id),
            ("vitri_id", record.vitri_id),
            ("count", record.count),
        ):
            if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
                raise TypeError(f"{name} must be an int")
            if value < 0 or value > 0xFFFFFFFF:
                raise ValueError(f"{name} must fit in an unsigned 32-bit int")
        header = self._HEADER.pack(
            int(record.video_id), int(record.vitri_id), int(record.count), radius
        )
        return header + position.astype("<f8").tobytes()

    def decode(self, payload: bytes) -> ViTriRecord:
        """Deserialise ``record_size`` bytes back into a record."""
        if len(payload) != self._record_size:
            raise ValueError(
                f"payload must be {self._record_size} bytes, got {len(payload)}"
            )
        video_id, vitri_id, count, radius = self._HEADER.unpack_from(payload, 0)
        position = np.frombuffer(
            payload, dtype="<f8", count=self._dim, offset=self._HEADER.size
        ).copy()
        return ViTriRecord(
            video_id=video_id,
            vitri_id=vitri_id,
            count=count,
            radius=radius,
            position=position,
        )
