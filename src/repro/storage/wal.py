"""Write-ahead log: page-image journaling with commit-time apply.

The WAL is what turns the pager into a crash-safe store.  The protocol is
deliberately simple (full-page physical redo, one transaction in flight):

1. ``Pager.write_page`` / ``allocate_page`` do **not** touch the data
   file.  Dirty page images are buffered in the WAL (:meth:`log_page`) and
   later reads are served from that buffer.
2. ``Pager.sync`` → :meth:`commit`: every buffered image is appended to
   the log as a checksummed record, followed by a COMMIT record carrying
   the committed page count of every attached file; the log is fsynced.
   Only *then* are the images applied to the data files, the files
   fsynced, the optional metadata blob atomically replaced, and the log
   reset to empty.
3. On open, :meth:`recover` replays the log: records up to the last valid
   COMMIT are re-applied (apply is idempotent — full images), anything
   after it — a torn record, an uncommitted tail, duplicate garbage — is
   discarded, and the data files are truncated to the committed page
   counts.

The invariant this buys: a data file only ever contains committed data,
so *any* crash point leaves the directory reopenable at its last
committed state.  Several pagers may share one WAL (each registered under
a ``file_id``), which makes a multi-file commit — B+-tree pages, heap
pages and the JSON metadata blob of a :class:`~repro.core.database.
VideoDatabase` directory — atomic as a unit.

Durability model: a byte written to the OS is considered durable (the
fault injector in :mod:`repro.storage.faults` simulates crashes at the
write-operation level, not OS cache loss), which is why the log and data
files are opened unbuffered.

Log layout (little-endian)::

    header: magic u32 | version u32
    record: kind u8 | file_id u8 | page_id u64 | length u32 | payload | crc u32

where ``crc`` is the CRC32 of everything from ``kind`` through
``payload``.  Record kinds: PAGE (payload = page content), META (payload
= opaque metadata blob), COMMIT (payload = ``count u8`` then ``file_id
u8, num_pages u64`` per attached file).

Segment sealing
---------------
The log itself is reset to its header after every commit, so committed
transactions normally leave no trace.  A ``segment_sink`` callable (see
:meth:`WriteAheadLog.set_segment_sink`) changes that: right after the
commit's fsync — the moment the transaction becomes durable — the sink
receives the transaction's raw record bytes (every PAGE/META record plus
the trailing COMMIT, exactly as they sit in the log).  That byte string
is a *sealed redo-only segment*: replaying it against another directory
with the same pre-transaction state reproduces the commit bit-for-bit.
:func:`scan_transaction` parses such a segment strictly (any torn,
reordered or trailing byte raises :class:`WalSegmentError` — shipping,
unlike crash recovery, must never silently drop a suffix), and
:meth:`WriteAheadLog.apply_external` applies the parsed images to the
registered targets — the replica side of WAL shipping.
"""

from __future__ import annotations

import os
import struct
import zlib

from repro.storage.page import PAGE_CONTENT_SIZE

__all__ = ["WalSegmentError", "WriteAheadLog", "scan_transaction"]

_WAL_MAGIC = 0x5669574C  # "ViWL"
_WAL_VERSION = 1
_HEADER = struct.Struct("<II")
_RECORD = struct.Struct("<BBQI")  # kind, file_id, page_id, payload length
_CRC = struct.Struct("<I")
_SIZE_COUNT = struct.Struct("<B")
_SIZE_ENTRY = struct.Struct("<BQ")

_KIND_PAGE = 1
_KIND_COMMIT = 2
_KIND_META = 3
_MAX_PAYLOAD = 16 * 1024 * 1024  # sanity bound while scanning a dirty log


def _encode_record(kind: int, file_id: int, page_id: int, payload: bytes) -> bytes:
    body = _RECORD.pack(kind, file_id, page_id, len(payload)) + payload
    return body + _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)


class WalSegmentError(ValueError):
    """A shipped transaction's record bytes failed strict validation."""


def scan_transaction(
    raw: bytes,
) -> tuple[dict[tuple[int, int], bytes], dict[int, int], bytes | None]:
    """Strictly parse one sealed transaction's record bytes.

    The input is what a commit's segment sink received: zero or more
    PAGE/META records followed by exactly one COMMIT record, with
    nothing after it.  Returns ``(images, sizes, meta)``.

    Unlike :meth:`WriteAheadLog._scan` — which *tolerates* a torn tail
    because a crash legitimately produces one — every defect here raises
    :class:`WalSegmentError`: a shipped segment was sealed after its
    fsync, so corruption means the transport (or an attacker) mangled
    it, and applying a prefix would silently fork the replica's state.
    """
    images: dict[tuple[int, int], bytes] = {}
    sizes: dict[int, int] | None = None
    meta: bytes | None = None
    offset = 0
    while offset < len(raw):
        if sizes is not None:
            raise WalSegmentError("bytes after the COMMIT record")
        if offset + _RECORD.size + _CRC.size > len(raw):
            raise WalSegmentError("truncated record header")
        kind, file_id, page_id, length = _RECORD.unpack_from(raw, offset)
        if length > _MAX_PAYLOAD:
            raise WalSegmentError(f"record payload length {length} too large")
        end = offset + _RECORD.size + length
        if end + _CRC.size > len(raw):
            raise WalSegmentError("truncated record payload")
        body = raw[offset:end]
        (stored,) = _CRC.unpack_from(raw, end)
        if stored != (zlib.crc32(body) & 0xFFFFFFFF):
            raise WalSegmentError("record checksum mismatch")
        payload = raw[offset + _RECORD.size : end]
        if kind == _KIND_PAGE:
            if len(payload) != PAGE_CONTENT_SIZE:
                raise WalSegmentError(
                    f"page image is {len(payload)} bytes, "
                    f"expected {PAGE_CONTENT_SIZE}"
                )
            images[(file_id, page_id)] = payload
        elif kind == _KIND_META:
            meta = payload
        elif kind == _KIND_COMMIT:
            sizes = WriteAheadLog._parse_commit(payload)
            if sizes is None:
                raise WalSegmentError("malformed COMMIT payload")
        else:
            raise WalSegmentError(f"unknown record kind {kind}")
        offset = end + _CRC.size
    if sizes is None:
        raise WalSegmentError("transaction has no COMMIT record")
    return images, sizes, meta


class WriteAheadLog:
    """A shared, single-transaction write-ahead log over one log file.

    Parameters
    ----------
    path:
        Log file path; created (with its header) if missing.
    meta_path:
        Optional path of a metadata file that commits may atomically
        replace (see :meth:`commit`'s ``meta`` argument).
    fault_injector:
        Optional :class:`~repro.storage.faults.FaultInjector`; every log
        append, data apply and reset flows through it so tests can
        simulate crashes deterministically.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        meta_path: str | os.PathLike | None = None,
        fault_injector=None,
    ) -> None:
        self._path = os.fspath(path)
        self._meta_path = os.fspath(meta_path) if meta_path is not None else None
        self._faults = fault_injector
        self._targets: dict[int, object] = {}
        self._pending: dict[tuple[int, int], bytes] = {}
        self._pending_meta: bytes | None = None
        self._segment_sink = None
        self._closed = False

        if not os.path.exists(self._path):
            open(self._path, "xb").close()
        self._file = open(self._path, "r+b", buffering=0)
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size < _HEADER.size:
            # Fresh log, or a header torn by a crash mid-creation: no
            # record can precede the header, so re-stamping loses nothing.
            if size:
                self._truncate_to(0)
            self._append(_HEADER.pack(_WAL_MAGIC, _WAL_VERSION))
        else:
            self._file.seek(0)
            magic, version = _HEADER.unpack(self._file.read(_HEADER.size))
            if magic != _WAL_MAGIC or version != _WAL_VERSION:
                self._file.close()
                raise ValueError(
                    f"{self._path} is not a version-{_WAL_VERSION} "
                    "write-ahead log"
                )

    # ------------------------------------------------------------------
    # Introspection / wiring
    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        """The log file path."""
        return self._path

    @property
    def closed(self) -> bool:
        """Whether the log has been closed (or crashed)."""
        return self._closed

    @property
    def has_pending(self) -> bool:
        """Whether uncommitted page images or metadata are buffered."""
        return bool(self._pending) or self._pending_meta is not None

    def register(self, file_id: int, target) -> None:
        """Attach a pager under *file_id*.

        The target must implement the WAL-target protocol:
        ``wal_apply_page(page_id, content)``, ``wal_set_num_pages(n)``,
        ``wal_fsync()``, ``wal_num_pages()`` and ``finalize_recovery()``.
        """
        if not isinstance(file_id, int) or isinstance(file_id, bool):
            raise TypeError("file_id must be an int")
        if not 0 <= file_id <= 0xFF:
            raise ValueError(f"file_id must fit in a byte, got {file_id}")
        if file_id in self._targets:
            raise ValueError(f"file id {file_id} is already registered")
        self._targets[file_id] = target

    def set_segment_sink(self, sink) -> None:
        """Install (or clear, with ``None``) the sealed-segment sink.

        ``sink(raw)`` is called once per committing transaction, right
        after the log's fsync made the transaction durable and before
        its images are applied and the log resets.  ``raw`` is the
        transaction's record bytes — PAGE/META records plus the trailing
        COMMIT — i.e. exactly what :func:`scan_transaction` parses.  The
        sink must not raise: an exception propagates out of
        :meth:`commit` after durability but before apply (recovery would
        still finish the commit, but the caller sees an error).
        """
        if sink is not None and not callable(sink):
            raise TypeError("segment sink must be callable (or None)")
        self._segment_sink = sink

    # ------------------------------------------------------------------
    # Journaling
    # ------------------------------------------------------------------
    def log_page(self, file_id: int, page_id: int, content: bytes) -> None:
        """Buffer one dirty page image for the next commit."""
        self._require_open()
        if len(content) != PAGE_CONTENT_SIZE:
            raise ValueError(
                f"page image must be {PAGE_CONTENT_SIZE} bytes, "
                f"got {len(content)}"
            )
        self._pending[(file_id, page_id)] = bytes(content)

    def pending_page(self, file_id: int, page_id: int) -> bytes | None:
        """The buffered (uncommitted) image of a page, if any."""
        return self._pending.get((file_id, page_id))

    def commit(self, meta: bytes | None = None) -> None:
        """Make every buffered change durable, then apply and reset.

        With nothing buffered and no *meta*, this degenerates to fsyncing
        the attached data files.
        """
        self._require_open()
        if self._faults is not None:
            self._faults.check()
        if meta is not None:
            self._pending_meta = bytes(meta)
        if not self.has_pending:
            for file_id in sorted(self._targets):
                self._targets[file_id].wal_fsync()
            return

        sizes = {
            file_id: self._targets[file_id].wal_num_pages()
            for file_id in sorted(self._targets)
        }
        records: list[bytes] = []
        for (file_id, page_id) in sorted(self._pending):
            records.append(
                _encode_record(
                    _KIND_PAGE, file_id, page_id, self._pending[(file_id, page_id)]
                )
            )
        if self._pending_meta is not None:
            records.append(_encode_record(_KIND_META, 0, 0, self._pending_meta))
        payload = _SIZE_COUNT.pack(len(sizes)) + b"".join(
            _SIZE_ENTRY.pack(file_id, sizes[file_id])
            for file_id in sorted(sizes)
        )
        records.append(_encode_record(_KIND_COMMIT, 0, 0, payload))
        for record in records:
            self._append(record)
        self._fsync()
        if self._segment_sink is not None:
            # The transaction is durable from here on; the sealed bytes
            # are what recovery would replay, handed to the shipper.
            self._segment_sink(b"".join(records))

        self._apply(dict(self._pending), sizes, self._pending_meta)
        self._reset()
        self._pending.clear()
        self._pending_meta = None

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(self) -> bool:
        """Replay committed records, discard the rest, reset the log.

        Must run after every target is registered and before any of them
        serves reads.  Returns whether any committed work was re-applied.
        """
        self._require_open()
        images, sizes, meta, any_commit = self._scan()
        if any_commit:
            unknown = {fid for fid, _ in images} | set(sizes)
            unknown -= set(self._targets)
            if unknown:
                raise ValueError(
                    f"WAL {self._path} references unregistered file ids "
                    f"{sorted(unknown)}"
                )
            self._apply(images, sizes, meta)
        self._reset()
        for file_id in sorted(self._targets):
            self._targets[file_id].finalize_recovery()
        return any_commit

    def _scan(
        self,
    ) -> tuple[dict[tuple[int, int], bytes], dict[int, int], bytes | None, bool]:
        """Parse the log, folding records into the last committed state.

        Stops at the first torn/corrupt record; everything before the last
        valid COMMIT is committed state, everything after is discarded.
        """
        self._file.seek(0)
        raw = self._file.read()
        committed: dict[tuple[int, int], bytes] = {}
        committed_sizes: dict[int, int] = {}
        committed_meta: bytes | None = None
        any_commit = False
        if len(raw) < _HEADER.size:
            return committed, committed_sizes, committed_meta, False
        magic, version = _HEADER.unpack_from(raw, 0)
        if magic != _WAL_MAGIC or version != _WAL_VERSION:
            return committed, committed_sizes, committed_meta, False

        txn: dict[tuple[int, int], bytes] = {}
        txn_meta: bytes | None = None
        offset = _HEADER.size
        while offset + _RECORD.size + _CRC.size <= len(raw):
            kind, file_id, page_id, length = _RECORD.unpack_from(raw, offset)
            if length > _MAX_PAYLOAD:
                break
            end = offset + _RECORD.size + length
            if end + _CRC.size > len(raw):
                break
            body = raw[offset:end]
            (stored,) = _CRC.unpack_from(raw, end)
            if stored != (zlib.crc32(body) & 0xFFFFFFFF):
                break
            payload = raw[offset + _RECORD.size : end]
            if kind == _KIND_PAGE:
                if len(payload) != PAGE_CONTENT_SIZE:
                    break
                txn[(file_id, page_id)] = payload
            elif kind == _KIND_META:
                txn_meta = payload
            elif kind == _KIND_COMMIT:
                sizes = self._parse_commit(payload)
                if sizes is None:
                    break
                committed.update(txn)
                committed_sizes.update(sizes)
                if txn_meta is not None:
                    committed_meta = txn_meta
                txn = {}
                txn_meta = None
                any_commit = True
            else:
                break
            offset = end + _CRC.size
        return committed, committed_sizes, committed_meta, any_commit

    @staticmethod
    def _parse_commit(payload: bytes) -> dict[int, int] | None:
        if len(payload) < _SIZE_COUNT.size:
            return None
        (count,) = _SIZE_COUNT.unpack_from(payload, 0)
        if len(payload) != _SIZE_COUNT.size + count * _SIZE_ENTRY.size:
            return None
        sizes: dict[int, int] = {}
        for index in range(count):
            file_id, num_pages = _SIZE_ENTRY.unpack_from(
                payload, _SIZE_COUNT.size + index * _SIZE_ENTRY.size
            )
            sizes[file_id] = num_pages
        return sizes

    def apply_external(
        self,
        images: dict[tuple[int, int], bytes],
        sizes: dict[int, int],
        meta: bytes | None,
    ) -> None:
        """Apply an externally-committed transaction to this log's targets.

        The replica side of WAL shipping: ``images``/``sizes``/``meta``
        come from :func:`scan_transaction` over a sealed segment the
        *primary* committed.  The apply is the same idempotent full-page
        redo recovery performs — pages written through the targets, file
        sizes set, files fsynced, the metadata blob atomically replaced.
        Requires an empty local transaction (a replica never journals its
        own writes) and registered targets for every referenced file id.
        """
        self._require_open()
        if self.has_pending:
            raise RuntimeError(
                "cannot apply an external transaction over pending local "
                "changes"
            )
        unknown = {fid for fid, _ in images} | set(sizes)
        unknown -= set(self._targets)
        if unknown:
            raise ValueError(
                f"external transaction references unregistered file ids "
                f"{sorted(unknown)}"
            )
        self._apply(dict(images), dict(sizes), meta)

    # ------------------------------------------------------------------
    # Apply / reset
    # ------------------------------------------------------------------
    def _apply(
        self,
        images: dict[tuple[int, int], bytes],
        sizes: dict[int, int],
        meta: bytes | None,
    ) -> None:
        for (file_id, page_id) in sorted(images):
            self._targets[file_id].wal_apply_page(
                page_id, images[(file_id, page_id)]
            )
        for file_id in sorted(sizes):
            self._targets[file_id].wal_set_num_pages(sizes[file_id])
        for file_id in sorted(self._targets):
            self._targets[file_id].wal_fsync()
        if meta is not None:
            if self._meta_path is None:
                raise ValueError(
                    "WAL holds a committed metadata blob but no meta_path "
                    "was configured"
                )
            self._replace_meta(meta)

    def _replace_meta(self, blob: bytes) -> None:
        tmp = self._meta_path + ".tmp"

        def perform() -> None:
            with open(tmp, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self._meta_path)

        if self._faults is not None:
            self._faults.op(perform)
        else:
            perform()

    def _reset(self) -> None:
        self._truncate_to(_HEADER.size)
        self._fsync()

    # ------------------------------------------------------------------
    # Low-level file I/O (the faultable operations)
    # ------------------------------------------------------------------
    def _append(self, data: bytes) -> None:
        def sink(chunk: bytes) -> None:
            self._file.seek(0, os.SEEK_END)
            self._file.write(chunk)

        if self._faults is not None:
            self._faults.write(sink, data)
        else:
            sink(data)

    def _truncate_to(self, size: int) -> None:
        def perform() -> None:
            self._file.truncate(size)

        if self._faults is not None:
            self._faults.op(perform)
        else:
            perform()

    def _fsync(self) -> None:
        if self._faults is not None:
            self._faults.check()
        os.fsync(self._file.fileno())

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("write-ahead log is closed")

    def close(self) -> None:
        """Commit anything pending, then close the log file."""
        if self._closed:
            return
        crashed = self._faults is not None and self._faults.crashed
        if not crashed and self.has_pending:
            self.commit()
        self._closed = True
        self._file.close()

    def crash(self) -> None:
        """Testing seam: release the file handle without committing."""
        self._closed = True
        self._file.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"pending={len(self._pending)}"
        return f"WriteAheadLog({self._path!r}, {state})"
