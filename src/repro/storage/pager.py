"""File-backed page store with physical I/O counters.

The pager is the bottom of the storage stack: it allocates, reads and
writes whole :data:`~repro.storage.page.PAGE_SIZE`-byte pages.  It can run
against a real file on disk or fully in memory (``path=None``); either way
it counts every physical page read and write, which is what the I/O-cost
benchmarks report.
"""

from __future__ import annotations

import os

from repro.storage.page import PAGE_SIZE, Page

__all__ = ["Pager"]


class Pager:
    """Page-granular storage over a file or an in-memory list.

    Parameters
    ----------
    path:
        Backing file path, or ``None`` for a purely in-memory pager (used
        heavily in tests and benchmarks — the I/O *counters* behave
        identically either way).

    Attributes
    ----------
    physical_reads / physical_writes:
        Cumulative number of page reads/writes served.
    """

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self._path = os.fspath(path) if path is not None else None
        self._file = None
        self._memory: list[bytearray] | None = None
        self._num_pages = 0
        self.physical_reads = 0
        self.physical_writes = 0
        self._closed = False

        if self._path is None:
            self._memory = []
        else:
            # Create the file if missing without truncating it; "a+b" is not
            # usable here because append mode ignores seek() on writes.
            if not os.path.exists(self._path):
                open(self._path, "xb").close()
            self._file = open(self._path, "r+b")
            self._file.seek(0, os.SEEK_END)
            size = self._file.tell()
            if size % PAGE_SIZE != 0:
                self._file.close()
                raise ValueError(
                    f"backing file {self._path} has size {size}, "
                    f"not a multiple of the page size {PAGE_SIZE}"
                )
            self._num_pages = size // PAGE_SIZE

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_pages(self) -> int:
        """Number of pages currently allocated."""
        return self._num_pages

    @property
    def path(self) -> str | None:
        """Backing file path; ``None`` for in-memory pagers."""
        return self._path

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("pager is closed")

    def _check_page_id(self, page_id: int) -> None:
        if not isinstance(page_id, int) or isinstance(page_id, bool):
            raise TypeError("page_id must be an int")
        if page_id < 0 or page_id >= self._num_pages:
            raise ValueError(
                f"page_id {page_id} out of range [0, {self._num_pages})"
            )

    # ------------------------------------------------------------------
    # Page operations
    # ------------------------------------------------------------------
    def allocate_page(self) -> int:
        """Append a zeroed page and return its id."""
        self._require_open()
        page_id = self._num_pages
        zeros = bytearray(PAGE_SIZE)
        if self._memory is not None:
            self._memory.append(zeros)
        else:
            self._file.seek(page_id * PAGE_SIZE)
            self._file.write(zeros)
        self._num_pages += 1
        self.physical_writes += 1
        return page_id

    def read_page(self, page_id: int) -> Page:
        """Read one page from the backing store (counts one physical read)."""
        self._require_open()
        self._check_page_id(page_id)
        if self._memory is not None:
            data = bytearray(self._memory[page_id])
        else:
            self._file.seek(page_id * PAGE_SIZE)
            data = bytearray(self._file.read(PAGE_SIZE))
        self.physical_reads += 1
        return Page(page_id, data)

    def write_page(self, page: Page) -> None:
        """Write one page back (counts one physical write)."""
        self._require_open()
        self._check_page_id(page.page_id)
        if self._memory is not None:
            self._memory[page.page_id] = bytearray(page.data)
        else:
            self._file.seek(page.page_id * PAGE_SIZE)
            self._file.write(bytes(page.data))
        self.physical_writes += 1
        page.dirty = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Flush the backing file to the OS (no-op in memory)."""
        self._require_open()
        if self._file is not None:
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        """Close the backing file; further operations raise."""
        if self._closed:
            return
        if self._file is not None:
            self._file.flush()
            self._file.close()
        self._closed = True

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        backing = self._path or "<memory>"
        return f"Pager({backing!r}, pages={self._num_pages})"
