"""File-backed page store with physical I/O counters and crash safety.

The pager is the bottom of the storage stack: it allocates, reads and
writes whole :data:`~repro.storage.page.PAGE_SIZE`-byte page frames.  It
can run against a real file on disk or fully in memory (``path=None``);
either way it counts every physical page read and write, which is what
the I/O-cost benchmarks report.

Since the crash-safety work every frame carries a CRC32 trailer
(:mod:`repro.storage.serialization`), and file-backed pagers default to
journaling through a :class:`~repro.storage.wal.WriteAheadLog`:

* ``wal=True`` (default for files) — writes are buffered in the pager's
  own WAL (``<path>.wal``); :meth:`sync` commits and applies them; the
  constructor replays any committed-but-unapplied log, so reopening
  after a crash always lands on the last committed state.
* ``wal=<WriteAheadLog>`` — attach to a *shared* log under
  ``wal_file_id`` so several files commit atomically (used by the
  database directory layout).  The owner of the shared log must call its
  ``recover()`` once every pager is registered, before any reads.
* ``wal=False`` — direct writes, no journal; checksums still detect torn
  pages at read time, but nothing repairs them.

The ``fault_injector`` hook (see :mod:`repro.storage.faults`) is the
deterministic-simulation seam: when set, every disk mutation routes
through it so tests can crash the pager at a scripted operation.

Thread safety: all page operations and the physical I/O counters are
guarded by an internal re-entrant lock, so several
:class:`~repro.storage.buffer_pool.BufferPool` instances (one per query
worker) can safely share one pager.  The optional ``read_latency``
models a disk's per-read service time — it sleeps *outside* the lock,
so concurrent readers overlap their simulated seeks exactly as
concurrent requests overlap on real storage hardware.
"""

from __future__ import annotations

# vilint: disable-file=blocking-while-locked -- the pager is the disk
# boundary: frame reads/writes and commit fsyncs under Pager._lock are
# the class's whole job, and the one unbounded wait (the simulated
# per-read service time) deliberately sleeps before the lock is taken.

import os
import time

from repro.storage.page import PAGE_SIZE, PAGE_CONTENT_SIZE, Page
from repro.storage.serialization import pack_page_frame, unpack_page_frame
from repro.storage.wal import WriteAheadLog
from repro.utils.locks import make_lock

__all__ = ["Pager"]


class Pager:
    """Page-granular storage over a file or an in-memory list.

    Parameters
    ----------
    path:
        Backing file path, or ``None`` for a purely in-memory pager (used
        heavily in tests and benchmarks — the I/O *counters* behave
        identically either way).
    wal:
        ``True`` (default) journals file-backed writes through a private
        write-ahead log; ``False`` writes directly; a
        :class:`~repro.storage.wal.WriteAheadLog` instance attaches to a
        shared log.  Ignored for in-memory pagers.
    wal_file_id:
        This pager's id inside a shared log (default 0).
    fault_injector:
        Optional :class:`~repro.storage.faults.FaultInjector` used by the
        crash-recovery tests; ``None`` (the default) costs nothing.
    read_latency:
        Simulated per-read service time in seconds (default ``0.0``: no
        simulation).  Applied on every :meth:`read_page` *before* the
        internal lock is taken, so concurrent readers overlap their
        waits — the serving benchmarks use this to model the paper's
        disk-bound regime on hardware-independent terms.

    Attributes
    ----------
    physical_reads / physical_writes:
        Cumulative number of page reads/writes served at this boundary.
        (WAL recovery and commit-apply I/O is bookkeeping, not workload,
        and is deliberately not counted.)
    """

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        *,
        wal: bool | WriteAheadLog = True,
        wal_file_id: int = 0,
        fault_injector=None,
        read_latency: float = 0.0,
    ) -> None:
        if not isinstance(read_latency, (int, float)) or isinstance(
            read_latency, bool
        ):
            raise TypeError("read_latency must be a number")
        if read_latency < 0.0:
            raise ValueError(
                f"read_latency must be >= 0, got {read_latency}"
            )
        self._path = os.fspath(path) if path is not None else None
        self._file = None
        self._memory: list[bytes] | None = None
        self._num_pages = 0
        self.physical_reads = 0
        self.physical_writes = 0
        self._closed = False
        self._read_latency = float(read_latency)
        # Re-entrant: sync() holds the lock while the WAL commit calls
        # back into wal_apply_page/_write_frame on this same pager.
        self._lock = make_lock("Pager._lock")
        self._faults = fault_injector
        self._wal: WriteAheadLog | None = None
        self._wal_file_id = wal_file_id
        self._owns_wal = False

        if self._path is None:
            self._memory = []
            return

        # Create the file if missing without truncating it; "a+b" is not
        # usable here because append mode ignores seek() on writes.
        if not os.path.exists(self._path):
            open(self._path, "xb").close()
        self._file = open(self._path, "r+b", buffering=0)

        if isinstance(wal, WriteAheadLog):
            self._wal = wal
            wal.register(wal_file_id, self)
            # Recovery is driven by the shared log's owner; num_pages is
            # provisional until finalize_recovery().
            self._num_pages = self._file_size() // PAGE_SIZE
        elif wal:
            self._wal = WriteAheadLog(
                self._path + ".wal", fault_injector=fault_injector
            )
            self._owns_wal = True
            self._wal.register(wal_file_id, self)
            self._wal.recover()  # calls finalize_recovery()
        else:
            self.finalize_recovery()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_pages(self) -> int:
        """Number of pages currently allocated."""
        with self._lock:
            return self._num_pages

    @property
    def path(self) -> str | None:
        """Backing file path; ``None`` for in-memory pagers."""
        return self._path

    @property
    def wal(self) -> WriteAheadLog | None:
        """The attached write-ahead log, if any."""
        return self._wal

    @property
    def read_latency(self) -> float:
        """Simulated per-read service time in seconds (0 = disabled)."""
        return self._read_latency

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("pager is closed")
        if self._faults is not None:
            self._faults.check()

    def _check_page_id(self, page_id: int) -> None:
        if not isinstance(page_id, int) or isinstance(page_id, bool):
            raise TypeError("page_id must be an int")
        if page_id < 0 or page_id >= self._num_pages:
            raise ValueError(
                f"page_id {page_id} out of range [0, {self._num_pages})"
            )

    # ------------------------------------------------------------------
    # Page operations
    # ------------------------------------------------------------------
    def allocate_page(self) -> int:
        """Append a zeroed page and return its id."""
        with self._lock:
            self._require_open()
            page_id = self._num_pages
            zeros = bytes(PAGE_CONTENT_SIZE)
            if self._memory is not None:
                self._memory.append(pack_page_frame(zeros))
            elif self._wal is not None:
                self._wal.log_page(self._wal_file_id, page_id, zeros)
            else:
                self._write_frame(page_id, zeros)
            self._num_pages += 1
            self.physical_writes += 1
            return page_id

    def read_page(self, page_id: int) -> Page:
        """Read one page from the backing store (counts one physical read).

        Raises :class:`~repro.storage.serialization.ChecksumError` if the
        stored frame fails checksum verification.
        """
        if self._read_latency > 0.0:
            # Simulated disk service time, deliberately outside the lock
            # so concurrent readers overlap their waits.
            time.sleep(self._read_latency)
        with self._lock:
            self._require_open()
            self._check_page_id(page_id)
            if self._memory is not None:
                data = unpack_page_frame(self._memory[page_id], page_id)
            else:
                pending = (
                    self._wal.pending_page(self._wal_file_id, page_id)
                    if self._wal is not None
                    else None
                )
                if pending is not None:
                    data = bytearray(pending)
                else:
                    data = self._read_frame(page_id)
            self.physical_reads += 1
            return Page(page_id, data)

    def write_page(self, page: Page) -> None:
        """Write one page back (counts one physical write).

        With a WAL attached the image is journaled, not applied: it
        reaches the data file when :meth:`sync` commits.
        """
        with self._lock:
            self._require_open()
            self._check_page_id(page.page_id)
            if self._memory is not None:
                self._memory[page.page_id] = pack_page_frame(page.data)
            elif self._wal is not None:
                self._wal.log_page(
                    self._wal_file_id, page.page_id, bytes(page.data)
                )
            else:
                self._write_frame(page.page_id, page.data)
            self.physical_writes += 1
            page.dirty = False

    def verify_checksums(self) -> int:
        """Verify the CRC32 trailer of every stored page frame.

        Returns the number of frames scanned; raises
        :class:`~repro.storage.serialization.ChecksumError` on the first
        bad frame.  This is an out-of-band integrity scan (used by the
        B+-tree checker and ``repro-video check``) and does not touch the
        I/O counters.
        """
        with self._lock:
            self._require_open()
            if self._memory is not None:
                for page_id, frame in enumerate(self._memory):
                    unpack_page_frame(frame, page_id)
                return len(self._memory)
            scanned = self._file_size() // PAGE_SIZE
            for page_id in range(scanned):
                self._file.seek(page_id * PAGE_SIZE)
                unpack_page_frame(self._file.read(PAGE_SIZE), page_id)
            return scanned

    # ------------------------------------------------------------------
    # Low-level frame I/O
    # ------------------------------------------------------------------
    def _file_size(self) -> int:
        self._file.seek(0, os.SEEK_END)
        return self._file.tell()

    def _read_frame(self, page_id: int) -> bytearray:
        self._file.seek(page_id * PAGE_SIZE)
        return unpack_page_frame(self._file.read(PAGE_SIZE), page_id)

    def _write_frame(self, page_id: int, content: bytes | bytearray) -> None:
        frame = pack_page_frame(content)
        offset = page_id * PAGE_SIZE

        def sink(chunk: bytes) -> None:
            self._file.seek(offset)
            self._file.write(chunk)

        if self._faults is not None:
            self._faults.write(sink, frame)
        else:
            sink(frame)

    # ------------------------------------------------------------------
    # WAL-target protocol (called by WriteAheadLog)
    # ------------------------------------------------------------------
    def wal_apply_page(self, page_id: int, content: bytes) -> None:
        """Apply one committed page image to the data file."""
        with self._lock:
            self._write_frame(page_id, content)

    def wal_set_num_pages(self, num_pages: int) -> None:
        """Truncate/extend the data file to the committed page count."""
        size = num_pages * PAGE_SIZE

        def perform() -> None:
            self._file.truncate(size)

        with self._lock:
            if self._faults is not None:
                self._faults.op(perform)
            else:
                perform()
            self._num_pages = num_pages

    def wal_fsync(self) -> None:
        """Fsync the data file (commit/recovery barrier)."""
        with self._lock:
            if self._faults is not None:
                self._faults.check()
            os.fsync(self._file.fileno())

    def wal_num_pages(self) -> int:
        """Current page count, recorded in commit records."""
        with self._lock:
            return self._num_pages

    def finalize_recovery(self) -> None:
        """Validate the backing file after recovery (or absence of one)."""
        with self._lock:
            size = self._file_size()
            if size % PAGE_SIZE != 0:
                raise ValueError(
                    f"backing file {self._path} has size {size}, "
                    f"not a multiple of the page size {PAGE_SIZE}"
                )
            self._num_pages = size // PAGE_SIZE

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Make every write so far durable.

        WAL mode commits (journal, fsync, apply, reset); direct mode
        flushes and fsyncs the backing file; in-memory is a no-op.
        """
        with self._lock:
            self._require_open()
            if self._memory is not None:
                return
            if self._wal is not None:
                self._wal.commit()
            else:
                self._file.flush()
                os.fsync(self._file.fileno())

    def close(self) -> None:
        """Sync, then close the backing file; further operations raise.

        Idempotent.  A pager whose fault injector has crashed closes its
        file handle without attempting further writes.
        """
        with self._lock:
            if self._closed:
                return
            if self._file is not None:
                crashed = self._faults is not None and self._faults.crashed
                if not crashed:
                    if self._wal is not None:
                        if not self._wal.closed:
                            self.sync()
                    else:
                        self.sync()
                if self._owns_wal and not self._wal.closed:
                    self._wal.close()
                self._file.close()
            self._closed = True

    def crash(self) -> None:
        """Testing seam: release file handles without committing, leaving
        the on-disk state exactly as the last disk operation left it."""
        with self._lock:
            self._closed = True
            if self._file is not None:
                self._file.close()
            if (
                self._owns_wal
                and self._wal is not None
                and not self._wal.closed
            ):
                self._wal.crash()

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Regression guard: exiting the context manager must never leave
        # unsynced pages behind, so sync explicitly before closing (close
        # also syncs, but only while the WAL is still open).
        with self._lock:
            if not self._closed:
                crashed = self._faults is not None and self._faults.crashed
                wal_closed = self._wal is not None and self._wal.closed
                if not crashed and not wal_closed:
                    self.sync()
            self.close()

    def __repr__(self) -> str:
        backing = self._path or "<memory>"
        with self._lock:
            return f"Pager({backing!r}, pages={self._num_pages})"
