"""Paged storage substrate.

Everything the B+-tree and the ViTri heap sit on:

* :mod:`repro.storage.page` — the 4 KiB page unit (matching the paper's
  experimental setup); :data:`~repro.storage.page.PAGE_CONTENT_SIZE` of
  each frame is usable content, the rest a CRC32 trailer;
* :mod:`repro.storage.pager` — a file-backed (or in-memory) page store
  with physical read/write counters, checksummed frames and write-ahead
  logging;
* :mod:`repro.storage.wal` — the write-ahead log that makes a group of
  page writes (possibly across several files) atomic and replayable;
* :mod:`repro.storage.buffer_pool` — an LRU cache of pages with logical
  request / hit / miss counters;
* :mod:`repro.storage.heap_file` — a fixed-size-record heap file used to
  store full ViTri payloads (position vectors) referenced from B+-tree
  leaves;
* :mod:`repro.storage.serialization` — struct codecs for the on-page
  record formats, including the checksummed page-frame codec;
* :mod:`repro.storage.faults` — deterministic disk-fault injection used
  by the crash-recovery tests.

Every page that a query touches flows through these counters, which is how
the reproduction reports I/O cost hardware-independently.
"""

from __future__ import annotations

from repro.storage.buffer_pool import BufferPool
from repro.storage.faults import FaultInjectingPager, FaultInjector, SimulatedCrash
from repro.storage.heap_file import HeapFile, RecordId
from repro.storage.page import CHECKSUM_SIZE, PAGE_CONTENT_SIZE, PAGE_SIZE, Page
from repro.storage.pager import Pager
from repro.storage.serialization import (
    ChecksumError,
    ViTriRecordCodec,
    pack_page_frame,
    page_checksum,
    unpack_page_frame,
)
from repro.storage.wal import WriteAheadLog

__all__ = [
    "BufferPool",
    "CHECKSUM_SIZE",
    "ChecksumError",
    "FaultInjectingPager",
    "FaultInjector",
    "HeapFile",
    "PAGE_CONTENT_SIZE",
    "PAGE_SIZE",
    "Page",
    "Pager",
    "RecordId",
    "SimulatedCrash",
    "ViTriRecordCodec",
    "WriteAheadLog",
    "pack_page_frame",
    "page_checksum",
    "unpack_page_frame",
]
