"""Paged storage substrate.

Everything the B+-tree and the ViTri heap sit on:

* :mod:`repro.storage.page` — the 4 KiB page unit (matching the paper's
  experimental setup);
* :mod:`repro.storage.pager` — a file-backed (or in-memory) page store
  with physical read/write counters;
* :mod:`repro.storage.buffer_pool` — an LRU cache of pages with logical
  request / hit / miss counters;
* :mod:`repro.storage.heap_file` — a fixed-size-record heap file used to
  store full ViTri payloads (position vectors) referenced from B+-tree
  leaves;
* :mod:`repro.storage.serialization` — struct codecs for the on-page
  record formats.

Every page that a query touches flows through these counters, which is how
the reproduction reports I/O cost hardware-independently.
"""

from __future__ import annotations

from repro.storage.buffer_pool import BufferPool
from repro.storage.heap_file import HeapFile, RecordId
from repro.storage.page import PAGE_SIZE, Page
from repro.storage.pager import Pager
from repro.storage.serialization import ViTriRecordCodec

__all__ = [
    "BufferPool",
    "HeapFile",
    "RecordId",
    "PAGE_SIZE",
    "Page",
    "Pager",
    "ViTriRecordCodec",
]
