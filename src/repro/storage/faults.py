"""Deterministic disk-fault injection for crash-recovery testing.

Crash safety is only a *property* if it can be falsified, so the storage
stack exposes one seam: every low-level disk mutation (WAL appends, data
page applies, truncates, metadata replaces) flows through an optional
:class:`FaultInjector`.  The injector counts operations and, at a
scripted operation index, damages that operation and "crashes" — the
damaged bytes (if any) stay on disk exactly as a real power cut would
leave them, and every later storage call raises :class:`SimulatedCrash`.

A test then reopens the same files with a plain pager and asserts that
checksum verification plus WAL recovery restore the last committed
state.  Sweeping ``crash_after`` over every operation index of a
workload turns "the database survives crashes" into an exhaustively
checked statement.

Damage modes for the faulted operation:

* ``"drop"`` — the write never happens (power cut just before the I/O);
* ``"torn"`` — only the first half of the bytes land (torn page/record);
* ``"duplicate"`` — the bytes are written twice (a replayed append; this
  is what makes WAL records duplicate on disk, so recovery must be
  idempotent);
* ``"random"`` — one of the three above, chosen deterministically from
  ``seed`` via :func:`~repro.utils.rng.ensure_rng`.

One mode is *not* terminal: ``"transient"`` raises
:class:`SimulatedCrash` for operations ``crash_after ..
crash_after + transient_ops - 1`` (each faulted operation is dropped —
its bytes never land), then heals; :attr:`FaultInjector.crashed` stays
``False`` throughout.  This is how retry paths are exercised end-to-end
at the pager level: a caller that retries after the window sees the
operation succeed.

Everything here is deterministic: the same workload with the same
injector arguments damages the same byte of the same file every run.
"""

from __future__ import annotations

from typing import Callable

from repro.storage.pager import Pager
from repro.utils.rng import ensure_rng

__all__ = ["FaultInjectingPager", "FaultInjector", "SimulatedCrash"]

_DAMAGE_MODES = ("drop", "torn", "duplicate")


class SimulatedCrash(RuntimeError):
    """Raised once a :class:`FaultInjector` reaches its crash point."""


class FaultInjector:
    """Scripted fault schedule shared by a pager and its WAL.

    Parameters
    ----------
    crash_after:
        1-based index of the disk operation to damage; operations
        ``1..crash_after-1`` run normally, operation ``crash_after`` is
        damaged according to *mode*, and everything afterwards raises
        :class:`SimulatedCrash`.  ``None`` disables crashing — the
        injector then only counts operations, which is how a sweep first
        measures a workload's operation count.
    mode:
        ``"drop"``, ``"torn"``, ``"duplicate"``, ``"random"``, or
        ``"transient"`` (fail-then-heal; requires ``crash_after``).
    seed:
        Seed for ``mode="random"`` (ignored otherwise).
    transient_ops:
        Length of the failure window for ``mode="transient"``: that many
        consecutive operations starting at ``crash_after`` raise
        :class:`SimulatedCrash` (and are dropped), after which every
        operation succeeds again.  Ignored by the terminal modes.

    Attributes
    ----------
    ops:
        Number of disk operations observed so far.
    crashed:
        Whether the crash point has been reached.
    resolved_mode:
        The damage mode that will be (or was) applied — useful when
        ``mode="random"``.
    """

    def __init__(
        self,
        crash_after: int | None = None,
        mode: str = "drop",
        seed: int | None = 0,
        transient_ops: int = 1,
    ) -> None:
        if crash_after is not None and (
            not isinstance(crash_after, int)
            or isinstance(crash_after, bool)
            or crash_after < 1
        ):
            raise ValueError(
                f"crash_after must be a positive int or None, got {crash_after}"
            )
        if mode not in (*_DAMAGE_MODES, "random", "transient"):
            raise ValueError(
                f"mode must be one of "
                f"{_DAMAGE_MODES + ('random', 'transient')}, got {mode!r}"
            )
        if (
            not isinstance(transient_ops, int)
            or isinstance(transient_ops, bool)
            or transient_ops < 1
        ):
            raise ValueError(
                f"transient_ops must be a positive int, got {transient_ops}"
            )
        if mode == "transient" and crash_after is None:
            raise ValueError("transient mode needs a crash_after start point")
        self._crash_after = crash_after
        self._transient_ops = transient_ops
        if mode == "random":
            rng = ensure_rng(seed)
            mode = _DAMAGE_MODES[int(rng.integers(0, len(_DAMAGE_MODES)))]
        self.resolved_mode = mode
        self.ops = 0
        self.crashed = False

    def check(self) -> None:
        """Raise if the crash point has been reached."""
        if self.crashed:
            raise SimulatedCrash(
                f"storage crashed at operation {self._crash_after}"
            )

    def _arm(self) -> bool:
        """Count one operation; True when it is the one to damage.

        In ``transient`` mode no operation is ever *damaged*: operations
        inside the failure window raise here (so the I/O is dropped) and
        everything outside it proceeds normally, with ``crashed`` left
        ``False`` — the injector heals.
        """
        self.check()
        self.ops += 1
        if self.resolved_mode == "transient":
            # crash_after is validated non-None for this mode.
            last_op = self._crash_after + self._transient_ops - 1
            if self._crash_after <= self.ops <= last_op:
                raise SimulatedCrash(
                    f"transient fault at operation {self.ops} "
                    f"(window {self._crash_after}..{last_op})"
                )
            return False
        return self._crash_after is not None and self.ops == self._crash_after

    def write(self, sink: Callable[[bytes], None], data: bytes) -> None:
        """Route one byte-write through the schedule."""
        if not self._arm():
            sink(data)
            return
        self.crashed = True
        if self.resolved_mode == "torn":
            sink(data[: len(data) // 2])
        elif self.resolved_mode == "duplicate":
            sink(data)
            sink(data)
        # "drop": the bytes never reach the disk.
        self.check()

    def op(self, perform: Callable[[], None]) -> None:
        """Route one non-byte operation (truncate, rename) through the
        schedule.  Such operations are atomic, so ``"torn"`` degrades to
        ``"drop"`` and ``"duplicate"`` to performing it once."""
        if not self._arm():
            perform()
            return
        self.crashed = True
        if self.resolved_mode == "duplicate":
            perform()
        self.check()

    def __repr__(self) -> str:
        return (
            f"FaultInjector(crash_after={self._crash_after}, "
            f"mode={self.resolved_mode!r}, ops={self.ops}, "
            f"crashed={self.crashed})"
        )


class FaultInjectingPager(Pager):
    """A file-backed pager wired to a :class:`FaultInjector`.

    Drop-in replacement for :class:`~repro.storage.pager.Pager` in tests:
    behaves identically until the scripted operation index, then damages
    that disk operation and raises :class:`SimulatedCrash` from every
    subsequent call.  The on-disk files are left exactly as the crash
    left them; reopen them with a plain ``Pager`` to exercise recovery.

    The injector is exposed as :attr:`faults` so a workload can read
    ``faults.ops`` (e.g. to size a crash-point sweep).
    """

    def __init__(
        self,
        path: str,
        *,
        crash_after: int | None = None,
        mode: str = "drop",
        seed: int | None = 0,
        transient_ops: int = 1,
        wal: bool = True,
    ) -> None:
        if path is None:
            raise ValueError(
                "FaultInjectingPager needs a real file: crashes are only "
                "observable if state survives on disk"
            )
        injector = FaultInjector(
            crash_after=crash_after,
            mode=mode,
            seed=seed,
            transient_ops=transient_ops,
        )
        self.faults = injector
        super().__init__(path, wal=wal, fault_injector=injector)
