"""LRU buffer pool with logical-request accounting.

Sits between the access methods (B+-tree, heap file) and the
:class:`~repro.storage.pager.Pager`.  Every page access is a *logical
request*; only misses become physical reads.  The distinction matters for
the paper's Figure 16: query composition saves I/O precisely because the
naive per-ViTri KNN re-reads the same leaf pages, and whether those repeats
hit the pool or the disk is a buffer-size question the benchmark sweeps.

Accounting happens at two scopes: the pool's cumulative ``requests`` /
``hits`` / ``misses`` attributes (a lifetime aggregate, useful for
benchmark sweeps), and an optional per-query
:class:`~repro.utils.counters.CostCounters` bundle passed to
:meth:`BufferPool.fetch` — the per-query bundle is what
:class:`~repro.core.index.QueryStats` is built from, so interleaved
queries can never misattribute each other's page accesses.

All cache and counter mutations are guarded by an internal lock, so a
pool may be shared by concurrent readers (the query engine additionally
gives each worker its own pool to avoid cache-interference between
queries; the lock makes even the shared-pool case lose no updates).
Miss reads happen outside the lock so concurrent misses overlap their
simulated disk waits; a pool shared by concurrent *mutators* of the
same page additionally needs serialisation above this layer (the engine
serialises structural writes, so in practice shared pools only serve
reads).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.storage.page import Page
from repro.storage.pager import Pager
from repro.utils.counters import CostCounters
from repro.utils.locks import make_lock

__all__ = ["BufferPool"]


class BufferPool:
    """Fixed-capacity LRU cache of pages.

    Parameters
    ----------
    pager:
        The underlying page store.
    capacity:
        Maximum number of pages cached.  ``0`` disables caching entirely
        (every request is a physical read) — useful to make I/O counts
        exactly equal to logical accesses.

    Attributes
    ----------
    requests / hits / misses:
        Cumulative logical-access counters.
    """

    def __init__(self, pager: Pager, capacity: int = 128) -> None:
        if not isinstance(capacity, int) or isinstance(capacity, bool):
            raise TypeError("capacity must be an int")
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self._pager = pager
        self._capacity = capacity
        self._pages: OrderedDict[int, Page] = OrderedDict()
        self._lock = make_lock("BufferPool._lock")
        self.requests = 0
        self.hits = 0
        self.misses = 0

    @property
    def pager(self) -> Pager:
        """The underlying page store."""
        return self._pager

    @property
    def capacity(self) -> int:
        """Maximum number of cached pages."""
        return self._capacity

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def fetch(self, page_id: int, counters: CostCounters | None = None) -> Page:
        """Return the page, from cache if possible.

        The returned :class:`Page` object is shared: mutate ``page.data``
        in place and call ``page.mark_dirty()`` so eviction/flush writes it
        back.

        Parameters
        ----------
        page_id:
            The page to fetch.
        counters:
            Optional per-query cost bundle: every fetch bumps
            ``page_requests`` and every miss additionally bumps
            ``page_reads``.  This is the only sanctioned source for
            query-cost reporting (the pool's own attributes are lifetime
            aggregates shared by every caller).

        The physical read on a miss happens *outside* the pool lock:
        the pager models per-read service time, and holding the pool
        lock across it would serialise concurrent misses that real
        storage hardware overlaps.  Each miss performs and accounts
        exactly one physical read even when two threads miss the same
        page at once — the loser of the re-admission race returns the
        winner's cached page but has already paid (and counted) its own
        read, keeping ``sum(page_reads) == misses`` exact.
        """
        with self._lock:
            self.requests += 1
            if counters is not None:
                counters.page_requests += 1
            page = self._pages.get(page_id)
            if page is not None:
                self.hits += 1
                self._pages.move_to_end(page_id)
                return page
            self.misses += 1
            if counters is not None:
                counters.page_reads += 1
        page = self._pager.read_page(page_id)
        with self._lock:
            cached = self._pages.get(page_id)
            if cached is not None:
                # Raced with another miss: keep the admitted copy so every
                # caller shares one Page object per page_id.
                return cached
            self._admit(page)  # vilint: disable=blocking-while-locked -- eviction write-back journals to the WAL (or memory); bounded work that must stay atomic with the LRU update
            return page

    def allocate(self) -> Page:
        """Allocate a fresh page and cache it."""
        with self._lock:
            page_id = self._pager.allocate_page()  # vilint: disable=blocking-while-locked -- eviction write-back journals to the WAL (or memory); bounded work that must stay atomic with the LRU update
            page = Page(page_id)
            self._admit(page)  # vilint: disable=blocking-while-locked -- eviction write-back journals to the WAL (or memory); bounded work that must stay atomic with the LRU update
            return page

    def _admit(self, page: Page) -> None:
        # Callers hold self._lock (fetch/allocate); the RLock makes the
        # invariant cheap to keep even if _admit gains other callers.
        page.owner = self
        if self._capacity == 0:
            # Cache disabled: the page is immediately "evicted", so any
            # later mark_dirty() on it writes through via the owner hook.
            page.evicted = True
            if page.dirty:
                self._pager.write_page(page)  # vilint: disable=blocking-while-locked -- eviction write-back journals to the WAL (or memory); bounded work that must stay atomic with the LRU update
            return
        page.evicted = False
        self._pages[page.page_id] = page
        self._pages.move_to_end(page.page_id)
        while len(self._pages) > self._capacity:
            _, evicted = self._pages.popitem(last=False)
            if evicted.dirty:
                self._pager.write_page(evicted)  # vilint: disable=blocking-while-locked -- eviction write-back journals to the WAL (or memory); bounded work that must stay atomic with the LRU update
            evicted.evicted = True

    def write_through(self, page: Page) -> None:
        """Persist a page immediately (used by capacity-0 pools and tests)."""
        self._pager.write_page(page)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Write back every dirty cached page (pages stay cached)."""
        with self._lock:
            for page in self._pages.values():
                if page.dirty:
                    self._pager.write_page(page)  # vilint: disable=blocking-while-locked -- eviction write-back journals to the WAL (or memory); bounded work that must stay atomic with the LRU update

    def clear(self) -> None:
        """Flush then drop the whole cache (cold-start a benchmark run)."""
        with self._lock:
            self.flush()  # vilint: disable=blocking-while-locked -- eviction write-back journals to the WAL (or memory); bounded work that must stay atomic with the LRU update
            for page in self._pages.values():
                page.evicted = True
            self._pages.clear()

    def reset_counters(self) -> None:
        """Zero the logical-access counters (physical counters live on the
        pager)."""
        with self._lock:
            self.requests = 0
            self.hits = 0
            self.misses = 0

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"BufferPool(capacity={self._capacity}, "
                f"cached={len(self._pages)}, "
                f"requests={self.requests}, hits={self.hits})"
            )
