"""The page unit.

The paper's experiments use a 4 KiB page size; all storage structures here
are laid out in :data:`PAGE_SIZE`-byte pages.  Since the crash-safety work,
the last :data:`CHECKSUM_SIZE` bytes of every on-disk page frame hold a
CRC32 of the preceding content, so the *usable* content of a page is
:data:`PAGE_CONTENT_SIZE` bytes — that is the size of :attr:`Page.data`
and the number every node/record layout budget must fit inside.  The
checksum is sealed into the frame by the pager on write and verified on
read (see :mod:`repro.storage.serialization`); access methods never see
it.

A :class:`Page` couples the raw content buffer with its page id and a
dirty flag the buffer pool uses to decide whether eviction must write
back.
"""

from __future__ import annotations

__all__ = ["CHECKSUM_SIZE", "PAGE_CONTENT_SIZE", "PAGE_SIZE", "Page"]

PAGE_SIZE = 4096
"""Size of every on-disk page frame in bytes (matches the paper's setup)."""

CHECKSUM_SIZE = 4
"""Bytes of each frame reserved for the CRC32 trailer."""

PAGE_CONTENT_SIZE = PAGE_SIZE - CHECKSUM_SIZE
"""Usable content bytes per page (the size of :attr:`Page.data`)."""


class Page:
    """A mutable page buffer plus bookkeeping.

    Attributes
    ----------
    page_id:
        Position of the page in its backing file.
    data:
        The page's :data:`PAGE_CONTENT_SIZE`-byte content buffer; mutate in
        place and call :meth:`mark_dirty` so the buffer pool writes it back
        on eviction.  The CRC32 trailer that completes the on-disk frame is
        managed by the pager and is not part of this buffer.
    dirty:
        Whether the in-memory buffer differs from the backing store.
    owner:
        The buffer pool that served this page (set by the pool).
    evicted:
        Set by the pool when the page leaves the cache.  A page object
        mutated *after* eviction would silently lose its changes, so
        :meth:`mark_dirty` on an evicted page writes through immediately —
        this is what makes tiny (even zero-capacity) pools safe for
        writers without a full pin/unpin protocol.
    """

    __slots__ = ("page_id", "data", "dirty", "owner", "evicted")

    def __init__(self, page_id: int, data: bytearray | None = None) -> None:
        if page_id < 0:
            raise ValueError(f"page_id must be non-negative, got {page_id}")
        if data is None:
            data = bytearray(PAGE_CONTENT_SIZE)
        if len(data) != PAGE_CONTENT_SIZE:
            raise ValueError(
                f"page data must be exactly {PAGE_CONTENT_SIZE} bytes, "
                f"got {len(data)}"
            )
        self.page_id = page_id
        self.data = bytearray(data)
        self.dirty = False
        self.owner = None
        self.evicted = False

    def mark_dirty(self) -> None:
        """Flag the page as modified so eviction writes it back.

        If the pool already evicted this object, the change is written
        through to the pager immediately (see :attr:`evicted`).
        """
        self.dirty = True
        if self.evicted and self.owner is not None:
            self.owner.write_through(self)

    def __repr__(self) -> str:
        state = "dirty" if self.dirty else "clean"
        return f"Page(id={self.page_id}, {state})"
