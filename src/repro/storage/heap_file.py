"""Fixed-size-record heap file.

Stores the full ViTri payloads.  B+-tree leaves keep only the 1-D key plus
a :class:`RecordId`; similarity evaluation follows the RecordId into this
heap, and each data page it touches is a counted page access — exactly the
I/O model of the paper's experiments.  The sequential-scan baseline is a
:meth:`HeapFile.scan` over every data page.

Layout
------
Page 0 is a metadata page: ``magic u32 | record_size u32 | num_records u64``.
Every subsequent page holds ``(PAGE_CONTENT_SIZE - 2) // record_size`` record
slots behind a ``u16`` slot-count header.  Records are append-only (the
paper's workload never deletes ViTris; videos are only added).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator

from repro.storage.buffer_pool import BufferPool
from repro.storage.page import PAGE_CONTENT_SIZE
from repro.utils.counters import CostCounters

__all__ = ["HeapFile", "RecordId"]

_META = struct.Struct("<IIQ")
_MAGIC = 0x56695472  # "ViTr"
_SLOT_COUNT = struct.Struct("<H")


@dataclass(frozen=True, order=True)
class RecordId:
    """Physical address of a record: (page, slot)."""

    page_id: int
    slot: int


class HeapFile:
    """Append-only heap of fixed-size records over a buffer pool.

    Parameters
    ----------
    buffer_pool:
        Buffer pool over a pager dedicated to this heap (the heap assumes
        it owns every page of the underlying pager).
    record_size:
        Size of each record in bytes; must fit in a page behind the 2-byte
        slot-count header.

    Use :meth:`create` for a fresh file and :meth:`open` to re-attach to an
    existing one.
    """

    def __init__(
        self, buffer_pool: BufferPool, record_size: int, *, _opened: bool = False
    ) -> None:
        if not _opened:
            raise RuntimeError(
                "use HeapFile.create(...) or HeapFile.open(...) instead of "
                "constructing HeapFile directly"
            )
        self._pool = buffer_pool
        self._record_size = record_size
        self._slots_per_page = (PAGE_CONTENT_SIZE - _SLOT_COUNT.size) // record_size
        self._num_records = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, buffer_pool: BufferPool, record_size: int) -> "HeapFile":
        """Initialise a new heap file on an empty pager."""
        if not isinstance(record_size, int) or isinstance(record_size, bool):
            raise TypeError("record_size must be an int")
        if record_size < 1 or record_size > PAGE_CONTENT_SIZE - _SLOT_COUNT.size:
            raise ValueError(
                f"record_size must be in "
                f"[1, {PAGE_CONTENT_SIZE - _SLOT_COUNT.size}], got {record_size}"
            )
        if buffer_pool.pager.num_pages != 0:
            raise ValueError("HeapFile.create requires an empty pager")
        heap = cls(buffer_pool, record_size, _opened=True)
        meta = buffer_pool.allocate()
        _META.pack_into(meta.data, 0, _MAGIC, record_size, 0)
        meta.mark_dirty()
        heap._persist_meta()
        return heap

    @classmethod
    def open(cls, buffer_pool: BufferPool) -> "HeapFile":
        """Attach to an existing heap file."""
        if buffer_pool.pager.num_pages == 0:
            raise ValueError("pager holds no pages; use HeapFile.create")
        meta = buffer_pool.fetch(0)
        magic, record_size, num_records = _META.unpack_from(meta.data, 0)
        if magic != _MAGIC:
            raise ValueError("page 0 is not a heap-file metadata page")
        heap = cls(buffer_pool, record_size, _opened=True)
        heap._num_records = num_records
        return heap

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def record_size(self) -> int:
        """Size of each record in bytes."""
        return self._record_size

    @property
    def slots_per_page(self) -> int:
        """Number of record slots per data page."""
        return self._slots_per_page

    @property
    def num_records(self) -> int:
        """Total number of records appended so far."""
        return self._num_records

    @property
    def num_data_pages(self) -> int:
        """Number of data pages (excludes the metadata page)."""
        if self._num_records == 0:
            return 0
        return (self._num_records + self._slots_per_page - 1) // self._slots_per_page

    @property
    def buffer_pool(self) -> BufferPool:
        """The buffer pool all accesses flow through."""
        return self._pool

    # ------------------------------------------------------------------
    # Record operations
    # ------------------------------------------------------------------
    def append(self, payload: bytes) -> RecordId:
        """Append one record; returns its physical address."""
        if len(payload) != self._record_size:
            raise ValueError(
                f"payload must be {self._record_size} bytes, got {len(payload)}"
            )
        slot = self._num_records % self._slots_per_page
        if slot == 0:
            page = self._pool.allocate()
        else:
            page = self._pool.fetch(self._page_id_for(self._num_records))
        offset = _SLOT_COUNT.size + slot * self._record_size
        page.data[offset : offset + self._record_size] = payload
        _SLOT_COUNT.pack_into(page.data, 0, slot + 1)
        page.mark_dirty()
        self._num_records += 1
        self._persist_meta()
        return RecordId(page_id=page.page_id, slot=slot)

    def read(
        self, record_id: RecordId, *, counters: CostCounters | None = None
    ) -> bytes:
        """Read one record by physical address."""
        self._check_record_id(record_id)
        page = self._pool.fetch(record_id.page_id, counters)
        offset = _SLOT_COUNT.size + record_id.slot * self._record_size
        return bytes(page.data[offset : offset + self._record_size])

    def overwrite(self, record_id: RecordId, payload: bytes) -> None:
        """Replace one record in place (e.g. with a tombstone marker)."""
        self._check_record_id(record_id)
        if len(payload) != self._record_size:
            raise ValueError(
                f"payload must be {self._record_size} bytes, got {len(payload)}"
            )
        page = self._pool.fetch(record_id.page_id)
        offset = _SLOT_COUNT.size + record_id.slot * self._record_size
        page.data[offset : offset + self._record_size] = payload
        page.mark_dirty()

    def read_batch(
        self,
        record_ids: list[RecordId],
        *,
        counters: CostCounters | None = None,
    ) -> list[bytes]:
        """Read many records, fetching each distinct page only once.

        This is how an access method amortises I/O over a candidate set: a
        page holding several requested records costs a single page access
        per batch.  Results are returned in the order of *record_ids*.
        """
        for record_id in record_ids:
            self._check_record_id(record_id)
        pages: dict[int, bytearray] = {}
        for page_id in sorted({rid.page_id for rid in record_ids}):
            pages[page_id] = self._pool.fetch(page_id, counters).data
        results: list[bytes] = []
        for record_id in record_ids:
            offset = _SLOT_COUNT.size + record_id.slot * self._record_size
            data = pages[record_id.page_id]
            results.append(bytes(data[offset : offset + self._record_size]))
        return results

    def scan(
        self, *, counters: CostCounters | None = None
    ) -> Iterator[tuple[RecordId, bytes]]:
        """Yield every record in physical order (the seq-scan baseline).

        Pass a per-query ``counters`` bundle to attribute the scan's page
        accesses to that query.
        """
        remaining = self._num_records
        for page_index in range(self.num_data_pages):
            page_id = 1 + page_index
            page = self._pool.fetch(page_id, counters)
            (used,) = _SLOT_COUNT.unpack_from(page.data, 0)
            for slot in range(min(used, remaining)):
                offset = _SLOT_COUNT.size + slot * self._record_size
                payload = bytes(page.data[offset : offset + self._record_size])
                yield RecordId(page_id=page_id, slot=slot), payload
            remaining -= used

    def scan_batches(
        self, *, counters: CostCounters | None = None
    ) -> Iterator[tuple[int, int, bytes]]:
        """Yield per-page record blocks ``(page_id, used, raw_bytes)``.

        The page-batched counterpart of :meth:`scan`: each yielded block
        is the page's records region (``used * record_size`` bytes,
        copied out of the pool so the caller may hold it past eviction),
        ready for a one-view columnar decode
        (:meth:`~repro.storage.serialization.ViTriRecordCodec.
        decode_columns`).  Page accesses are charged at fetch time and
        ``records_scanned`` is charged per logical record, so the cost
        signature matches a per-record scan over the same heap.
        """
        remaining = self._num_records
        for page_index in range(self.num_data_pages):
            page_id = 1 + page_index
            page = self._pool.fetch(page_id, counters)
            (used,) = _SLOT_COUNT.unpack_from(page.data, 0)
            used = min(used, remaining)
            block = bytes(
                page.data[
                    _SLOT_COUNT.size : _SLOT_COUNT.size
                    + used * self._record_size
                ]
            )
            if counters is not None:
                counters.records_scanned += used
            yield page_id, used, block
            remaining -= used

    def flush(self) -> None:
        """Flush dirty pages down to the pager."""
        self._pool.flush()

    def verify(self) -> list[str]:
        """Check the heap's structural invariants; return violations.

        Validates the metadata page (magic, record size, page count implied
        by ``num_records``) and every data page's slot-count header: each
        full page must hold exactly ``slots_per_page`` records, the last
        page exactly the remainder.  Returns a list of human-readable
        violation strings, empty when the heap is consistent.
        """
        violations: list[str] = []
        meta = self._pool.fetch(0)
        magic, record_size, num_records = _META.unpack_from(meta.data, 0)
        if magic != _MAGIC:
            violations.append(f"meta page magic {magic:#010x} != {_MAGIC:#010x}")
        if record_size != self._record_size:
            violations.append(
                f"meta record_size {record_size} != expected {self._record_size}"
            )
        if num_records != self._num_records:
            violations.append(
                f"meta num_records {num_records} != in-memory {self._num_records}"
            )
        expected_pages = 1 + self.num_data_pages
        if self._pool.pager.num_pages < expected_pages:
            violations.append(
                f"pager holds {self._pool.pager.num_pages} pages, "
                f"{self._num_records} records need {expected_pages}"
            )
            return violations
        total = 0
        for page_index in range(self.num_data_pages):
            page_id = 1 + page_index
            (used,) = _SLOT_COUNT.unpack_from(self._pool.fetch(page_id).data, 0)
            is_last = page_index == self.num_data_pages - 1
            expected = (
                self._num_records - page_index * self._slots_per_page
                if is_last
                else self._slots_per_page
            )
            if used != expected:
                violations.append(
                    f"data page {page_id} slot count {used} != expected {expected}"
                )
            total += used
        if total != self._num_records:
            violations.append(
                f"slot counts sum to {total}, meta says {self._num_records}"
            )
        return violations

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _page_id_for(self, record_index: int) -> int:
        return 1 + record_index // self._slots_per_page

    def _check_record_id(self, record_id: RecordId) -> None:
        if not isinstance(record_id, RecordId):
            raise TypeError("record_id must be a RecordId")
        if record_id.page_id < 1 or record_id.page_id > self.num_data_pages:
            raise ValueError(f"record page {record_id.page_id} out of range")
        if record_id.slot < 0 or record_id.slot >= self._slots_per_page:
            raise ValueError(f"record slot {record_id.slot} out of range")

    def _persist_meta(self) -> None:
        meta = self._pool.fetch(0)
        _META.pack_into(meta.data, 0, _MAGIC, self._record_size, self._num_records)
        meta.mark_dirty()

    def __len__(self) -> int:
        return self._num_records

    def __repr__(self) -> str:
        return (
            f"HeapFile(records={self._num_records}, "
            f"record_size={self._record_size}, pages={self.num_data_pages})"
        )
