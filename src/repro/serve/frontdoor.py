"""The fleet's front door: admission, shedding, drain, restart.

:class:`FrontDoor` sits between clients and a
:class:`~repro.shard.router.ShardedVideoDatabase` (usually one built
with :meth:`~repro.shard.router.ShardedVideoDatabase.from_shards` over
:class:`~repro.serve.transport.RemoteShard` proxies) and decides, for
every query, *whether it runs at all* before any work is spent on it:

1. **Draining?**  A front door that has begun shutting down sheds with
   :class:`~repro.serve.protocol.ServiceDraining`.
2. **Rate limit.**  Each client name owns a :class:`TokenBucket`; an
   empty bucket sheds with :class:`~repro.serve.protocol.RateLimited`.
3. **Queue depth.**  Admission is a ``put_nowait`` into a bounded
   queue; a full queue sheds with
   :class:`~repro.serve.protocol.ServiceOverloaded`.

Shedding is *cheap by construction*: all three checks happen before the
query touches the router, so an overload burst costs the service a few
dictionary operations per rejected query instead of a scatter.  Admitted
queries are served by a small worker pool through the router's
*resilient* path (``fail_fast=False``), so a shard mid-restart degrades
the answer instead of erroring it.

:class:`NetworkFleet` is the composition root: it reads a durable
fleet's ``shards.json`` manifest, stands up one
:class:`~repro.serve.shard_server.ShardServer` per shard (in-process
threads or real subprocesses), wires :class:`RemoteShard` proxies into a
read-only router, and mounts a :class:`FrontDoor` on top.  Its
:meth:`~NetworkFleet.restart_shard` drains one shard server under live
traffic and reconnects its proxy to the replacement — the availability
story ``BENCH_service.json`` measures.

:class:`FrontDoorServer` exposes a front door over TCP with the same
framing the shard servers speak (``repro-video serve`` runs one).
"""

from __future__ import annotations

import asyncio
import json
import os
import queue
import subprocess
import threading
from concurrent.futures import Future

from repro.serve.protocol import (
    FRAME_ERROR,
    FRAME_HEADER_BYTES,
    FRAME_REQUEST,
    FRAME_RESPONSE,
    ProtocolError,
    RateLimited,
    ServiceDraining,
    ServiceOverloaded,
    decode_frame_header,
    decode_request,
    encode_error,
    encode_frame,
    encode_response,
    stats_to_wire,
)
from repro.replication import ReplicaSet, ReplicaShard
from repro.serve.shard_server import ShardServer, ShardServerHandle
from repro.serve.transport import RemoteShard
from repro.shard.router import ShardedKNNResult, ShardedVideoDatabase
from repro.shard.shard import Shard
from repro.utils.clock import Clock, SystemClock
from repro.utils.locks import make_lock
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["FrontDoor", "FrontDoorServer", "NetworkFleet", "TokenBucket"]


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    Refill is computed lazily from the injected clock at each
    :meth:`try_acquire`, so there is no background thread and a
    :class:`~repro.utils.clock.VirtualClock` drives it deterministically
    in tests.  The clock is read *before* the bucket's lock is taken;
    since a ``VirtualClock``'s offsets are thread-local, another
    thread's sleeps can make consecutive readings non-monotonic across
    threads — a reading older than the last refill stamp simply adds no
    tokens (time never runs backwards inside the bucket).
    """

    def __init__(
        self, rate: float, burst: float, *, clock: Clock | None = None
    ) -> None:
        self._rate = check_positive(rate, "rate")
        self._burst = check_positive(burst, "burst")
        self._clock = clock if clock is not None else SystemClock()
        self._lock = make_lock("TokenBucket._lock")
        self._tokens = float(burst)
        self._stamp = self._clock.now()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        now = self._clock.now()
        with self._lock:
            if now > self._stamp:
                self._tokens = min(
                    self._burst,
                    self._tokens + (now - self._stamp) * self._rate,
                )
                self._stamp = now
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"TokenBucket(rate={self._rate}, burst={self._burst}, "
                f"tokens={self._tokens:.3f})"
            )


class FrontDoor:
    """Bounded admission in front of a sharded router.

    Parameters
    ----------
    router:
        The (usually read-only) :class:`ShardedVideoDatabase` to serve.
    max_queue:
        Admission queue depth; queries beyond it shed with
        :class:`ServiceOverloaded` instead of piling up latency.
    workers:
        Serving threads draining the queue.  Each admitted query still
        fans out across all relevant shards inside the router.
    rate, burst:
        Per-client token bucket (tokens/second and capacity).  ``None``
        disables rate limiting; ``burst`` defaults to ``rate``.
    bucket_ttl:
        Seconds of idleness after which a client's bucket is evicted
        (the per-client map is otherwise unbounded: every distinct
        client name would pin a bucket forever).  Keep it at or above
        ``burst / rate`` — an idle bucket refills to full burst within
        that window anyway, so eviction never grants tokens a live
        bucket would still be withholding.  ``None`` disables eviction.
    fault_policy:
        Forwarded to every query (``None`` means the router's default
        :class:`~repro.shard.resilience.FaultPolicy`); queries always
        run with ``fail_fast=False`` so a sick shard degrades coverage
        rather than failing the query.
    clock:
        Drives the token buckets; tests inject a
        :class:`~repro.utils.clock.VirtualClock`.
    drain_timeout:
        Per-thread join budget during :meth:`drain`.
    """

    def __init__(
        self,
        router: ShardedVideoDatabase,
        *,
        max_queue: int = 32,
        workers: int = 2,
        rate: float | None = None,
        burst: float | None = None,
        bucket_ttl: float | None = 300.0,
        fault_policy=None,
        clock: Clock | None = None,
        drain_timeout: float = 5.0,
    ) -> None:
        check_positive_int(max_queue, "max_queue")
        check_positive_int(workers, "workers")
        if bucket_ttl is not None:
            check_positive(bucket_ttl, "bucket_ttl")
        self._router = router
        self._policy = fault_policy
        self._clock = clock if clock is not None else SystemClock()
        self._rate = float(rate) if rate is not None else None
        if self._rate is not None:
            self._burst = float(burst) if burst is not None else self._rate
        else:
            self._burst = None
        self._bucket_ttl = bucket_ttl
        self._max_queue = max_queue
        self._drain_timeout = drain_timeout
        # Guards the admission state: the draining flag, the per-client
        # buckets, and the stats tallies.  Never held across any
        # blocking call — admission is put_nowait, shedding is a
        # counter bump.
        self._lock = make_lock("FrontDoor._lock")
        self._queue: queue.Queue = queue.Queue(maxsize=max_queue)
        self._buckets: dict[str, TokenBucket] = {}
        self._bucket_seen: dict[str, float] = {}
        self._last_sweep = self._clock.now()
        self._draining = False
        self._stats = {
            "admitted": 0,
            "completed": 0,
            "failed": 0,
            "shed_overload": 0,
            "shed_rate_limited": 0,
            "shed_draining": 0,
        }
        self._ingest = None
        self._threads = [
            threading.Thread(
                target=self._worker,
                name=f"frontdoor-worker-{position}",
                daemon=True,
            )
            for position in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    def attach_ingest(self, pipeline) -> None:
        """Tie an ingest pipeline's lifecycle to this front door's.

        ``pipeline`` is duck-typed (``drain()``); in practice an
        :class:`repro.ingest.pipeline.IngestPipeline` feeding the same
        router this door serves.  On :meth:`drain` the ingest side
        drains *first* — refusing new writes and committing everything
        already admitted — so the final queries observe every write the
        system acknowledged, and nothing admitted is left volatile when
        the process exits.
        """
        if not hasattr(pipeline, "drain"):
            raise TypeError("pipeline must expose drain()")
        self._ingest = pipeline

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(
        self,
        query,
        k: int,
        *,
        client: str = "default",
        method: str = "composed",
        prune: bool = True,
        cold: bool = False,
    ) -> Future:
        """Admit one query (or shed it, typed) and return its future.

        The returned :class:`~concurrent.futures.Future` resolves to the
        router's :class:`~repro.shard.router.ShardedKNNResult`.  Shed
        queries never enter the queue: this method raises
        :class:`ServiceDraining`, :class:`RateLimited` or
        :class:`ServiceOverloaded` *synchronously*.
        """
        with self._lock:
            if self._draining:
                self._stats["shed_draining"] += 1
                raise ServiceDraining(
                    "front door is draining; not admitting queries"
                )
            bucket = None
            if self._rate is not None:
                now = self._clock.now()
                self._sweep_buckets(now)
                bucket = self._buckets.get(client)
                if bucket is None:
                    bucket = TokenBucket(
                        self._rate, self._burst, clock=self._clock
                    )
                    self._buckets[client] = bucket
                self._bucket_seen[client] = now
        if bucket is not None and not bucket.try_acquire():
            with self._lock:
                self._stats["shed_rate_limited"] += 1
            raise RateLimited(
                f"client {client!r} exceeded {self._rate} queries/second"
            )
        future: Future = Future()
        try:
            self._queue.put_nowait((future, query, k, method, prune, cold))
        except queue.Full:
            with self._lock:
                self._stats["shed_overload"] += 1
            raise ServiceOverloaded(
                f"admission queue is full ({self._max_queue} deep)"
            ) from None
        with self._lock:
            self._stats["admitted"] += 1
        return future

    def query_sync(
        self, query, k: int, *, timeout: float | None = None, **kwargs
    ) -> ShardedKNNResult:
        """Admit and wait: :meth:`submit` plus ``Future.result()``."""
        return self.submit(query, k, **kwargs).result(timeout)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            future, query, k, method, prune, cold = item
            if not future.set_running_or_notify_cancel():
                continue
            try:
                result = self._router.knn(
                    query,
                    k,
                    method=method,
                    prune=prune,
                    cold=cold,
                    fault_policy=self._policy,
                    fail_fast=False,
                )
            except BaseException as exc:
                future.set_exception(exc)
                self._bump("failed")
            else:
                future.set_result(result)
                self._bump("completed")

    def _bump(self, key: str) -> None:
        with self._lock:
            self._stats[key] += 1

    def _sweep_buckets(self, now: float) -> None:
        """Evict buckets idle past the TTL (caller holds ``_lock``).

        Runs at most once per TTL window, so a burst of submits pays
        one dictionary scan per window, not per query.  Clients seen
        within the window keep their bucket (and its debt); the rest
        are forgotten — by the TTL contract their buckets would have
        refilled to full burst by now anyway.
        """
        ttl = self._bucket_ttl
        if ttl is None or now - self._last_sweep < ttl:
            return
        self._last_sweep = now
        stale = [
            client
            for client, seen in self._bucket_seen.items()
            if now - seen >= ttl
        ]
        for client in stale:
            del self._buckets[client]
            del self._bucket_seen[client]

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Admission and outcome tallies plus the live queue depth."""
        with self._lock:
            snapshot = dict(self._stats)
            snapshot["rate_limit_clients"] = len(self._buckets)
        snapshot["queue_depth"] = self._queue.qsize()
        return snapshot

    def drain(self) -> None:
        """Stop admitting, finish the queue, stop the workers.

        Queued-but-unserved work left behind by a worker that missed its
        join budget gets :class:`ServiceDraining` set on its future, so
        no caller ever blocks on a future nobody will complete.
        Idempotent.
        """
        with self._lock:
            if self._draining:
                return
            self._draining = True
        if self._ingest is not None:
            # Writes drain before reads stop: the attached ingest
            # pipeline refuses new work and commits its queue, so the
            # last served queries see every acknowledged write.
            self._ingest.drain()
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(self._drain_timeout)
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not None:
                item[0].set_exception(
                    ServiceDraining(
                        "front door drained before this query ran"
                    )
                )

    def __enter__(self) -> "FrontDoor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.drain()

    def __repr__(self) -> str:
        return (
            f"FrontDoor(queue={self._queue.qsize()}/{self._max_queue}, "
            f"workers={len(self._threads)})"
        )


class NetworkFleet:
    """A durable fleet stood up as a network service, end to end.

    Reads ``path``'s ``shards.json`` manifest (written by a durable
    :class:`~repro.shard.router.ShardedVideoDatabase`), serves every
    shard directory behind its own :class:`ShardServer`, and mounts a
    :class:`FrontDoor` over a read-only router of
    :class:`RemoteShard` proxies.

    Parameters
    ----------
    path:
        The fleet directory (must contain ``shards.json``).
    mode:
        ``"thread"`` — each shard server runs on a daemon thread in
        this process (fast, deterministic with an injected clock).
        ``"subprocess"`` — each shard server is a real
        ``python -m repro.serve.shard_server`` child process.
    clock:
        Shared by the router, the front door's buckets and (thread
        mode) every shard server.  Subprocess servers build their own
        clock — see ``subprocess_clock`` and :mod:`repro.utils.clock`.
    subprocess_clock:
        ``"system"`` or ``"virtual"``, forwarded to spawned servers.
    replicas_per_shard:
        Read replicas behind each shard endpoint (thread mode only).
        Each shard server then fronts a
        :class:`~repro.replication.group.ReplicaSet`: the primary plus
        ``N`` :class:`~repro.replication.replica.ReplicaShard` copies
        bootstrapped from the primary's checkpoint snapshot into
        sibling ``<shard-dir>-replica<i>`` directories, with reads
        load-balanced across the synced copies.
    range_cache_size:
        Range-block cache tier per served copy (see
        :class:`~repro.core.range_cache.RangeCache`; 0 disables).
    max_queue, workers, rate, burst, bucket_ttl, fault_policy,
    drain_timeout:
        Front-door knobs, forwarded verbatim.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        mode: str = "thread",
        clock: Clock | None = None,
        cache_size: int = 128,
        buffer_capacity: int = 256,
        replicas_per_shard: int = 0,
        range_cache_size: int = 0,
        max_queue: int = 32,
        workers: int = 2,
        rate: float | None = None,
        burst: float | None = None,
        bucket_ttl: float | None = 300.0,
        fault_policy=None,
        drain_timeout: float = 5.0,
        subprocess_clock: str = "system",
    ) -> None:
        if mode not in ("thread", "subprocess"):
            raise ValueError(
                f"mode must be 'thread' or 'subprocess', got {mode!r}"
            )
        if replicas_per_shard < 0:
            raise ValueError("replicas_per_shard must be >= 0")
        if replicas_per_shard and mode != "thread":
            raise ValueError(
                "replicas_per_shard requires mode='thread' (subprocess "
                "servers own their shard directory exclusively)"
            )
        self._path = os.fspath(path)
        manifest_path = os.path.join(self._path, "shards.json")
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        self._epsilon = float(manifest["epsilon"])
        self._reference = str(manifest.get("reference", "optimal"))
        self._seed = int(manifest.get("summarize_seed", 0))
        self._mode = mode
        self._clock = clock if clock is not None else SystemClock()
        self._cache_size = cache_size
        self._buffer_capacity = buffer_capacity
        self._replicas_per_shard = replicas_per_shard
        self._range_cache_size = range_cache_size
        self._drain_timeout = drain_timeout
        self._subprocess_clock = subprocess_clock
        self._closed = False
        self._shard_dirs = [
            os.path.join(self._path, name) for name in manifest["shards"]
        ]
        self._servers: dict[int, object] = {}
        self._remotes: list[RemoteShard] = []
        for position, shard_dir in enumerate(self._shard_dirs):
            host, port = self._start_server(position, shard_dir)
            self._remotes.append(RemoteShard(position, host, port))
        self._router = ShardedVideoDatabase.from_shards(
            list(self._remotes), epsilon=self._epsilon, clock=self._clock
        )
        self._frontdoor = FrontDoor(
            self._router,
            max_queue=max_queue,
            workers=workers,
            rate=rate,
            burst=burst,
            bucket_ttl=bucket_ttl,
            fault_policy=fault_policy,
            clock=self._clock,
            drain_timeout=drain_timeout,
        )

    def _start_server(self, position: int, shard_dir: str) -> tuple[str, int]:
        """Stand up one shard server and record its handle."""
        if self._mode == "thread":
            shard = Shard(
                position,
                epsilon=self._epsilon,
                reference=self._reference,
                summarize_seed=self._seed,
                path=shard_dir,
                buffer_capacity=self._buffer_capacity,
                cache_size=self._cache_size,
                range_cache_size=self._range_cache_size,
            )
            endpoint = (
                self._replicate(shard, shard_dir)
                if self._replicas_per_shard
                else shard
            )
            server = ShardServer(endpoint, clock=self._clock)
            host, port = server.run_in_thread()
            self._servers[position] = server
            return host, port
        handle = ShardServerHandle.spawn(
            shard_dir,
            position,
            epsilon=self._epsilon,
            cache_size=self._cache_size,
            buffer_capacity=self._buffer_capacity,
            range_cache_size=self._range_cache_size,
            clock=self._subprocess_clock,
        )
        self._servers[position] = handle
        return handle.host, handle.port

    def _replicate(self, primary: Shard, shard_dir: str) -> ReplicaSet:
        """Wrap one primary in a replica group with bootstrapped copies.

        Replica directories sit next to the shard's
        (``<shard-dir>-replica<i>``), so the manifest's directories stay
        byte-owned by their primaries and a re-bootstrap can wipe a
        replica's directory without touching durable state.
        """
        group = ReplicaSet(primary, clock=self._clock)
        for index in range(self._replicas_per_shard):
            group.attach_replica(
                ReplicaShard(
                    primary.shard_id,
                    f"{shard_dir}-replica{index}",
                    epsilon=self._epsilon,
                    clock=self._clock,
                    buffer_capacity=self._buffer_capacity,
                    cache_size=self._cache_size,
                    range_cache_size=self._range_cache_size,
                )
            )
        return group

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def router(self) -> ShardedVideoDatabase:
        """The read-only router over the remote proxies."""
        return self._router

    @property
    def frontdoor(self) -> FrontDoor:
        """The admission layer clients should go through."""
        return self._frontdoor

    @property
    def num_shards(self) -> int:
        """Fleet size (one server per shard directory)."""
        return len(self._shard_dirs)

    @property
    def epsilon(self) -> float:
        """The fleet's frame similarity threshold (from the manifest)."""
        return self._epsilon

    def status(self) -> dict:
        """Front-door stats plus each live shard server's status."""
        shards = {}
        for remote in self._remotes:
            try:
                shards[remote.shard_id] = remote.status()
            except (OSError, ConnectionError) as exc:
                shards[remote.shard_id] = {"error": str(exc)}
        return {"frontdoor": self._frontdoor.stats(), "shards": shards}

    # ------------------------------------------------------------------
    # Serving / lifecycle
    # ------------------------------------------------------------------
    def submit(self, query, k: int, **kwargs) -> Future:
        """Admit one query through the front door."""
        return self._frontdoor.submit(query, k, **kwargs)

    def query_sync(self, query, k: int, **kwargs) -> ShardedKNNResult:
        """Admit one query and wait for its result."""
        return self._frontdoor.query_sync(query, k, **kwargs)

    def restart_shard(
        self, shard_id: int, *, timeout: float | None = None
    ) -> tuple[str, int]:
        """Drain one shard server and bring up its replacement.

        The drain checkpoints the shard (close always does for durable
        shards), the replacement reopens the same directory, and the
        shard's :class:`RemoteShard` proxy reconnects to the new
        address.  Queries scattered to the shard meanwhile see
        :class:`ServiceDraining` / connection errors — both retryable —
        so front-door traffic degrades instead of failing.
        """
        wait = timeout if timeout is not None else self._drain_timeout
        server = self._servers[shard_id]
        if self._mode == "thread":
            server.drain()
            server.wait_closed(wait)
        else:
            try:
                server.drain(timeout=wait)
            except (OSError, ConnectionError):
                pass  # already gone; respawn regardless
            try:
                server.wait(wait)
            except subprocess.TimeoutExpired:
                server.kill()
        host, port = self._start_server(shard_id, self._shard_dirs[shard_id])
        self._remotes[shard_id].reconnect(host, port)
        return host, port

    def close(self) -> None:
        """Drain the front door, every shard server, then the router."""
        if self._closed:
            return
        self._closed = True
        self._frontdoor.drain()
        for server in self._servers.values():
            if self._mode == "thread":
                server.drain()
                server.wait_closed(self._drain_timeout)
            else:
                try:
                    server.drain(timeout=self._drain_timeout)
                except (OSError, ConnectionError):
                    pass
                try:
                    server.wait(self._drain_timeout)
                except subprocess.TimeoutExpired:
                    server.kill()
        self._router.close()

    def __enter__(self) -> "NetworkFleet":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"NetworkFleet(path={self._path!r}, mode={self._mode!r}, "
            f"shards={len(self._shard_dirs)})"
        )


def _result_to_wire(result: ShardedKNNResult) -> dict:
    """JSON body for one sharded result (scores survive exactly)."""
    body = {
        "videos": list(result.videos),
        "scores": list(result.scores),
        "stats": stats_to_wire(result.stats),
        "scatter": {
            "shards_total": result.scatter.shards_total,
            "shards_queried": list(result.scatter.shards_queried),
            "shards_pruned": list(result.scatter.shards_pruned),
        },
    }
    if result.coverage is not None:
        body["coverage"] = {
            "complete": result.coverage.complete,
            "shards_answered": list(result.coverage.shards_answered),
            "shards_pruned": list(result.coverage.shards_pruned),
            "shards_failed": list(result.coverage.shards_failed),
            "shards_timed_out": list(result.coverage.shards_timed_out),
            "shards_tripped": list(result.coverage.shards_tripped),
        }
    return body


async def _send(
    writer: asyncio.StreamWriter, frame_type: int, payload: bytes
) -> None:
    try:
        writer.write(encode_frame(frame_type, payload))
        await writer.drain()
    except (ConnectionError, OSError):
        pass  # the peer vanished; nothing to report to


class FrontDoorServer:
    """The front door over TCP, speaking the shard-server framing.

    Ops: ``ping``, ``status`` (front-door stats) and ``knn`` (params
    ``k``, ``method``, ``prune``, ``client``; the query summary rides
    as the request's binary blob).  Admission errors come back as the
    same typed error frames a shard server sends, so one client codec
    serves both layers.
    """

    def __init__(
        self,
        frontdoor: FrontDoor,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._frontdoor = frontdoor
        self._host = host
        self._port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._ready = threading.Event()
        self._done = threading.Event()
        self._thread: threading.Thread | None = None
        self._address: tuple[str, int] | None = None
        self._tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound; valid once ready."""
        if self._address is None:
            raise RuntimeError("server is not bound yet")
        return self._address

    async def serve(self, *, on_ready=None) -> None:
        """Bind and serve until :meth:`stop` is called."""
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(
            self._handle, self._host, self._port
        )
        try:
            sockname = server.sockets[0].getsockname()
            self._address = (sockname[0], sockname[1])
            self._ready.set()
            if on_ready is not None:
                on_ready(self._address)
            await self._stop_event.wait()
            server.close()
            await server.wait_closed()
            # Closing the listener stops new connections; wake parked
            # handlers with EOF and wait for them to exit on their own
            # (cancelling instead would make asyncio.streams log the
            # cancellation on 3.11).
            for writer in list(self._writers):
                writer.close()
            if self._tasks:
                await asyncio.wait(list(self._tasks), timeout=1.0)
        finally:
            self._done.set()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
        self._writers.add(writer)
        try:
            while True:
                try:
                    header = await reader.readexactly(FRAME_HEADER_BYTES)
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    return
                try:
                    frame_type, length = decode_frame_header(header)
                    if frame_type != FRAME_REQUEST:
                        raise ProtocolError(
                            f"expected a request frame, got type "
                            f"{frame_type:#x}"
                        )
                except ProtocolError as exc:
                    await _send(writer, FRAME_ERROR, encode_error(exc))
                    return
                try:
                    payload = await reader.readexactly(length)
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    return
                try:
                    op, params, summary = decode_request(payload)
                except ProtocolError as exc:
                    await _send(writer, FRAME_ERROR, encode_error(exc))
                    return
                try:
                    body = await self._execute(op, params, summary)
                except Exception as exc:  # typed errors cross the wire
                    await _send(writer, FRAME_ERROR, encode_error(exc))
                else:
                    await _send(writer, FRAME_RESPONSE, encode_response(body))
        finally:
            if task is not None:
                self._tasks.discard(task)
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _execute(self, op: str, params: dict, summary) -> dict:
        if op == "ping":
            return {"pong": True}
        if op == "status":
            return {"stats": self._frontdoor.stats()}
        if op == "knn":
            if summary is None:
                raise ValueError("op 'knn' requires a query summary")
            # submit() is non-blocking (sheds synchronously, typed);
            # only the admitted query's completion is awaited.
            future = self._frontdoor.submit(
                summary,
                int(params["k"]),
                client=str(params.get("client", "default")),
                method=str(params.get("method", "composed")),
                prune=bool(params.get("prune", True)),
            )
            result = await asyncio.wrap_future(future)
            return _result_to_wire(result)
        raise ValueError(f"unknown op {op!r}")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def run_in_thread(self, *, timeout: float = 10.0) -> tuple[str, int]:
        """Serve on a daemon thread; returns the bound ``(host, port)``."""
        if self._thread is not None:
            raise RuntimeError("server already running")
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self.serve()),
            name="frontdoor-server-loop",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("front-door server failed to bind in time")
        assert self._address is not None
        return self._address

    def stop(self) -> None:
        """Stop serving (from any thread)."""
        loop = self._loop
        event = self._stop_event
        if loop is None or event is None or self._done.is_set():
            return
        try:
            loop.call_soon_threadsafe(event.set)
        except RuntimeError:
            pass  # loop already closed: stopped

    def wait_closed(self, timeout: float | None = None) -> bool:
        """Block until the serve loop has fully shut down."""
        return self._done.wait(timeout)
