"""Network service layer over the sharded ViTri database.

The in-process :class:`~repro.shard.router.ShardedVideoDatabase` scatters
sub-queries to :class:`~repro.shard.shard.Shard` objects through direct
method calls.  This package stands the same fleet up as a network
service without changing any ranking:

* :mod:`repro.serve.protocol` — the length-prefixed binary framing, the
  bit-exact :class:`~repro.core.vitri.VideoSummary` codec, and the typed
  error mapping every other module speaks.
* :mod:`repro.serve.shard_server` — one asyncio TCP server per shard
  (in-process thread or real subprocess) executing sub-queries on a
  single worker thread with budget-aware deadlines.
* :mod:`repro.serve.transport` — :class:`~repro.serve.transport.RemoteShard`,
  a shard proxy speaking the protocol; it plugs straight into the
  router's scatter seam via
  :meth:`~repro.shard.router.ShardedVideoDatabase.from_shards`.
* :mod:`repro.serve.frontdoor` — the serving loop: bounded admission
  queue, per-client token buckets, typed load shedding, graceful drain,
  and :class:`~repro.serve.frontdoor.NetworkFleet`, which spawns a
  server per shard and restarts one under live traffic.

Because every shard computes its sub-query with the same engine code and
scores travel as JSON floats (Python's ``repr`` shortest round-trip is
exact), rankings through the network path are bit-identical to the
in-process router's.
"""

from __future__ import annotations

from repro.serve.frontdoor import (
    FrontDoor,
    FrontDoorServer,
    NetworkFleet,
    TokenBucket,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    ProtocolError,
    RateLimited,
    RemoteShardError,
    ServiceDraining,
    ServiceOverloaded,
)
from repro.serve.shard_server import ShardServer, ShardServerHandle
from repro.serve.transport import RemoteShard, RemoteShardClient

__all__ = [
    "MAX_FRAME_BYTES",
    "FrameDecoder",
    "FrontDoor",
    "FrontDoorServer",
    "NetworkFleet",
    "ProtocolError",
    "RateLimited",
    "RemoteShard",
    "RemoteShardClient",
    "RemoteShardError",
    "ServiceDraining",
    "ServiceOverloaded",
    "ShardServer",
    "ShardServerHandle",
    "TokenBucket",
]
