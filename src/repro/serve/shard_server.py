"""One TCP server per shard: sub-queries over the wire, deadlines intact.

:class:`ShardServer` wraps one :class:`~repro.shard.shard.Shard` (or a
:class:`~repro.shard.faults.FaultInjectingShard` proxy) behind an
asyncio TCP listener speaking :mod:`repro.serve.protocol`.  Three
properties carry over from the in-process path:

* **Determinism** — every query executes on a *single* worker thread
  (``ThreadPoolExecutor(max_workers=1)``), so a shard's op order is its
  request order and fault schedules keyed by op count replay exactly.
  The same thread is where each request's
  :class:`~repro.utils.clock.Deadline` is constructed: under a
  :class:`~repro.utils.clock.VirtualClock` the clock's offsets are
  thread-local, so building the deadline anywhere else would race the
  sleeps the worker performs (this is the seam
  :mod:`repro.utils.clock` documents).
* **Budget awareness** — a request carries its remaining budget in
  seconds; the worker rebuilds the deadline against the *server's*
  clock and the shard refuses to start work whose budget is spent,
  exactly like the in-process attempt loop.
* **Robustness** — framing is validated before any payload allocation;
  a corrupt header, oversized length prefix or mid-frame disconnect
  costs one connection, never the server.

Draining (the ``drain`` op, :meth:`ShardServer.drain`, or
:meth:`ShardServerHandle.drain` over the network) stops the listener,
lets in-flight requests finish, answers later requests on open
connections with :class:`~repro.serve.protocol.ServiceDraining`, closes
the shard (checkpointing it when durable) and exits — the graceful half
of the front door's restart-under-traffic path.

Run as a module (``python -m repro.serve.shard_server --shard-dir ...``)
this serves one durable shard directory as a subprocess and prints a
single JSON ready-line with the bound port; :class:`ShardServerHandle`
wraps that contract.  Clock and fault-injection state never cross the
process boundary: the subprocess builds its *own* clock (``--clock``)
and rebuilds any fault schedule from JSON (``--faults``), with op
counters starting at zero as :mod:`repro.shard.faults` documents.
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.serve.protocol import (
    FRAME_ERROR,
    FRAME_HEADER_BYTES,
    FRAME_REQUEST,
    FRAME_RESPONSE,
    ProtocolError,
    ServiceDraining,
    counters_to_wire,
    decode_frame_header,
    decode_request,
    encode_error,
    encode_frame,
    encode_response,
    stats_to_wire,
)
from repro.shard.shard import Shard
from repro.utils.clock import Clock, Deadline, SystemClock, VirtualClock
from repro.utils.counters import CostCounters

__all__ = ["ShardServer", "ShardServerHandle", "main"]

_DRAIN_POLL_SECONDS = 0.005


class ShardServer:
    """Serve one shard's queries over TCP with the project protocol.

    Parameters
    ----------
    shard:
        The shard (or fault-injecting proxy) to serve.
    host, port:
        Bind address; port 0 picks a free port (read the bound address
        from :attr:`address` once serving).
    clock:
        Drives every deadline this server constructs; defaults to the
        real clock.  Tests pass a :class:`VirtualClock` for
        deterministic replay.
    """

    def __init__(
        self,
        shard: Shard,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        clock: Clock | None = None,
    ) -> None:
        self._shard = shard
        self._host = host
        self._port = port
        self._clock = clock if clock is not None else SystemClock()
        self._executor = ThreadPoolExecutor(
            max_workers=1,
            thread_name_prefix=f"shard-server-{shard.shard_id}",
        )
        # Event-loop-confined state (handlers run on one loop thread).
        self._draining = False
        self._inflight = 0
        self._writers: set[asyncio.StreamWriter] = set()
        self._tasks: set[asyncio.Task] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._drain_event: asyncio.Event | None = None
        # Cross-thread signalling for run_in_thread()/wait_closed().
        self._ready = threading.Event()
        self._done = threading.Event()
        self._thread: threading.Thread | None = None
        self._address: tuple[str, int] | None = None
        self.requests_served = 0
        self.protocol_errors = 0

    @property
    def shard(self) -> Shard:
        """The served shard (exposed for tests)."""
        return self._shard

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound; valid once ready."""
        if self._address is None:
            raise RuntimeError("server is not bound yet")
        return self._address

    # ------------------------------------------------------------------
    # Serving loop
    # ------------------------------------------------------------------
    async def serve(self, *, on_ready=None) -> None:
        """Bind, serve until drained, then close the shard and return."""
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._drain_event = asyncio.Event()
        server = await asyncio.start_server(self._handle, self._host, self._port)
        try:
            sockname = server.sockets[0].getsockname()
            self._address = (sockname[0], sockname[1])
            self._ready.set()
            if on_ready is not None:
                on_ready(self._address)
            await self._drain_event.wait()
            # Stop accepting, let in-flight requests finish, then cut
            # idle connections loose (their next request would be
            # answered with ServiceDraining anyway).
            server.close()
            await server.wait_closed()
            while self._inflight > 0:
                await asyncio.sleep(_DRAIN_POLL_SECONDS)
            for writer in list(self._writers):
                writer.close()
            # Closing the transports wakes handlers parked in
            # readexactly() with EOF; wait for them to exit on their
            # own (cancelling instead would make asyncio.streams log
            # the cancellation on 3.11).
            if self._tasks:
                await asyncio.wait(list(self._tasks), timeout=1.0)
        finally:
            self._executor.shutdown(wait=True)
            # Closing checkpoints a durable shard — drain never loses
            # committed state.
            self._shard.close()
            self._done.set()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
        self._writers.add(writer)
        try:
            while True:
                try:
                    header = await reader.readexactly(FRAME_HEADER_BYTES)
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    return  # clean EOF or mid-frame disconnect: drop quietly
                try:
                    frame_type, length = decode_frame_header(header)
                    if frame_type != FRAME_REQUEST:
                        raise ProtocolError(
                            f"expected a request frame, got type {frame_type:#x}"
                        )
                except ProtocolError as exc:
                    # Framing is unrecoverable: report once, hang up.
                    self.protocol_errors += 1
                    await self._send(writer, FRAME_ERROR, encode_error(exc))
                    return
                try:
                    payload = await reader.readexactly(length)
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    return
                try:
                    op, params, summary = decode_request(payload)
                except ProtocolError as exc:
                    self.protocol_errors += 1
                    await self._send(writer, FRAME_ERROR, encode_error(exc))
                    return
                if op == "drain":
                    self.requests_served += 1
                    await self._send(
                        writer,
                        FRAME_RESPONSE,
                        encode_response({"draining": True}),
                    )
                    self._begin_drain()
                    return
                if self._draining:
                    await self._send(
                        writer,
                        FRAME_ERROR,
                        encode_error(
                            ServiceDraining(
                                f"shard {self._shard.shard_id} is draining"
                            )
                        ),
                    )
                    return
                self._inflight += 1
                try:
                    body = await asyncio.get_running_loop().run_in_executor(
                        self._executor, self._execute, op, params, summary
                    )
                except Exception as exc:  # typed errors cross the wire
                    await self._send(writer, FRAME_ERROR, encode_error(exc))
                else:
                    self.requests_served += 1
                    await self._send(
                        writer, FRAME_RESPONSE, encode_response(body)
                    )
                finally:
                    self._inflight -= 1
                if self._draining:
                    return
        finally:
            if task is not None:
                self._tasks.discard(task)
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _send(
        writer: asyncio.StreamWriter, frame_type: int, payload: bytes
    ) -> None:
        try:
            writer.write(encode_frame(frame_type, payload))
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # the peer vanished; nothing to report to

    # ------------------------------------------------------------------
    # Request execution (single worker thread)
    # ------------------------------------------------------------------
    def _execute(self, op: str, params: dict, summary) -> dict:
        """Run one request on the worker thread and build its response.

        The :class:`Deadline` is constructed *here*, on the thread that
        will execute (and under a fault schedule, sleep through) the
        query — the thread-local-offset seam :mod:`repro.utils.clock`
        documents.
        """
        shard = self._shard
        if op == "ping":
            return {"pong": True, "shard_id": shard.shard_id}
        if op == "status":
            body = {
                "shard_id": shard.shard_id,
                "videos": len(shard),
                "queries_served": getattr(shard, "queries_served", 0),
                "draining": self._draining,
            }
            replication = getattr(shard, "replication_status", None)
            if replication is not None:
                body["replication"] = replication()
            return body
        if op == "video_ids":
            return {"video_ids": sorted(shard.video_ids())}
        if op == "may_contain":
            self._require_summary(op, summary)
            bundle = CostCounters()
            result = shard.may_contain(summary, counters=bundle)
            return {
                "result": bool(result),
                "counters": counters_to_wire(bundle),
            }
        if op in ("knn", "similarity_range"):
            self._require_summary(op, summary)
            budget = params.get("budget")
            deadline = (
                Deadline(self._clock, float(budget))
                if budget is not None
                else None
            )
            bundle = CostCounters()
            if op == "knn":
                result = shard.knn(
                    summary,
                    int(params["k"]),
                    method=str(params.get("method", "composed")),
                    cold=bool(params.get("cold", False)),
                    out_counters=bundle,
                    deadline=deadline,
                )
            else:
                result = shard.similarity_range(
                    summary,
                    float(params["min_similarity"]),
                    method=str(params.get("method", "composed")),
                    cold=bool(params.get("cold", False)),
                    out_counters=bundle,
                    deadline=deadline,
                )
            return {
                "videos": list(result.videos),
                "scores": list(result.scores),
                "stats": stats_to_wire(result.stats),
                "counters": counters_to_wire(bundle),
            }
        raise ValueError(f"unknown op {op!r}")

    @staticmethod
    def _require_summary(op: str, summary) -> None:
        if summary is None:
            raise ValueError(f"op {op!r} requires a query summary")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def run_in_thread(self, *, timeout: float = 10.0) -> tuple[str, int]:
        """Serve on a daemon thread; returns the bound ``(host, port)``."""
        if self._thread is not None:
            raise RuntimeError("server already running")
        self._thread = threading.Thread(
            target=self._run,
            name=f"shard-server-{self._shard.shard_id}-loop",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("shard server failed to bind in time")
        assert self._address is not None
        return self._address

    def _run(self) -> None:
        try:
            asyncio.run(self.serve())
        finally:
            self._done.set()

    def _begin_drain(self) -> None:
        # Event-loop thread only (handlers, or call_soon_threadsafe).
        self._draining = True
        if self._drain_event is not None:
            self._drain_event.set()

    def drain(self) -> None:
        """Request a graceful drain from any thread."""
        loop = self._loop
        if loop is None or self._done.is_set():
            return
        try:
            loop.call_soon_threadsafe(self._begin_drain)
        except RuntimeError:
            pass  # loop already closed: drained

    def wait_closed(self, timeout: float | None = None) -> bool:
        """Block until the serve loop has fully shut down."""
        return self._done.wait(timeout)


class ShardServerHandle:
    """A shard server running as a real subprocess.

    :meth:`spawn` launches ``python -m repro.serve.shard_server`` on a
    durable shard directory, waits for its JSON ready-line, and records
    the bound address.  :meth:`drain` asks it to finish in-flight work,
    checkpoint and exit; :meth:`wait` reaps it.
    """

    def __init__(
        self,
        process: subprocess.Popen,
        host: str,
        port: int,
        shard_id: int,
        shard_dir: str,
    ) -> None:
        self._process = process
        self.host = host
        self.port = port
        self.shard_id = shard_id
        self.shard_dir = shard_dir

    @classmethod
    def spawn(
        cls,
        shard_dir: str | os.PathLike,
        shard_id: int,
        *,
        epsilon: float,
        host: str = "127.0.0.1",
        cache_size: int = 128,
        buffer_capacity: int = 256,
        range_cache_size: int = 0,
        clock: str = "system",
        faults: dict | None = None,
    ) -> "ShardServerHandle":
        """Launch a subprocess server and wait for its ready-line."""
        import repro

        shard_dir = os.fspath(shard_dir)
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            src_dir + os.pathsep + existing if existing else src_dir
        )
        command = [
            sys.executable,
            "-m",
            "repro.serve.shard_server",
            "--shard-dir",
            shard_dir,
            "--shard-id",
            str(shard_id),
            "--epsilon",
            repr(epsilon),
            "--host",
            host,
            "--port",
            "0",
            "--cache-size",
            str(cache_size),
            "--buffer-capacity",
            str(buffer_capacity),
            "--range-cache-size",
            str(range_cache_size),
            "--clock",
            clock,
        ]
        if faults is not None:
            command += ["--faults", json.dumps(faults)]
        process = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        assert process.stdout is not None
        for _ in range(256):  # tolerate stray warnings before the ready-line
            line = process.stdout.readline()
            if not line:
                break
            try:
                info = json.loads(line)
            except ValueError:
                continue
            if isinstance(info, dict) and info.get("ready"):
                return cls(
                    process,
                    str(info["host"]),
                    int(info["port"]),
                    shard_id,
                    shard_dir,
                )
        process.kill()
        process.wait()
        raise RuntimeError(
            f"shard server for {shard_dir} exited without a ready-line"
        )

    @property
    def alive(self) -> bool:
        """Whether the subprocess is still running."""
        return self._process.poll() is None

    def drain(self, *, timeout: float = 10.0) -> None:
        """Ask the server to drain gracefully (over the network)."""
        from repro.serve.transport import RemoteShardClient

        client = RemoteShardClient(self.host, self.port, timeout=timeout)
        try:
            client.request("drain")
        finally:
            client.close()

    def wait(self, timeout: float | None = None) -> int:
        """Reap the subprocess; returns its exit code."""
        return self._process.wait(timeout)

    def kill(self) -> None:
        """Hard-kill the subprocess (tests and teardown only)."""
        self._process.kill()
        self._process.wait()

    def __repr__(self) -> str:
        return (
            f"ShardServerHandle(shard={self.shard_id}, "
            f"addr={self.host}:{self.port}, alive={self.alive})"
        )


def main(argv: list[str] | None = None) -> int:
    """Subprocess entry: serve one durable shard directory until drained."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-shard-server",
        description="serve one ViTri shard directory over TCP",
    )
    parser.add_argument("--shard-dir", required=True)
    parser.add_argument("--shard-id", type=int, required=True)
    parser.add_argument("--epsilon", type=float, default=0.3)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--cache-size", type=int, default=128)
    parser.add_argument("--buffer-capacity", type=int, default=256)
    parser.add_argument("--range-cache-size", type=int, default=0)
    parser.add_argument(
        "--clock",
        choices=("system", "virtual"),
        default="system",
        help="virtual: deterministic clock for replayed fault schedules",
    )
    parser.add_argument(
        "--faults",
        default=None,
        help="JSON ShardFaultInjector schedule (op counters start at 0 "
        "in this process; see repro.shard.faults)",
    )
    args = parser.parse_args(argv)

    clock: Clock = VirtualClock() if args.clock == "virtual" else SystemClock()
    shard: Shard = Shard(
        args.shard_id,
        epsilon=args.epsilon,
        path=args.shard_dir,
        buffer_capacity=args.buffer_capacity,
        cache_size=args.cache_size,
        range_cache_size=args.range_cache_size,
    )
    if args.faults:
        from repro.shard.faults import FaultInjectingShard, ShardFaultInjector

        injector = ShardFaultInjector.from_dict(json.loads(args.faults))
        shard = FaultInjectingShard(shard, injector, clock=clock)

    server = ShardServer(shard, host=args.host, port=args.port, clock=clock)

    def on_ready(address: tuple[str, int]) -> None:
        print(
            json.dumps(
                {
                    "ready": True,
                    "host": address[0],
                    "port": address[1],
                    "shard_id": args.shard_id,
                }
            ),
            flush=True,
        )

    asyncio.run(server.serve(on_ready=on_ready))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
