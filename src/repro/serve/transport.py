"""Network-backed shards: the scatter path's client side.

:class:`RemoteShard` presents the slice of the
:class:`~repro.shard.shard.Shard` surface the router's read path uses —
``shard_id``, ``len()``, ``video_ids``, ``may_contain``, ``knn``,
``similarity_range`` — but executes every call over TCP against a
:class:`~repro.serve.shard_server.ShardServer`.  Plugged into
:meth:`~repro.shard.router.ShardedVideoDatabase.from_shards`, the
unchanged scatter/merge machinery (pruning, per-shard counter bundles,
resilient attempts, exact ``_rank`` merge) runs over the network:

* Scores come back as JSON floats (exact round-trip), counters come
  back as a wire bundle folded into the caller's ``out_counters``, so
  rankings and cost accounting are identical to the in-process path.
* A :class:`~repro.utils.clock.Deadline` is forwarded as its remaining
  budget in seconds; the server enforces it before and during the work.
  A spent budget is clamped to ``0.0`` so the server refuses to start —
  never a negative that a receiver might misread as unbounded.
* Failures surface as the same typed exceptions the in-process path
  raises (:class:`~repro.shard.resilience.ShardTimeout` and friends,
  rebuilt from the wire) or as ``OSError`` for transport faults — all
  of which the default :class:`~repro.shard.resilience.FaultPolicy`
  already treats as retryable, so retries, hedges and breakers work on
  remote shards without modification.

:class:`RemoteShardClient` underneath keeps a small connection pool;
sockets are checked out under the lock but **all I/O happens outside
it**, so concurrent scatter workers never serialise on each other's
network round-trips.
"""

from __future__ import annotations

import socket

from repro.core.index import KNNResult
from repro.core.vitri import VideoSummary
from repro.serve.protocol import (
    FRAME_ERROR,
    FRAME_HEADER_BYTES,
    FRAME_REQUEST,
    FRAME_RESPONSE,
    ProtocolError,
    counters_from_wire,
    decode_error,
    decode_frame_header,
    decode_response,
    encode_frame,
    encode_request,
    payload_to_exception,
    stats_from_wire,
)
from repro.utils.clock import Deadline
from repro.utils.counters import CostCounters
from repro.utils.locks import make_lock

__all__ = ["RemoteShard", "RemoteShardClient"]


def _budget_of(deadline: Deadline | None) -> float | None:
    """Wire form of a deadline: remaining seconds, clamped at zero."""
    if deadline is None or not deadline.bounded:
        return None
    return max(deadline.remaining(), 0.0)


class RemoteShardClient:
    """Pooled, synchronous protocol client for one server address.

    Thread-safe: the pool list is the only shared state and it is only
    touched under the client's lock; socket I/O always happens on a
    checked-out socket outside the lock.  A socket that sees any error
    is closed, never pooled again — the next request dials fresh.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 10.0,
        pool_size: int = 2,
    ) -> None:
        self.host = host
        self.port = port
        self._timeout = timeout
        self._pool_size = pool_size
        self._lock = make_lock("RemoteShardClient._lock")
        self._pool: list[socket.socket] = []
        self._closed = False

    def request(
        self, op: str, params: dict | None = None, summary=None
    ) -> dict:
        """One request/response round-trip; raises typed server errors."""
        frame = encode_frame(
            FRAME_REQUEST, encode_request(op, params or {}, summary)
        )
        sock = self._checkout()
        try:
            sock.sendall(frame)
            frame_type, payload = self._read_frame(sock)
        except BaseException:
            sock.close()
            raise
        self._checkin(sock)
        if frame_type == FRAME_ERROR:
            raise payload_to_exception(decode_error(payload))
        if frame_type != FRAME_RESPONSE:
            raise ProtocolError(
                f"expected a response frame, got type {frame_type:#x}"
            )
        return decode_response(payload)

    def _checkout(self) -> socket.socket:
        with self._lock:
            if self._closed:
                raise OSError("client is closed")
            sock = self._pool.pop() if self._pool else None
        if sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self._timeout
            )
            sock.settimeout(self._timeout)
        return sock

    def _checkin(self, sock: socket.socket) -> None:
        keep = False
        with self._lock:
            if not self._closed and len(self._pool) < self._pool_size:
                self._pool.append(sock)
                keep = True
        if not keep:
            sock.close()

    def _read_frame(self, sock: socket.socket) -> tuple[int, bytes]:
        header = self._read_exactly(sock, FRAME_HEADER_BYTES)
        frame_type, length = decode_frame_header(header)
        return frame_type, self._read_exactly(sock, length)

    @staticmethod
    def _read_exactly(sock: socket.socket, count: int) -> bytes:
        chunks = bytearray()
        while len(chunks) < count:
            chunk = sock.recv(count - len(chunks))
            if not chunk:
                raise ConnectionError(
                    f"server closed the connection after {len(chunks)} of "
                    f"{count} expected bytes"
                )
            chunks.extend(chunk)
        return bytes(chunks)

    def close(self) -> None:
        """Close every pooled socket and refuse further checkouts."""
        with self._lock:
            pool = self._pool
            self._pool = []
            self._closed = True
        for sock in pool:
            sock.close()

    def __repr__(self) -> str:
        return f"RemoteShardClient({self.host}:{self.port})"


class RemoteShard:
    """A shard served elsewhere, as seen by the scatter-gather router.

    Read-only by construction: the serving surface is implemented, the
    mutation surface is absent (placement belongs to whichever process
    owns the shard's files).  ``len()`` is cached from the server's
    status at connect time — remote fleets are read-only, so the count
    cannot drift; :meth:`reconnect` refreshes it after a restart.
    """

    def __init__(
        self, shard_id: int, host: str, port: int, *, timeout: float = 10.0
    ) -> None:
        self._shard_id = int(shard_id)
        self._timeout = timeout
        # The router's cache-tally introspection reads `shard._engine`;
        # a remote shard's engine lives in the server process.
        self._engine = None
        self._client = RemoteShardClient(host, port, timeout=timeout)
        self._count = int(self._client.request("status")["videos"])

    @property
    def shard_id(self) -> int:
        """Position of this shard in the fleet's shard list."""
        return self._shard_id

    def __len__(self) -> int:
        return self._count

    def status(self) -> dict:
        """The server's live status report."""
        return self._client.request("status")

    def video_ids(self) -> set[int]:
        """Ids of the videos the remote shard owns."""
        return {int(v) for v in self._client.request("video_ids")["video_ids"]}

    def may_contain(
        self, query: VideoSummary, *, counters: CostCounters | None = None
    ) -> bool:
        """Server-side key-bounds check; pruning I/O folds into
        ``counters`` exactly as a local shard's would.

        An unreachable server (mid-restart, draining) answers ``True``:
        pruning may only skip a shard it can *prove* empty of matches,
        and the router's pruning step runs outside the resilient
        attempt loop — claiming possible membership hands the failure
        to the scatter path, which knows how to retry or degrade.
        """
        try:
            body = self._client.request("may_contain", summary=query)
        except OSError:
            return True
        if counters is not None:
            counters.add(counters_from_wire(body["counters"]))
        return bool(body["result"])

    def knn(
        self,
        query: VideoSummary,
        k: int,
        *,
        method: str = "composed",
        cold: bool = False,
        out_counters: CostCounters | None = None,
        deadline: Deadline | None = None,
    ) -> KNNResult:
        """The remote shard's local top-``k`` (bit-identical scores)."""
        body = self._client.request(
            "knn",
            {
                "k": k,
                "method": method,
                "cold": cold,
                "budget": _budget_of(deadline),
            },
            summary=query,
        )
        return self._result(body, out_counters)

    def similarity_range(
        self,
        query: VideoSummary,
        min_similarity: float,
        *,
        method: str = "composed",
        cold: bool = False,
        out_counters: CostCounters | None = None,
        deadline: Deadline | None = None,
    ) -> KNNResult:
        """The remote shard's videos scoring at least ``min_similarity``."""
        body = self._client.request(
            "similarity_range",
            {
                "min_similarity": min_similarity,
                "method": method,
                "cold": cold,
                "budget": _budget_of(deadline),
            },
            summary=query,
        )
        return self._result(body, out_counters)

    @staticmethod
    def _result(body: dict, out_counters: CostCounters | None) -> KNNResult:
        if out_counters is not None:
            out_counters.add(counters_from_wire(body["counters"]))
        return KNNResult(
            videos=tuple(int(v) for v in body["videos"]),
            scores=tuple(float(s) for s in body["scores"]),
            stats=stats_from_wire(body["stats"]),
        )

    def reconnect(self, host: str | None = None, port: int | None = None) -> None:
        """Point at a (re)started server and refresh the cached count."""
        old = self._client
        self._client = RemoteShardClient(
            host if host is not None else old.host,
            port if port is not None else old.port,
            timeout=self._timeout,
        )
        old.close()
        self._count = int(self._client.request("status")["videos"])

    def close(self) -> None:
        """Close the underlying connection pool."""
        self._client.close()

    def __repr__(self) -> str:
        return (
            f"RemoteShard(id={self._shard_id}, "
            f"addr={self._client.host}:{self._client.port}, "
            f"videos={self._count})"
        )
