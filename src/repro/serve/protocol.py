"""Wire protocol of the shard service: framing, codecs, typed errors.

Framing
-------
Every message is one frame::

    +-------+------+----------------+---------+
    | magic | type | payload length | payload |
    |  2 B  | 1 B  |  4 B (big-e.)  |   ...   |
    +-------+------+----------------+---------+

The magic is ``b"VT"`` (ViTri); the type byte is one of
:data:`FRAME_REQUEST`, :data:`FRAME_RESPONSE`, :data:`FRAME_ERROR`.  The
length covers the payload only and is validated against
:data:`MAX_FRAME_BYTES` **when the header is parsed, before any payload
allocation** — a malformed or hostile length prefix can never make a
peer allocate an unbounded buffer.  Anything else wrong with the header
(bad magic, unknown type) raises :class:`ProtocolError` immediately;
framing cannot be trusted past a corrupt header, so peers drop the
connection rather than resynchronise.

Payloads
--------
A request payload is a 4-byte JSON-header length, the JSON header
(``{"op": ..., "params": {...}}``), then an optional binary
:class:`~repro.core.vitri.VideoSummary` blob.  Summaries travel in a
fixed binary layout (:func:`encode_summary` / :func:`decode_summary`)
whose positions, radii and counts round-trip bit-exactly — the network
path must produce the same similarity scores as an in-process call.
Response and error payloads are plain JSON; scores survive JSON because
Python serialises floats as their shortest exact ``repr``.

Deadlines never travel as absolute times (clocks are per-process, see
:mod:`repro.utils.clock`): a request carries the **remaining budget in
seconds** and the server rebuilds a
:class:`~repro.utils.clock.Deadline` against its own clock on the
worker thread that runs the query.

Errors
------
A server maps an exception to ``{"error_type": <class name>,
"message": ...}``; :func:`payload_to_exception` rebuilds the typed
exception on the client so the resilience layer's ``retryable`` test
sees the same classes it would in process.  Unknown types degrade to
:class:`RemoteShardError`.  The front door's load-shedding errors
(:class:`ServiceOverloaded`, :class:`RateLimited`,
:class:`ServiceDraining`) are defined here because they are part of the
wire contract.
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro.core.index import QueryStats
from repro.core.vitri import ViTri, VideoSummary
from repro.shard.resilience import InjectedShardError, ShardDown, ShardTimeout
from repro.utils.counters import CostCounters

__all__ = [
    "FRAME_ERROR",
    "FRAME_HEADER_BYTES",
    "FRAME_REQUEST",
    "FRAME_RESPONSE",
    "MAGIC",
    "MAX_FRAME_BYTES",
    "FrameDecoder",
    "ProtocolError",
    "RateLimited",
    "RemoteShardError",
    "ServiceDraining",
    "ServiceOverloaded",
    "counters_from_wire",
    "counters_to_wire",
    "decode_error",
    "decode_frame_header",
    "decode_request",
    "decode_response",
    "decode_summary",
    "encode_error",
    "encode_frame",
    "encode_request",
    "encode_response",
    "encode_summary",
    "exception_to_payload",
    "payload_to_exception",
    "stats_from_wire",
    "stats_to_wire",
]

MAGIC = b"VT"
FRAME_REQUEST = 0x01
FRAME_RESPONSE = 0x02
FRAME_ERROR = 0x03
_FRAME_TYPES = (FRAME_REQUEST, FRAME_RESPONSE, FRAME_ERROR)

_HEADER = struct.Struct("!2sBI")
FRAME_HEADER_BYTES = _HEADER.size

# Hard cap on any single payload.  Checked against the header's length
# field before the payload is read or allocated; generous enough for a
# response of tens of thousands of rankings, small enough that a garbage
# length prefix cannot be used to exhaust memory.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_SUMMARY_HEADER = struct.Struct("<qqII")  # video_id, num_frames, vitris, dim
_VITRI_TAIL = struct.Struct("<dq")  # radius, count


class ProtocolError(ValueError):
    """The byte stream violates the framing contract; drop the peer."""


class RemoteShardError(RuntimeError):
    """A server-side error whose type the client cannot reconstruct."""


class ServiceOverloaded(RuntimeError):
    """The front door's admission queue is full; retry later."""


class RateLimited(RuntimeError):
    """The client's token bucket is empty; slow down."""


class ServiceDraining(ConnectionError):
    """The peer is draining and not admitting new queries.

    Subclasses :class:`ConnectionError` deliberately: a draining shard
    is a *transient* connectivity condition (its replacement is coming
    up), so the resilience layer's default ``retryable`` set — which
    already includes ``OSError`` — retries it without special-casing,
    and a restart under live traffic degrades instead of erroring.
    """


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------
def encode_frame(frame_type: int, payload: bytes) -> bytes:
    """One complete frame for ``payload``."""
    if frame_type not in _FRAME_TYPES:
        raise ProtocolError(f"unknown frame type {frame_type:#x}")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame cap"
        )
    return _HEADER.pack(MAGIC, frame_type, len(payload)) + payload


def decode_frame_header(header: bytes) -> tuple[int, int]:
    """``(frame_type, payload_length)`` from one 7-byte header.

    Validates magic, type and length cap here — *before* the caller
    reads or allocates the payload — so a hostile length field can
    never trigger an unbounded allocation.
    """
    if len(header) != FRAME_HEADER_BYTES:
        raise ProtocolError(
            f"frame header must be {FRAME_HEADER_BYTES} bytes, "
            f"got {len(header)}"
        )
    magic, frame_type, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if frame_type not in _FRAME_TYPES:
        raise ProtocolError(f"unknown frame type {frame_type:#x}")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame claims {length} payload bytes, above the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    return frame_type, length


class FrameDecoder:
    """Incremental frame parser over an untrusted byte stream.

    Synchronous and transport-agnostic: feed it whatever chunks arrive
    and it yields complete ``(frame_type, payload)`` pairs.  Header
    validation (magic, type, length cap) happens the moment seven bytes
    are buffered, so at most ``FRAME_HEADER_BYTES + MAX_FRAME_BYTES``
    bytes are ever held.  A :class:`ProtocolError` poisons the decoder —
    framing cannot be re-synchronised after corruption.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._pending: tuple[int, int] | None = None  # validated header
        self._poisoned = False

    def feed(self, data: bytes) -> list[tuple[int, bytes]]:
        """Buffer ``data``; return every frame it completed."""
        if self._poisoned:
            raise ProtocolError("decoder poisoned by an earlier framing error")
        self._buffer.extend(data)
        frames: list[tuple[int, bytes]] = []
        while True:
            if self._pending is None:
                if len(self._buffer) < FRAME_HEADER_BYTES:
                    break
                header = bytes(self._buffer[:FRAME_HEADER_BYTES])
                try:
                    self._pending = decode_frame_header(header)
                except ProtocolError:
                    self._poisoned = True
                    raise
                del self._buffer[:FRAME_HEADER_BYTES]
            frame_type, length = self._pending
            if len(self._buffer) < length:
                break
            payload = bytes(self._buffer[:length])
            del self._buffer[:length]
            self._pending = None
            frames.append((frame_type, payload))
        return frames

    @property
    def buffered(self) -> int:
        """Bytes currently held for an incomplete frame."""
        return len(self._buffer)


# ---------------------------------------------------------------------------
# Summary codec (bit-exact)
# ---------------------------------------------------------------------------
def encode_summary(summary: VideoSummary) -> bytes:
    """Fixed binary layout of one summary; round-trips bit-exactly."""
    if not isinstance(summary, VideoSummary):
        raise TypeError("summary must be a VideoSummary")
    parts = [
        _SUMMARY_HEADER.pack(
            summary.video_id,
            summary.num_frames,
            len(summary.vitris),
            summary.dim,
        )
    ]
    for vitri in summary.vitris:
        position = np.ascontiguousarray(vitri.position, dtype="<f8")
        parts.append(position.tobytes())
        parts.append(_VITRI_TAIL.pack(vitri.radius, vitri.count))
    return b"".join(parts)


def decode_summary(blob: bytes) -> VideoSummary:
    """Rebuild a summary encoded by :func:`encode_summary`."""
    if len(blob) < _SUMMARY_HEADER.size:
        raise ProtocolError(
            f"summary blob of {len(blob)} bytes is shorter than its "
            f"{_SUMMARY_HEADER.size}-byte header"
        )
    video_id, num_frames, num_vitris, dim = _SUMMARY_HEADER.unpack_from(blob)
    stride = dim * 8 + _VITRI_TAIL.size
    expected = _SUMMARY_HEADER.size + num_vitris * stride
    if num_vitris < 1 or dim < 1 or len(blob) != expected:
        raise ProtocolError(
            f"summary blob of {len(blob)} bytes does not match its header "
            f"({num_vitris} ViTris of dim {dim} need {expected} bytes)"
        )
    vitris = []
    offset = _SUMMARY_HEADER.size
    for _ in range(num_vitris):
        position = np.frombuffer(blob, dtype="<f8", count=dim, offset=offset)
        offset += dim * 8
        radius, count = _VITRI_TAIL.unpack_from(blob, offset)
        offset += _VITRI_TAIL.size
        vitris.append(ViTri(position.copy(), radius, count))
    return VideoSummary(video_id, tuple(vitris), num_frames)


# ---------------------------------------------------------------------------
# Request / response / error codecs
# ---------------------------------------------------------------------------
def encode_request(
    op: str, params: dict, summary: VideoSummary | None = None
) -> bytes:
    """Request payload: JSON-header length, JSON header, summary blob."""
    header = json.dumps({"op": op, "params": params}).encode("utf-8")
    blob = b"" if summary is None else encode_summary(summary)
    return struct.pack("!I", len(header)) + header + blob


def decode_request(payload: bytes) -> tuple[str, dict, VideoSummary | None]:
    """``(op, params, summary-or-None)`` from a request payload."""
    if len(payload) < 4:
        raise ProtocolError("request payload too short for its header length")
    (header_len,) = struct.unpack_from("!I", payload)
    if 4 + header_len > len(payload):
        raise ProtocolError(
            f"request claims a {header_len}-byte JSON header but only "
            f"{len(payload) - 4} payload bytes follow"
        )
    try:
        header = json.loads(payload[4 : 4 + header_len].decode("utf-8"))
        op = header["op"]
        params = header["params"]
    except (ValueError, KeyError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed request header: {exc}") from exc
    if not isinstance(op, str) or not isinstance(params, dict):
        raise ProtocolError("request header must carry a str op and dict params")
    blob = payload[4 + header_len :]
    summary = decode_summary(blob) if blob else None
    return op, params, summary


def encode_response(body: dict) -> bytes:
    """Response payload (plain JSON)."""
    return json.dumps(body).encode("utf-8")


def decode_response(payload: bytes) -> dict:
    """Parse a response payload."""
    try:
        body = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed response payload: {exc}") from exc
    if not isinstance(body, dict):
        raise ProtocolError("response payload must be a JSON object")
    return body


# Exception classes a client may legitimately see from a server; keyed
# by class name so both sides agree without importing each other.
_ERROR_TYPES: dict[str, type[BaseException]] = {
    cls.__name__: cls
    for cls in (
        ShardTimeout,
        ShardDown,
        InjectedShardError,
        ServiceOverloaded,
        RateLimited,
        ServiceDraining,
        ProtocolError,
        ValueError,
        TypeError,
        KeyError,
        RuntimeError,
    )
}


def exception_to_payload(exc: BaseException) -> dict:
    """JSON error body for one server-side exception."""
    return {"error_type": type(exc).__name__, "message": str(exc)}


def payload_to_exception(body: dict) -> BaseException:
    """Rebuild the typed exception a server reported.

    Known types come back as themselves — so the client's
    :class:`~repro.shard.resilience.FaultPolicy` retryable test treats a
    remote :class:`ShardTimeout` exactly like a local one.  Unknown
    types degrade to :class:`RemoteShardError`.
    """
    name = str(body.get("error_type", ""))
    message = str(body.get("message", ""))
    cls = _ERROR_TYPES.get(name)
    if cls is None:
        return RemoteShardError(f"{name or 'unknown error'}: {message}")
    return cls(message)


def encode_error(exc: BaseException) -> bytes:
    """Error payload for one exception."""
    return json.dumps(exception_to_payload(exc)).encode("utf-8")


def decode_error(payload: bytes) -> dict:
    """Parse an error payload."""
    return decode_response(payload)


# ---------------------------------------------------------------------------
# Counters / stats codecs
# ---------------------------------------------------------------------------
_COUNTER_FIELDS = (
    "page_reads",
    "page_requests",
    "page_writes",
    "distance_computations",
    "similarity_computations",
    "btree_node_visits",
    "records_scanned",
    "records_decoded",
)


def counters_to_wire(counters: CostCounters) -> dict:
    """JSON form of one cost bundle (named fields plus extras)."""
    return counters.snapshot()


def counters_from_wire(body: dict) -> CostCounters:
    """Rebuild a bundle from :func:`counters_to_wire` output.

    Known fields land on their attributes; anything else (stage timers,
    range-search tallies) goes back into ``extra`` — the same shape
    :meth:`~repro.utils.counters.CostCounters.snapshot` flattened.
    """
    counters = CostCounters()
    for key, value in body.items():
        if key in _COUNTER_FIELDS:
            setattr(counters, key, value)
        else:
            counters.extra[key] = value
    return counters


def stats_to_wire(stats: QueryStats) -> dict:
    """JSON form of one query's stats."""
    return {
        "page_requests": stats.page_requests,
        "physical_reads": stats.physical_reads,
        "node_visits": stats.node_visits,
        "similarity_computations": stats.similarity_computations,
        "candidates": stats.candidates,
        "ranges": stats.ranges,
        "wall_time": stats.wall_time,
    }


def stats_from_wire(body: dict) -> QueryStats:
    """Rebuild :class:`QueryStats` from :func:`stats_to_wire` output."""
    return QueryStats(
        page_requests=int(body["page_requests"]),
        physical_reads=int(body["physical_reads"]),
        node_visits=int(body["node_visits"]),
        similarity_computations=int(body["similarity_computations"]),
        candidates=int(body["candidates"]),
        ranges=int(body["ranges"]),
        wall_time=float(body["wall_time"]),
    )
