"""Gaussian-distribution video summaries.

The paper's related work (references [8, 14]) describes a whole category
of summarisation techniques that model a video's frames as a statistical
distribution, typically Gaussian.  This module implements the canonical
representative — one diagonal Gaussian per video — with a Bhattacharyya-
coefficient similarity.

The category's weakness, which the comparison benches expose: a single
distribution collapses a video's multimodal structure (distinct scenes
become one wide blob), losing exactly the per-cluster locality that the
ViTri model keeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_matrix

__all__ = ["GaussianSummary", "bhattacharyya_similarity", "summarize_gaussian"]

_VARIANCE_FLOOR = 1e-10


@dataclass(frozen=True)
class GaussianSummary:
    """A video modelled as one diagonal Gaussian.

    Attributes
    ----------
    video_id:
        Identifier of the summarised video.
    mean:
        Frame mean, shape ``(n,)``.
    variances:
        Per-dimension frame variances (floored away from zero).
    num_frames:
        Length of the original video.
    """

    video_id: int
    mean: np.ndarray
    variances: np.ndarray
    num_frames: int

    @property
    def dim(self) -> int:
        """Feature dimensionality."""
        return self.mean.shape[0]


def summarize_gaussian(video_id: int, frames) -> GaussianSummary:
    """Fit one diagonal Gaussian to a video's frames."""
    frames = check_matrix(frames, "frames", min_rows=1)
    return GaussianSummary(
        video_id=video_id,
        mean=frames.mean(axis=0),
        variances=np.maximum(frames.var(axis=0), _VARIANCE_FLOOR),
        num_frames=frames.shape[0],
    )


def bhattacharyya_similarity(a: GaussianSummary, b: GaussianSummary) -> float:
    """Bhattacharyya coefficient between two diagonal Gaussians, in
    ``(0, 1]``; 1 means identical distributions.

    ``BC = exp(-BD)`` with the Bhattacharyya distance

        BD = 1/8 * sum (mu_a - mu_b)^2 / s
           + 1/2 * sum ln( s / sqrt(var_a * var_b) ),   s = (var_a+var_b)/2
    """
    if not isinstance(a, GaussianSummary) or not isinstance(b, GaussianSummary):
        raise TypeError(
            "bhattacharyya_similarity expects two GaussianSummary objects"
        )
    if a.dim != b.dim:
        raise ValueError(f"dimension mismatch: {a.dim} != {b.dim}")
    pooled = (a.variances + b.variances) / 2.0
    mean_term = float(np.sum((a.mean - b.mean) ** 2 / pooled)) / 8.0
    log_term = 0.5 * float(
        np.sum(np.log(pooled / np.sqrt(a.variances * b.variances)))
    )
    return float(np.exp(-(mean_term + log_term)))
