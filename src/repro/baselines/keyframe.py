"""The keyframe baseline (paper's "existing keyframe method", ref [5]).

Chang et al. summarise a video by selecting ``k`` representative feature
vectors that minimise the distance between the representatives and the
original sequence — which is exactly the k-means objective, so the
representatives here are k-means centroids.  Video similarity is the
*percentage of similar keyframes*: a keyframe is matched when some
keyframe of the other video lies within ``epsilon``.

This is the method Figure 14/15 compares ViTri against: it keeps only the
cluster positions and discards the local information (radius, density)
that ViTri retains.

To make the comparison fair, the number of keyframes per video defaults to
the number of clusters ``Generate_Clusters`` produces for the same
``epsilon`` — both summaries then have the same footprint.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.kmeans import kmeans
from repro.utils.counters import CostCounters
from repro.utils.validation import check_matrix, check_positive

__all__ = ["KeyframeSummary", "keyframe_similarity", "summarize_keyframes"]


@dataclass(frozen=True)
class KeyframeSummary:
    """A video summarised as ``k`` representative frames.

    Attributes
    ----------
    video_id:
        Identifier of the summarised video.
    keyframes:
        Representative vectors, shape ``(k, n)``.
    num_frames:
        Length of the original video.
    """

    video_id: int
    keyframes: np.ndarray
    num_frames: int

    @property
    def k(self) -> int:
        """Number of keyframes."""
        return self.keyframes.shape[0]

    @property
    def dim(self) -> int:
        """Feature dimensionality."""
        return self.keyframes.shape[1]


def summarize_keyframes(
    video_id: int,
    frames,
    k: int,
    *,
    seed=None,
) -> KeyframeSummary:
    """Summarise a video into ``k`` keyframes with k-means.

    Parameters
    ----------
    video_id:
        Identifier recorded on the summary.
    frames:
        Matrix of shape ``(f, n)``.
    k:
        Number of representatives; clamped to the frame count.
    seed:
        k-means seeding.
    """
    frames = check_matrix(frames, "frames", min_rows=1)
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise ValueError(f"k must be a positive int, got {k}")
    k = min(k, frames.shape[0])
    result = kmeans(frames, k, seed=seed)
    return KeyframeSummary(
        video_id=video_id,
        keyframes=result.centers,
        num_frames=frames.shape[0],
    )


def keyframe_similarity(
    a: KeyframeSummary,
    b: KeyframeSummary,
    epsilon: float,
    counters: CostCounters | None = None,
) -> float:
    """Percentage of similar keyframes between two summaries, in [0, 1]."""
    if not isinstance(a, KeyframeSummary) or not isinstance(b, KeyframeSummary):
        raise TypeError("keyframe_similarity expects two KeyframeSummary objects")
    if a.dim != b.dim:
        raise ValueError(f"dimension mismatch: {a.dim} != {b.dim}")
    epsilon = check_positive(epsilon, "epsilon")

    diff = a.keyframes[:, None, :] - b.keyframes[None, :, :]
    distances = np.linalg.norm(diff, axis=2)
    if counters is not None:
        counters.distance_computations += distances.size
    matched_a = int(np.any(distances <= epsilon, axis=1).sum())
    matched_b = int(np.any(distances <= epsilon, axis=0).sum())
    return (matched_a + matched_b) / (a.k + b.k)
