"""Multi-reference iDistance over the ViTri records.

The paper adopts iDistance's distance-to-reference-point mapping but uses
a *single* reference point chosen by Theorem 1.  The original iDistance
(Yu, Ooi, Tan, Jagadish; VLDB 2001) instead partitions the data and gives
every partition its own reference point:

    key(O) = partition_id * SEPARATION + d(O, ref_partition)

so each partition occupies a disjoint key band and the per-partition
distances are measured from a nearby point (far tighter than one global
reference in clustered data).  A query sphere is answered by one range
search per *intersecting* partition:

    partition i can contain candidates iff
        d(q, ref_i) - gamma <= radius_i
    and then its key range is
        [i * S + max(0, d(q, ref_i) - gamma),
         i * S + min(radius_i, d(q, ref_i) + gamma)]

Partitions are built with k-means over the ViTri positions; reference
points are the cluster centroids.  Results are identical to the source
index's (the filter is lossless for the same triangle-inequality reason);
only the cost profile differs, which ``bench_ext_mappings`` measures.
"""

from __future__ import annotations

import numpy as np

from repro.btree.tree import BPlusTree
from repro.clustering.kmeans import kmeans
from repro.core.composition import compose_ranges
from repro.core.index import KNNResult, QueryStats, VitriIndex
from repro.core.scoring import ScoreAccumulator
from repro.core.vitri import VideoSummary
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager
from repro.utils.counters import CostCounters, Timer

__all__ = ["MultiRefIndex"]


class MultiRefIndex:
    """Classic multi-partition iDistance over a :class:`VitriIndex`'s
    records.

    Parameters
    ----------
    source:
        A built :class:`VitriIndex` supplying records and metadata.
    num_partitions:
        Number of k-means partitions / reference points.
    buffer_capacity:
        LRU capacity of the B+-tree's buffer pool.
    seed:
        k-means seeding for the partitioning.
    """

    def __init__(
        self,
        source: VitriIndex,
        num_partitions: int = 8,
        *,
        buffer_capacity: int = 256,
        seed=0,
    ) -> None:
        if not isinstance(source, VitriIndex):
            raise TypeError("source must be a VitriIndex")
        if not isinstance(num_partitions, int) or num_partitions < 1:
            raise ValueError(
                f"num_partitions must be a positive int, got {num_partitions}"
            )
        self._source = source
        self._codec = source._codec
        self._epsilon = source.epsilon
        self._dim = source.dim
        self._video_frames = source.video_frames

        records = [
            self._codec.decode(payload) for _, payload in source.heap.scan()
        ]
        if not records:
            raise ValueError("the source index holds no records")
        positions = np.stack([record.position for record in records])
        num_partitions = min(num_partitions, positions.shape[0])
        clustering = kmeans(positions, num_partitions, seed=seed)
        self._references = clustering.centers
        assignments = clustering.labels

        distances = np.linalg.norm(
            positions - self._references[assignments], axis=1
        )
        self._partition_radii = np.zeros(num_partitions)
        for partition in range(num_partitions):
            members = distances[assignments == partition]
            if members.size:
                self._partition_radii[partition] = float(members.max())
        # Disjoint key bands: anything comfortably above the largest
        # in-partition distance works as the separation constant.
        self._separation = float(self._partition_radii.max()) * 2.0 + 1.0

        entries = []
        for record, partition, distance in zip(records, assignments, distances):
            key = partition * self._separation + float(distance)
            entries.append((key, self._codec.encode(record)))
        entries.sort(key=lambda item: item[0])
        self._btree = BPlusTree.create(
            BufferPool(Pager(), capacity=buffer_capacity),
            payload_size=self._codec.record_size,
        )
        self._btree.bulk_load(entries)

    @property
    def num_partitions(self) -> int:
        """Number of partitions / reference points."""
        return self._references.shape[0]

    @property
    def num_vitris(self) -> int:
        """Number of indexed ViTris."""
        return self._btree.num_entries

    @property
    def btree(self) -> BPlusTree:
        """The underlying B+-tree over partitioned keys."""
        return self._btree

    def clear_caches(self) -> None:
        """Drop the buffer pool (cold-start a measurement)."""
        self._btree.buffer_pool.clear()

    def _ranges_for(self, position: np.ndarray, gamma: float):
        """Key ranges of the partitions a search sphere intersects."""
        distances = np.linalg.norm(self._references - position, axis=1)
        ranges = []
        for partition in range(self.num_partitions):
            if distances[partition] - gamma > self._partition_radii[partition]:
                continue
            low = max(0.0, distances[partition] - gamma)
            high = min(
                self._partition_radii[partition], distances[partition] + gamma
            )
            if low > high:
                continue
            base = partition * self._separation
            ranges.append((base + low, base + high))
        return ranges

    def knn(self, query: VideoSummary, k: int, *, cold: bool = False) -> KNNResult:
        """Top-``k`` most similar videos via partitioned range searches."""
        if not isinstance(query, VideoSummary):
            raise TypeError("query must be a VideoSummary")
        if query.dim != self._dim:
            raise ValueError(
                f"query dimension {query.dim} != index dimension {self._dim}"
            )
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise ValueError(f"k must be a positive int, got {k}")
        if cold:
            self.clear_caches()

        # Per-query bundle: costs are attributed to this query alone,
        # never derived from global pool-counter deltas.
        counters = CostCounters()
        accumulator = ScoreAccumulator(query, self._video_frames)
        candidates = 0
        with Timer() as timer:
            gammas = [
                vitri.radius + self._epsilon / 2.0 for vitri in query.vitris
            ]
            all_ranges = []
            for vitri, gamma in zip(query.vitris, gammas):
                all_ranges.extend(self._ranges_for(vitri.position, gamma))
            composed = compose_ranges(all_ranges)
            seen: set[tuple[int, int]] = set()
            for low, high in composed:
                entries = self._btree.range_search(low, high, counters=counters)
                if not entries:
                    continue
                candidates += len(entries)
                records = [self._codec.decode(p) for _, p in entries]
                positions = np.stack([r.position for r in records])
                video_ids = np.array([r.video_id for r in records])
                vitri_ids = np.array([r.vitri_id for r in records])
                counts = np.array([r.count for r in records])
                radii = np.array([r.radius for r in records])
                for index, (vitri, gamma) in enumerate(
                    zip(query.vitris, gammas)
                ):
                    distances = np.linalg.norm(
                        positions - vitri.position, axis=1
                    )
                    mask = distances <= gamma
                    fresh = np.array(
                        [
                            mask[t] and (index, int(vitri_ids[t])) not in seen
                            for t in range(len(records))
                        ]
                    )
                    if not fresh.any():
                        continue
                    for t in np.flatnonzero(fresh):
                        seen.add((index, int(vitri_ids[t])))
                    accumulator.evaluate_arrays(
                        index,
                        video_ids[fresh],
                        vitri_ids[fresh],
                        counts[fresh],
                        radii[fresh],
                        positions[fresh],
                    )
            ranked = accumulator.ranked(k)

        stats = QueryStats(
            page_requests=counters.page_requests,
            physical_reads=counters.page_reads,
            node_visits=counters.btree_node_visits,
            similarity_computations=accumulator.evaluations,
            candidates=candidates,
            ranges=len(composed),
            wall_time=timer.elapsed,
        )
        return KNNResult(
            videos=tuple(video for video, _ in ranked),
            scores=tuple(score for _, score in ranked),
            stats=stats,
        )
