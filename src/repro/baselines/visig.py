"""The video-signature (ViSig) baseline of Cheung & Zakhor (ref [6]).

A set of *seed vectors* is drawn once, shared by every video in the
database.  A video's signature assigns to each seed the video frame
closest to it.  Two videos are compared seed-by-seed: the similarity is
the fraction of seeds whose assigned frames are within ``epsilon`` of each
other.  The paper criticises the method for exactly the failure mode this
implementation exhibits: a seed may sample *non-matching* frames from two
almost-identical sequences, and performance is sensitive to the number of
seeds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.counters import CostCounters
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_matrix, check_positive

__all__ = ["VideoSignature", "VideoSignatureIndex"]


@dataclass(frozen=True)
class VideoSignature:
    """A video's ViSig: its closest frame to each shared seed.

    Attributes
    ----------
    video_id:
        Identifier of the summarised video.
    assigned:
        Assigned frames, shape ``(num_seeds, n)``; row ``s`` is the video
        frame closest to seed ``s``.
    num_frames:
        Length of the original video.
    """

    video_id: int
    assigned: np.ndarray
    num_frames: int

    @property
    def num_seeds(self) -> int:
        """Number of seed vectors."""
        return self.assigned.shape[0]


class VideoSignatureIndex:
    """Generates and compares ViSig summaries under one shared seed set.

    Parameters
    ----------
    dim:
        Feature dimensionality.
    num_seeds:
        Number of shared seed vectors.
    seed:
        RNG seed for drawing the seed vectors.
    simplex_seeds:
        Draw seeds from the probability simplex (Dirichlet) so they live
        where histogram features do; plain uniform cube draws otherwise.
    """

    def __init__(
        self,
        dim: int,
        num_seeds: int = 16,
        *,
        seed=None,
        simplex_seeds: bool = True,
    ) -> None:
        if not isinstance(dim, int) or dim < 1:
            raise ValueError(f"dim must be a positive int, got {dim}")
        if not isinstance(num_seeds, int) or num_seeds < 1:
            raise ValueError(f"num_seeds must be a positive int, got {num_seeds}")
        rng = ensure_rng(seed)
        if simplex_seeds:
            self._seeds = rng.dirichlet(np.full(dim, 0.5), size=num_seeds)
        else:
            self._seeds = rng.uniform(0.0, 1.0, size=(num_seeds, dim))
        self._dim = dim

    @property
    def seeds(self) -> np.ndarray:
        """The shared seed vectors, shape ``(num_seeds, n)``."""
        return self._seeds.copy()

    @property
    def num_seeds(self) -> int:
        """Number of shared seed vectors."""
        return self._seeds.shape[0]

    def summarize(self, video_id: int, frames) -> VideoSignature:
        """Build the ViSig of one video."""
        frames = check_matrix(frames, "frames", cols=self._dim, min_rows=1)
        diff = self._seeds[:, None, :] - frames[None, :, :]
        distances = np.linalg.norm(diff, axis=2)  # (num_seeds, f)
        closest = np.argmin(distances, axis=1)
        return VideoSignature(
            video_id=video_id,
            assigned=frames[closest].copy(),
            num_frames=frames.shape[0],
        )

    def similarity(
        self,
        a: VideoSignature,
        b: VideoSignature,
        epsilon: float,
        counters: CostCounters | None = None,
    ) -> float:
        """Fraction of seeds whose assigned frames match within epsilon."""
        if a.num_seeds != self.num_seeds or b.num_seeds != self.num_seeds:
            raise ValueError("signatures were built with a different seed set")
        epsilon = check_positive(epsilon, "epsilon")
        distances = np.linalg.norm(a.assigned - b.assigned, axis=1)
        if counters is not None:
            counters.distance_computations += distances.size
        return float(np.mean(distances <= epsilon))
