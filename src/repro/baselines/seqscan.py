"""Sequential scan over the ViTri heap.

The brute-force comparator of Figures 17-19: every heap data page is read
and every (query ViTri, database ViTri) pair is evaluated.  Because the
B+-tree's key filter is lossless (pruned pairs provably share zero
frames), the sequential scan returns *exactly* the same KNN results as
:class:`~repro.core.index.VitriIndex` — only the cost differs, which the
tests assert and the benchmarks plot.
"""

from __future__ import annotations

from repro.core.index import (
    KNNResult,
    QueryStats,
    TOMBSTONE_VIDEO_ID,
    VitriIndex,
)
from repro.core.scoring import ScoreAccumulator
from repro.core.vitri import VideoSummary
from repro.storage.serialization import ViTriColumns
from repro.utils.counters import CostCounters, Timer

__all__ = ["SequentialScan"]


class SequentialScan:
    """Brute-force KNN over an index's heap file.

    Shares the heap (and its counted buffer pool) with the
    :class:`VitriIndex` it scans, so I/O numbers are directly comparable.
    """

    def __init__(self, index: VitriIndex) -> None:
        if not isinstance(index, VitriIndex):
            raise TypeError("index must be a VitriIndex")
        self._index = index

    def knn(self, query: VideoSummary, k: int, *, cold: bool = True) -> KNNResult:
        """Top-``k`` most similar videos by scanning every ViTri record.

        Parameters
        ----------
        query:
            ViTri summary of the query video.
        k:
            Number of results.
        cold:
            Clear the heap's buffer pool first (default: a sequential scan
            is always cold in the paper's model).
        """
        if not isinstance(query, VideoSummary):
            raise TypeError("query must be a VideoSummary")
        if query.dim != self._index.dim:
            raise ValueError(
                f"query dimension {query.dim} != index dimension "
                f"{self._index.dim}"
            )
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise ValueError(f"k must be a positive int, got {k}")

        heap = self._index.heap
        codec = self._index.codec
        video_frames = self._index.video_frames
        if cold:
            heap.buffer_pool.clear()

        # Per-query bundle: the scan's page accesses are attributed to
        # this query alone (never derived from global pool deltas).
        counters = CostCounters()
        accumulator = ScoreAccumulator(query, video_frames)
        candidates = 0

        with Timer() as timer:
            # Page-batched scan: each heap page is decoded with a single
            # columnar buffer view instead of one decode per record.
            pages = [
                codec.decode_columns(block, used, counters=counters)
                for _, used, block in heap.scan_batches(counters=counters)
            ]
            columns = ViTriColumns.concat(pages, codec.dim)
            columns = columns.take(columns.video_ids != TOMBSTONE_VIDEO_ID)
            candidates = len(columns)
            if candidates:
                for i in range(len(query.vitris)):
                    accumulator.evaluate_arrays(
                        i,
                        columns.video_ids,
                        columns.vitri_ids,
                        columns.counts,
                        columns.radii,
                        columns.positions,
                    )
            ranked = accumulator.ranked(k)
        stats = QueryStats(
            page_requests=counters.page_requests,
            physical_reads=counters.page_reads,
            node_visits=0,
            similarity_computations=accumulator.evaluations,
            candidates=candidates,
            ranges=0,
            wall_time=timer.elapsed,
        )
        return KNNResult(
            videos=tuple(video for video, _ in ranked),
            scores=tuple(score for _, score in ranked),
            stats=stats,
        )
