"""Baseline methods the paper compares against.

* :mod:`repro.baselines.keyframe` — the keyframe method of Chang et al.
  [reference 5]: summarise each video into ``k`` representative frames and
  measure similarity as the percentage of similar keyframes.
* :mod:`repro.baselines.visig` — the video-signature method of Cheung &
  Zakhor [reference 6]: shared random seed vectors, each video represented
  by its closest frame to every seed.
* :mod:`repro.baselines.seqscan` — sequential scan over the ViTri heap:
  the same similarity model as the index, with every data page read and
  every pair evaluated (the I/O / CPU upper bound in Figures 17-19).
* :mod:`repro.baselines.pyramid` — the Pyramid technique [Berchtold et
  al., reference 2]: the other classic high-dimensional-to-1-D mapping,
  over the same B+-tree substrate.
* :mod:`repro.baselines.gaussian` — the statistical-distribution category
  [references 8, 14]: one diagonal Gaussian per video with Bhattacharyya
  similarity.
* :mod:`repro.baselines.idistance` — the original multi-partition
  iDistance [reference 15], whose single-reference simplification the
  paper adopts.
"""

from __future__ import annotations

from repro.baselines.gaussian import (
    GaussianSummary,
    bhattacharyya_similarity,
    summarize_gaussian,
)
from repro.baselines.idistance import MultiRefIndex
from repro.baselines.keyframe import (
    KeyframeSummary,
    keyframe_similarity,
    summarize_keyframes,
)
from repro.baselines.pyramid import PyramidIndex, pyramid_value
from repro.baselines.seqscan import SequentialScan
from repro.baselines.visig import VideoSignature, VideoSignatureIndex

__all__ = [
    "GaussianSummary",
    "bhattacharyya_similarity",
    "summarize_gaussian",
    "KeyframeSummary",
    "MultiRefIndex",
    "keyframe_similarity",
    "summarize_keyframes",
    "PyramidIndex",
    "pyramid_value",
    "SequentialScan",
    "VideoSignature",
    "VideoSignatureIndex",
]
