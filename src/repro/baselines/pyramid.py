"""The Pyramid technique as an alternative 1-D transformation.

The paper's related work names two typical high-dimensional-to-1-D
mappings: iDistance (which the paper's transform generalises) and the
Pyramid technique of Berchtold, Boehm and Kriegel (SIGMOD 1998).  This
module implements the latter over the same B+-tree substrate, as an extra
comparator for the Figure 17/18-style studies.

Mapping
-------
The unit data space ``[0, 1]^d`` is split into ``2d`` pyramids meeting at
the centre.  For a point ``v`` with centred coordinates
``v_hat = v - 0.5``, the pyramid number is determined by the coordinate
of largest magnitude (``j_max``): pyramid ``j_max`` when that coordinate
is negative, ``j_max + d`` otherwise.  The *pyramid value* is

    pv(v) = pyramid_number + |v_hat[j_max]|

and is indexed in a B+-tree.

Range queries
-------------
A KNN query's per-ViTri search sphere is enclosed in an axis-aligned box;
for each of the ``2d`` pyramids the box maps to at most one interval of
heights (the original paper's Lemma), giving at most ``2d`` B+-tree range
searches whose union is a superset of the true candidates.  Exactness is
preserved the same way as in the distance transform: pruned points are
provably outside the search sphere, and surviving candidates are scored
with the full similarity measure.
"""

from __future__ import annotations

import numpy as np

from repro.btree.tree import BPlusTree
from repro.core.composition import compose_ranges
from repro.core.index import KNNResult, QueryStats, VitriIndex
from repro.core.scoring import ScoreAccumulator
from repro.core.vitri import VideoSummary
from repro.utils.counters import CostCounters, Timer
from repro.utils.validation import check_vector
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager

__all__ = ["PyramidIndex", "pyramid_value", "query_ranges"]


def pyramid_value(point: np.ndarray) -> float:
    """The Pyramid-technique 1-D key of a point in ``[0, 1]^d``."""
    point = check_vector(point, "point")
    centred = point - 0.5
    j_max = int(np.argmax(np.abs(centred)))
    dim = centred.shape[0]
    pyramid = j_max if centred[j_max] < 0.0 else j_max + dim
    return float(pyramid) + float(abs(centred[j_max]))


def _interval_min_max(low: float, high: float) -> tuple[float, float]:
    """MIN/MAX of |t| over t in [low, high] (centred coordinates)."""
    if low <= 0.0 <= high:
        minimum = 0.0
    else:
        minimum = min(abs(low), abs(high))
    return minimum, max(abs(low), abs(high))


def query_ranges(
    box_low: np.ndarray, box_high: np.ndarray
) -> list[tuple[float, float]]:
    """Pyramid-value intervals intersecting an axis-aligned query box.

    Parameters
    ----------
    box_low, box_high:
        Box corners in data coordinates (clipped to ``[0, 1]`` internally).

    Returns
    -------
    list[tuple[float, float]]
        At most ``2d`` key ranges ``[pyramid + h_low, pyramid + h_high]``.
    """
    box_low = check_vector(box_low, "box_low")
    box_high = check_vector(box_high, "box_high", dim=box_low.shape[0])
    low = np.clip(box_low, 0.0, 1.0) - 0.5
    high = np.clip(box_high, 0.0, 1.0) - 0.5
    if np.any(high < low):
        raise ValueError("box_high must dominate box_low")
    dim = low.shape[0]
    mins = np.empty(dim)
    for j in range(dim):
        mins[j], _ = _interval_min_max(float(low[j]), float(high[j]))

    ranges: list[tuple[float, float]] = []
    for j in range(dim):
        other_min = float(np.max(np.delete(mins, j))) if dim > 1 else 0.0
        # Negative-side pyramid j: points with v_hat[j] <= 0 dominating.
        if low[j] < 0.0:
            height_high = float(-low[j])
            height_low = max(float(max(0.0, -high[j])), other_min, mins[j])
            if height_low <= height_high:
                ranges.append((j + height_low, j + height_high))
        # Positive-side pyramid j + d.
        if high[j] > 0.0:
            height_high = float(high[j])
            height_low = max(float(max(0.0, low[j])), other_min, mins[j])
            if height_low <= height_high:
                ranges.append((dim + j + height_low, dim + j + height_high))
    return ranges


class PyramidIndex:
    """Pyramid-technique index over the ViTris of a :class:`VitriIndex`.

    Reuses the source index's summaries (via its heap) and epsilon; builds
    its own B+-tree keyed by pyramid values.  Query results are identical
    to the source index's — only the I/O profile differs.

    Parameters
    ----------
    source:
        A built :class:`VitriIndex` supplying records and metadata.
    buffer_capacity:
        LRU capacity of the pyramid tree's buffer pool.
    """

    def __init__(self, source: VitriIndex, *, buffer_capacity: int = 256) -> None:
        if not isinstance(source, VitriIndex):
            raise TypeError("source must be a VitriIndex")
        self._source = source
        self._codec = source._codec
        self._epsilon = source.epsilon
        self._dim = source.dim
        self._video_frames = source.video_frames

        entries: list[tuple[float, bytes]] = []
        for _, payload in source.heap.scan():
            record = self._codec.decode(payload)
            entries.append((pyramid_value(record.position), payload))
        entries.sort(key=lambda item: item[0])
        self._btree = BPlusTree.create(
            BufferPool(Pager(), capacity=buffer_capacity),
            payload_size=self._codec.record_size,
        )
        self._btree.bulk_load(entries)

    @property
    def btree(self) -> BPlusTree:
        """The underlying B+-tree over pyramid values."""
        return self._btree

    @property
    def num_vitris(self) -> int:
        """Number of indexed ViTris."""
        return self._btree.num_entries

    def clear_caches(self) -> None:
        """Drop the buffer pool (cold-start a measurement)."""
        self._btree.buffer_pool.clear()

    def knn(self, query: VideoSummary, k: int, *, cold: bool = False) -> KNNResult:
        """Top-``k`` most similar videos via pyramid-value range searches."""
        if not isinstance(query, VideoSummary):
            raise TypeError("query must be a VideoSummary")
        if query.dim != self._dim:
            raise ValueError(
                f"query dimension {query.dim} != index dimension {self._dim}"
            )
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise ValueError(f"k must be a positive int, got {k}")
        if cold:
            self.clear_caches()

        # Per-query bundle: costs are attributed to this query alone,
        # never derived from global pool-counter deltas.
        counters = CostCounters()
        accumulator = ScoreAccumulator(query, self._video_frames)
        candidates = 0
        with Timer() as timer:
            # Per query ViTri: its search sphere's bounding box -> pyramid
            # ranges.  Then compose all ranges and evaluate candidates
            # against every query ViTri whose sphere could reach them
            # (determined exactly by centre distance below).
            all_ranges: list[tuple[float, float]] = []
            gammas = [
                vitri.radius + self._epsilon / 2.0 for vitri in query.vitris
            ]
            for vitri, gamma in zip(query.vitris, gammas):
                all_ranges.extend(
                    query_ranges(
                        vitri.position - gamma, vitri.position + gamma
                    )
                )
            seen_vitri_pairs: set[tuple[int, int]] = set()
            for low, high in compose_ranges(all_ranges):
                for _, payload in self._btree.range_search(
                    low, high, counters=counters
                ):
                    candidates += 1
                    record = self._codec.decode(payload)
                    relevant = []
                    for index, (vitri, gamma) in enumerate(
                        zip(query.vitris, gammas)
                    ):
                        pair = (index, record.vitri_id)
                        if pair in seen_vitri_pairs:
                            continue
                        distance = float(
                            np.linalg.norm(record.position - vitri.position)
                        )
                        if distance <= gamma:
                            relevant.append(index)
                            seen_vitri_pairs.add(pair)
                    accumulator.evaluate(record, relevant)
            ranked = accumulator.ranked(k)

        stats = QueryStats(
            page_requests=counters.page_requests,
            physical_reads=counters.page_reads,
            node_visits=counters.btree_node_visits,
            similarity_computations=accumulator.evaluations,
            candidates=candidates,
            ranges=len(compose_ranges(all_ranges)),
            wall_time=timer.elapsed,
        )
        return KNNResult(
            videos=tuple(video for video, _ in ranked),
            scores=tuple(score for _, score in ranked),
            stats=stats,
        )
