"""Temporal-order-aware ViTri similarity.

``summarize_video`` emits a video's ViTris ordered by their earliest
member frame, so a summary carries the sequence's coarse temporal
structure for free.  The order-sensitive similarity aligns the two ViTri
sequences *monotonically* — cluster pairs on the alignment may not cross
in time — and maximises the total estimated shared frames over the
alignment (a weighted longest-common-subsequence):

    A(X, Y) = max over monotone alignments of sum n_{i_a, j_a}

    temporal_sim(X, Y) = 2 * A(X, Y) / (|X| + |Y|)

For videos whose content matches in the same order this coincides with
the order-robust measure; shuffling one video's scenes leaves the
order-robust measure unchanged but reduces the temporal one — the exact
distinction the paper's future-work section asks for.
"""

from __future__ import annotations

import numpy as np

from repro.core.similarity import shared_frames_matrix
from repro.core.vitri import VideoSummary
from repro.utils.counters import CostCounters

__all__ = ["align_summaries", "temporal_video_similarity"]


def align_summaries(
    x: VideoSummary, y: VideoSummary, counters: CostCounters | None = None
) -> tuple[float, list[tuple[int, int]]]:
    """Optimal monotone alignment of two ViTri sequences.

    Returns
    -------
    (total, pairs)
        ``total`` is the maximal summed estimated-shared-frames over any
        monotone alignment; ``pairs`` the aligned ``(i, j)`` cluster index
        pairs in temporal order.
    """
    if not isinstance(x, VideoSummary) or not isinstance(y, VideoSummary):
        raise TypeError("align_summaries expects two VideoSummary objects")
    matrix = shared_frames_matrix(x, y, counters)
    rows, cols = matrix.shape

    # Weighted LCS dynamic programme.
    table = np.zeros((rows + 1, cols + 1))
    for i in range(1, rows + 1):
        for j in range(1, cols + 1):
            table[i, j] = max(
                table[i - 1, j],
                table[i, j - 1],
                table[i - 1, j - 1] + matrix[i - 1, j - 1],
            )

    # Trace back the aligned pairs.
    pairs: list[tuple[int, int]] = []
    i, j = rows, cols
    while i > 0 and j > 0:
        if table[i, j] == table[i - 1, j]:
            i -= 1
        elif table[i, j] == table[i, j - 1]:
            j -= 1
        else:
            if matrix[i - 1, j - 1] > 0.0:
                pairs.append((i - 1, j - 1))
            i -= 1
            j -= 1
    pairs.reverse()
    return float(table[rows, cols]), pairs


def temporal_video_similarity(
    x: VideoSummary, y: VideoSummary, counters: CostCounters | None = None
) -> float:
    """Order-sensitive video similarity in ``[0, 1]``.

    ``2 * A / (|X| + |Y|)`` where ``A`` is the maximal aligned estimated
    shared frames; equals the order-robust measure when the matching
    clusters appear in the same order, and is strictly smaller when the
    temporal order disagrees.
    """
    total, _ = align_summaries(x, y, counters)
    similarity = 2.0 * total / (x.num_frames + y.num_frames)
    return min(similarity, 1.0)
