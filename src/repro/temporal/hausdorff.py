"""Hausdorff distance between frame sets.

Used in related work (reference [5]) to measure the *maximal*
dissimilarity between two shots: the directed Hausdorff distance from X
to Y is the largest distance any frame of X must travel to reach its
nearest frame of Y; the (symmetric) Hausdorff distance is the larger of
the two directions.  A single outlier frame dominates the measure — the
sensitivity the ViTri density model avoids.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_matrix

__all__ = ["directed_hausdorff", "hausdorff_distance"]

_BLOCK = 1024


def directed_hausdorff(frames_x, frames_y) -> float:
    """``max over x of min over y of d(x, y)``."""
    frames_x = check_matrix(frames_x, "frames_x", min_rows=1)
    frames_y = check_matrix(
        frames_y, "frames_y", cols=frames_x.shape[1], min_rows=1
    )
    worst = 0.0
    y_sq = np.sum(frames_y * frames_y, axis=1)
    for start in range(0, frames_x.shape[0], _BLOCK):
        block = frames_x[start : start + _BLOCK]
        sq = (
            np.sum(block * block, axis=1)[:, None]
            - 2.0 * (block @ frames_y.T)
            + y_sq[None, :]
        )
        np.clip(sq, 0.0, None, out=sq)
        nearest = np.sqrt(sq.min(axis=1))
        worst = max(worst, float(nearest.max()))
    return worst


def hausdorff_distance(frames_x, frames_y) -> float:
    """Symmetric Hausdorff distance: the larger directed distance."""
    return max(
        directed_hausdorff(frames_x, frames_y),
        directed_hausdorff(frames_y, frames_x),
    )
