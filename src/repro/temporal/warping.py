"""Dynamic-time-warping distance between frame sequences.

The warping distance (related work, reference [13]) measures the temporal
difference between two sequences: frames must be matched monotonically in
time, but one frame may absorb a run of the other sequence's frames
(handling different frame rates / dropped frames).  Cost is the sum of
Euclidean distances along the optimal warping path.

Complexity is ``O(|X| * |Y|)`` time — exactly the expense the ViTri
summary avoids; the implementation exists as a comparator and for the
temporal extension's evaluation.  An optional Sakoe-Chiba band restricts
the path to ``|i - j| <= band`` for a linear-time approximation.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_matrix

__all__ = ["warping_distance"]


def warping_distance(
    frames_x,
    frames_y,
    *,
    band: int | None = None,
    normalise: bool = False,
) -> float:
    """Dynamic-time-warping distance between two frame sequences.

    Parameters
    ----------
    frames_x, frames_y:
        Frame matrices of shapes ``(fx, n)`` and ``(fy, n)``.
    band:
        Optional Sakoe-Chiba band half-width; ``None`` means unconstrained.
        Must satisfy ``band >= |fx - fy|`` for a path to exist.
    normalise:
        Divide the path cost by the path-length upper bound
        ``fx + fy`` so sequences of different lengths are comparable.

    Returns
    -------
    float
        The (optionally normalised) warping distance.
    """
    frames_x = check_matrix(frames_x, "frames_x", min_rows=1)
    frames_y = check_matrix(
        frames_y, "frames_y", cols=frames_x.shape[1], min_rows=1
    )
    rows = frames_x.shape[0]
    cols = frames_y.shape[0]
    if band is not None:
        if not isinstance(band, int) or isinstance(band, bool) or band < 0:
            raise ValueError(f"band must be a non-negative int, got {band}")
        if band < abs(rows - cols):
            raise ValueError(
                f"band {band} is narrower than the length difference "
                f"{abs(rows - cols)}; no warping path exists"
            )

    # Local cost matrix (blocked would save memory; sizes here are the
    # comparator's problem, not the index's).
    diff = frames_x[:, None, :] - frames_y[None, :, :]
    cost = np.sqrt(np.sum(diff * diff, axis=2))

    accumulated = np.full((rows + 1, cols + 1), np.inf)
    accumulated[0, 0] = 0.0
    for i in range(1, rows + 1):
        if band is None:
            j_start, j_end = 1, cols
        else:
            j_start = max(1, i - band)
            j_end = min(cols, i + band)
        for j in range(j_start, j_end + 1):
            best_previous = min(
                accumulated[i - 1, j],      # x frame absorbs
                accumulated[i, j - 1],      # y frame absorbs
                accumulated[i - 1, j - 1],  # step both
            )
            accumulated[i, j] = cost[i - 1, j - 1] + best_previous

    distance = float(accumulated[rows, cols])
    if normalise:
        distance /= rows + cols
    return distance
