"""Temporal-order-aware video similarity (the paper's future work).

Section 7 names "sequence alignment and temporal-order" as the planned
extension of the order-robust ViTri measure; the related work measures it
compares against include the warping distance [Naphade et al., ref 13]
and the Hausdorff distance [Chang et al., ref 5].  This package provides
all three:

* :func:`repro.temporal.warping_distance` — dynamic-time-warping distance
  between frame sequences, with an optional Sakoe-Chiba band;
* :func:`repro.temporal.hausdorff_distance` — the maximal-dissimilarity
  measure between two frame sets;
* :func:`repro.temporal.temporal_video_similarity` — an order-sensitive
  ViTri similarity: the videos' ViTris (which ``summarize_video`` emits
  in temporal order) are aligned monotonically, maximising the total
  estimated shared frames over non-crossing cluster pairs.
"""

from __future__ import annotations

from repro.temporal.alignment import align_summaries, temporal_video_similarity
from repro.temporal.hausdorff import directed_hausdorff, hausdorff_distance
from repro.temporal.warping import warping_distance

__all__ = [
    "align_summaries",
    "temporal_video_similarity",
    "directed_hausdorff",
    "hausdorff_distance",
    "warping_distance",
]
