"""``Generate_Clusters`` — the paper's recursive bisecting algorithm (Fig. 3).

A video's frames are recursively split with 2-means until every cluster's
*refined* radius ``min(R_max, mu + sigma)`` is at most ``epsilon / 2``,
where ``R_max`` is the largest member-to-centre distance and ``mu``/``sigma``
are the mean and (population) standard deviation of those distances.  The
refinement trims the influence of outlier frames: a 10% radius increase
inflates a 64-dimensional hypersphere's volume ~445x, so a tight radius is
what makes the density representation meaningful.

Termination guards beyond the paper
-----------------------------------
* A cluster whose points are all (numerically) identical is accepted with
  radius 0 regardless of ``epsilon`` — it cannot be split.
* If 2-means fails to separate the points (one side empty), the cluster is
  split at the median of the highest-variance coordinate.
* ``max_depth`` bounds the recursion; on hitting it the cluster is accepted
  as-is with its refined radius (which may exceed ``epsilon / 2``).  The
  default depth (48) is far beyond what real data reaches because each
  2-means split at least halves the frame count along some direction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.kmeans import kmeans
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_matrix, check_positive

__all__ = ["FrameCluster", "generate_clusters"]


@dataclass(frozen=True)
class FrameCluster:
    """One cluster of similar frames produced by ``Generate_Clusters``.

    Attributes
    ----------
    center:
        Cluster centroid ``O``, shape ``(n,)``.
    radius:
        Refined radius ``min(R_max, mu + sigma)``.
    count:
        Number of member frames ``|C|``.
    member_indices:
        Indices of the member frames in the original sequence.
    mean_distance, std_distance:
        ``mu`` and ``sigma`` of the member-to-centre distances.
    max_distance:
        Unrefined radius ``R_max``.
    """

    center: np.ndarray
    radius: float
    count: int
    member_indices: np.ndarray
    mean_distance: float
    std_distance: float
    max_distance: float


def _describe(frames: np.ndarray, indices: np.ndarray) -> FrameCluster:
    """Build a :class:`FrameCluster` for the given member rows."""
    members = frames[indices]
    center = members.mean(axis=0)
    distances = np.linalg.norm(members - center, axis=1)
    max_distance = float(distances.max())
    mean_distance = float(distances.mean())
    std_distance = float(distances.std())
    radius = min(max_distance, mean_distance + std_distance)
    return FrameCluster(
        center=center,
        radius=radius,
        count=int(indices.shape[0]),
        member_indices=np.sort(indices),
        mean_distance=mean_distance,
        std_distance=std_distance,
        max_distance=max_distance,
    )


def _median_split(
    frames: np.ndarray, indices: np.ndarray
) -> tuple[np.ndarray, np.ndarray] | None:
    """Fallback split at the median of the highest-variance coordinate.

    Returns ``None`` when the points cannot be separated (all identical).
    """
    members = frames[indices]
    variances = members.var(axis=0)
    axis = int(np.argmax(variances))
    if variances[axis] <= 0.0:
        return None
    values = members[:, axis]
    median = np.median(values)
    left_mask = values <= median
    if left_mask.all() or not left_mask.any():
        # Median coincides with the max; fall back to a strict comparison.
        left_mask = values < median
        if left_mask.all() or not left_mask.any():
            return None
    return indices[left_mask], indices[~left_mask]


def generate_clusters(
    frames,
    epsilon: float,
    *,
    max_depth: int = 48,
    seed=None,
) -> list[FrameCluster]:
    """Summarise a frame sequence into clusters of similar frames.

    Parameters
    ----------
    frames:
        Matrix of shape ``(f, n)``: the video's frame feature vectors.
    epsilon:
        Frame similarity threshold; clusters are accepted once their refined
        radius is at most ``epsilon / 2``, which guarantees any two member
        frames are within ``epsilon`` of each other.
    max_depth:
        Recursion bound (safety guard; see module docstring).
    seed:
        Seed / generator for the 2-means initialisation.

    Returns
    -------
    list[FrameCluster]
        The accepted clusters, in deterministic order of their smallest
        member frame index.  Every frame belongs to exactly one cluster.
    """
    frames = check_matrix(frames, "frames", min_rows=1)
    epsilon = check_positive(epsilon, "epsilon")
    if not isinstance(max_depth, int) or max_depth < 1:
        raise ValueError(f"max_depth must be a positive int, got {max_depth}")
    rng = ensure_rng(seed)

    accepted: list[FrameCluster] = []
    # Iterative worklist instead of recursion: (indices, depth).
    stack: list[tuple[np.ndarray, int]] = [
        (np.arange(frames.shape[0], dtype=np.int64), 0)
    ]
    threshold = epsilon / 2.0
    while stack:
        indices, depth = stack.pop()
        cluster = _describe(frames, indices)
        if (
            cluster.radius <= threshold
            or cluster.count == 1
            or depth >= max_depth
        ):
            accepted.append(cluster)
            continue
        split = _split_in_two(frames, indices, rng)
        if split is None:
            # All member frames identical: nothing to gain by splitting.
            accepted.append(cluster)
            continue
        left, right = split
        stack.append((left, depth + 1))
        stack.append((right, depth + 1))

    accepted.sort(key=lambda c: int(c.member_indices[0]))
    return accepted


def _split_in_two(
    frames: np.ndarray, indices: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray] | None:
    """Split the member set with 2-means, falling back to a median split."""
    members = frames[indices]
    result = kmeans(members, 2, seed=rng)
    left = indices[result.labels == 0]
    right = indices[result.labels == 1]
    if left.shape[0] and right.shape[0]:
        return left, right
    return _median_split(frames, indices)
