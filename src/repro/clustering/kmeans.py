"""Lloyd's k-means with k-means++ seeding, from scratch on numpy.

The bisecting clusters-generation algorithm of the paper only ever calls
``k-means(X, 2)``, but the implementation is a general k-means so it can
also back the keyframe baseline (which summarises a video into ``k``
representatives) and any future extensions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_matrix

__all__ = ["KMeansResult", "kmeans"]


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of one k-means run.

    Attributes
    ----------
    centers:
        Cluster centres, shape ``(k, n)``.
    labels:
        Cluster assignment per row of the input, shape ``(rows,)``.
    inertia:
        Sum of squared distances of points to their assigned centre.
    iterations:
        Number of Lloyd iterations performed.
    converged:
        Whether the assignment stopped changing before ``max_iter``.
    """

    centers: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int
    converged: bool

    @property
    def k(self) -> int:
        """Number of clusters."""
        return self.centers.shape[0]


def _squared_distances(data: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances, shape ``(rows, k)``."""
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2, clipped against round-off.
    cross = data @ centers.T
    sq = (
        np.sum(data * data, axis=1)[:, None]
        - 2.0 * cross
        + np.sum(centers * centers, axis=1)[None, :]
    )
    return np.clip(sq, 0.0, None)


def _kmeanspp_init(
    data: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: iteratively sample centres proportional to the
    squared distance from the nearest centre chosen so far."""
    rows = data.shape[0]
    centers = np.empty((k, data.shape[1]), dtype=np.float64)
    first = int(rng.integers(rows))
    centers[0] = data[first]
    closest_sq = _squared_distances(data, centers[:1]).ravel()
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0.0:
            # All remaining points coincide with an existing centre; any
            # choice gives the same (degenerate) clustering.
            pick = int(rng.integers(rows))
        else:
            pick = int(rng.choice(rows, p=closest_sq / total))
        centers[i] = data[pick]
        new_sq = _squared_distances(data, centers[i : i + 1]).ravel()
        np.minimum(closest_sq, new_sq, out=closest_sq)
    return centers


def _repair_empty_clusters(
    data: np.ndarray,
    centers: np.ndarray,
    labels: np.ndarray,
    distances_sq: np.ndarray,
) -> None:
    """Re-seed any empty cluster with the point farthest from its centre."""
    k = centers.shape[0]
    counts = np.bincount(labels, minlength=k)
    for cluster in np.flatnonzero(counts == 0):
        assigned_sq = distances_sq[np.arange(data.shape[0]), labels]
        donor = int(np.argmax(assigned_sq))
        centers[cluster] = data[donor]
        labels[donor] = cluster
        counts = np.bincount(labels, minlength=k)


def kmeans(
    data,
    k: int,
    *,
    max_iter: int = 100,
    tol: float = 1e-8,
    seed=None,
) -> KMeansResult:
    """Cluster *data* into ``k`` groups with Lloyd's algorithm.

    Parameters
    ----------
    data:
        Matrix of shape ``(rows, n)``; rows are the points to cluster.
    k:
        Number of clusters; must satisfy ``1 <= k <= rows``.
    max_iter:
        Maximum number of Lloyd iterations.
    tol:
        Convergence threshold on the decrease of inertia.
    seed:
        ``None``, int, or :class:`numpy.random.Generator` for the k-means++
        seeding.

    Returns
    -------
    KMeansResult
    """
    data = check_matrix(data, "data", min_rows=1)
    if not isinstance(k, int) or isinstance(k, bool):
        raise TypeError("k must be an int")
    if k < 1 or k > data.shape[0]:
        raise ValueError(
            f"k must be in [1, number of rows = {data.shape[0]}], got {k}"
        )
    if not isinstance(max_iter, int) or max_iter < 1:
        raise ValueError(f"max_iter must be a positive int, got {max_iter}")
    rng = ensure_rng(seed)

    if k == 1:
        center = data.mean(axis=0, keepdims=True)
        sq = _squared_distances(data, center).ravel()
        return KMeansResult(
            centers=center,
            labels=np.zeros(data.shape[0], dtype=np.int64),
            inertia=float(sq.sum()),
            iterations=0,
            converged=True,
        )

    centers = _kmeanspp_init(data, k, rng)
    labels = np.zeros(data.shape[0], dtype=np.int64)
    previous_inertia = np.inf
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        distances_sq = _squared_distances(data, centers)
        labels = np.argmin(distances_sq, axis=1).astype(np.int64)
        _repair_empty_clusters(data, centers, labels, distances_sq)
        for cluster in range(k):
            members = data[labels == cluster]
            if members.shape[0]:
                centers[cluster] = members.mean(axis=0)
        inertia = float(
            _squared_distances(data, centers)[np.arange(data.shape[0]), labels].sum()
        )
        if previous_inertia - inertia <= tol:
            converged = True
            previous_inertia = inertia
            break
        previous_inertia = inertia

    return KMeansResult(
        centers=centers,
        labels=labels,
        inertia=float(previous_inertia),
        iterations=iteration,
        converged=converged,
    )
