"""Clustering substrate: k-means and the paper's recursive bisecting
clusters-generation algorithm (Figure 3).

* :mod:`repro.clustering.kmeans` — Lloyd's algorithm with k-means++
  seeding and empty-cluster repair, built from scratch on numpy.
* :mod:`repro.clustering.bisecting` — ``Generate_Clusters``: recursively
  2-means-split a video's frames until every cluster's refined radius
  ``min(R, mu + sigma)`` is at most ``epsilon / 2``.
"""

from __future__ import annotations

from repro.clustering.bisecting import FrameCluster, generate_clusters
from repro.clustering.kmeans import KMeansResult, kmeans

__all__ = ["FrameCluster", "generate_clusters", "KMeansResult", "kmeans"]
