"""Query composition (paper Section 5.2).

A KNN query summarised into ``M`` query ViTris produces ``M`` key ranges,
one per ViTri.  Searching them independently re-reads every leaf page shared
by overlapping ranges; *query composition* merges overlapping (or touching)
ranges into disjoint composed ranges first, so each leaf page is accessed
at most once per query.
"""

from __future__ import annotations

import math

__all__ = ["compose_ranges"]


def compose_ranges(
    ranges: list[tuple[float, float]]
) -> list[tuple[float, float]]:
    """Merge overlapping/touching key ranges into disjoint ones.

    Parameters
    ----------
    ranges:
        ``(low, high)`` pairs with ``low <= high``.  Order does not matter.

    Returns
    -------
    list[tuple[float, float]]
        Disjoint ranges sorted by their low end, whose union equals the
        union of the inputs.  Ranges that merely touch (``high == next
        low``) are merged, matching the closed-interval semantics of the
        B+-tree range search.
    """
    validated: list[tuple[float, float]] = []
    for low, high in ranges:
        low = float(low)
        high = float(high)
        if math.isnan(low) or math.isnan(high):
            raise ValueError("range bounds must not be NaN")
        if high < low:
            raise ValueError(f"invalid range: low {low} > high {high}")
        validated.append((low, high))
    if not validated:
        return []

    validated.sort()
    composed = [validated[0]]
    for low, high in validated[1:]:
        last_low, last_high = composed[-1]
        if low <= last_high:
            composed[-1] = (last_low, max(last_high, high))
        else:
            composed.append((low, high))
    return composed
