"""Video summarisation: frames -> clusters -> ViTris (paper Section 4.1).

Wraps :func:`repro.clustering.generate_clusters` and converts the accepted
clusters into :class:`~repro.core.vitri.ViTri` objects.

A configurable *radius floor* is applied: clusters of identical frames come
out of the clustering with radius exactly 0, which would make the density
infinite.  The floor (default ``epsilon / 1000``) keeps densities finite
without measurably changing any non-degenerate cluster; the substitution is
recorded in DESIGN.md.
"""

from __future__ import annotations

from repro.clustering.bisecting import generate_clusters
from repro.core.vitri import ViTri, VideoSummary
from repro.utils.validation import check_matrix, check_non_negative, check_positive

__all__ = ["summarize_video", "DEFAULT_RADIUS_FLOOR_FRACTION"]

DEFAULT_RADIUS_FLOOR_FRACTION = 1e-3
"""Radius floor as a fraction of ``epsilon`` when none is given."""


def summarize_video(
    video_id: int,
    frames,
    epsilon: float,
    *,
    min_radius: float | None = None,
    max_depth: int = 48,
    seed=None,
) -> VideoSummary:
    """Summarise one video's frames into a :class:`VideoSummary`.

    Parameters
    ----------
    video_id:
        Identifier recorded on the summary.
    frames:
        Matrix of shape ``(f, n)``: the video's frame feature vectors.
    epsilon:
        Frame similarity threshold; governs cluster granularity
        (clusters are split until their refined radius is <= ``epsilon/2``).
    min_radius:
        Radius floor for degenerate clusters; defaults to
        ``epsilon * 1e-3``.
    max_depth:
        Recursion bound forwarded to the clustering.
    seed:
        Seed for the 2-means initialisation (determinism).

    Returns
    -------
    VideoSummary
    """
    frames = check_matrix(frames, "frames", min_rows=1)
    epsilon = check_positive(epsilon, "epsilon")
    if min_radius is None:
        min_radius = epsilon * DEFAULT_RADIUS_FLOOR_FRACTION
    else:
        min_radius = check_non_negative(min_radius, "min_radius")

    clusters = generate_clusters(
        frames, epsilon, max_depth=max_depth, seed=seed
    )
    vitris = tuple(
        ViTri(
            position=cluster.center,
            radius=max(cluster.radius, min_radius),
            count=cluster.count,
        )
        for cluster in clusters
    )
    return VideoSummary(
        video_id=video_id, vitris=vitris, num_frames=frames.shape[0]
    )
