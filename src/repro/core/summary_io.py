"""Persistence for ViTri summaries.

Summarisation (the recursive 2-means clustering) is the pipeline's
expensive preprocessing step; pipelines that sweep index parameters or
rebuild indexes want to run it once per ``(corpus, epsilon)`` and reuse
the result.  Summaries are stored as a single compressed ``.npz``:

* ``video_ids``   — int64, one per summary;
* ``num_frames``  — int64, one per summary;
* ``offsets``     — int64 prefix offsets into the flat ViTri arrays;
* ``positions``   — float64 ``(total_vitris, dim)``;
* ``radii`` / ``counts`` — flat per-ViTri arrays;
* ``epsilon``     — the threshold the summaries were built with, so a
  load can refuse to feed a mismatched index.
"""

from __future__ import annotations

import numpy as np

from repro.core.vitri import VideoSummary, ViTri
from repro.utils.validation import check_positive

__all__ = ["load_summaries", "save_summaries"]


def save_summaries(path: str, summaries: list[VideoSummary], epsilon: float) -> None:
    """Write summaries (and the epsilon they were built with) to ``.npz``.

    Parameters
    ----------
    path:
        Output file path.
    summaries:
        Summaries of one corpus, all the same dimensionality.
    epsilon:
        The frame similarity threshold used to build them.
    """
    if not summaries:
        raise ValueError("cannot save zero summaries")
    epsilon = check_positive(epsilon, "epsilon")
    dims = {summary.dim for summary in summaries}
    if len(dims) != 1:
        raise ValueError(f"summaries have inconsistent dimensions: {dims}")

    video_ids = np.array([s.video_id for s in summaries], dtype=np.int64)
    num_frames = np.array([s.num_frames for s in summaries], dtype=np.int64)
    lengths = np.array([len(s) for s in summaries], dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(lengths)])
    positions = np.vstack([s.positions() for s in summaries])
    radii = np.concatenate([s.radii() for s in summaries])
    counts = np.concatenate([s.counts() for s in summaries])
    np.savez_compressed(
        path,
        video_ids=video_ids,
        num_frames=num_frames,
        offsets=offsets,
        positions=positions,
        radii=radii,
        counts=counts,
        epsilon=np.array([epsilon]),
    )


def load_summaries(
    path: str, *, expected_epsilon: float | None = None
) -> tuple[list[VideoSummary], float]:
    """Read summaries written by :func:`save_summaries`.

    Parameters
    ----------
    path:
        Input file path.
    expected_epsilon:
        When given, raise if the stored epsilon differs (feeding an index
        summaries built at a different threshold silently breaks the key
        filter's losslessness).

    Returns
    -------
    (summaries, epsilon)
    """
    with np.load(path) as data:
        epsilon = float(data["epsilon"][0])
        if expected_epsilon is not None and not np.isclose(
            epsilon, expected_epsilon
        ):
            raise ValueError(
                f"stored summaries use epsilon {epsilon}, expected "
                f"{expected_epsilon}"
            )
        video_ids = data["video_ids"]
        num_frames = data["num_frames"]
        offsets = data["offsets"]
        positions = data["positions"]
        radii = data["radii"]
        counts = data["counts"]

    summaries = []
    for index, video_id in enumerate(video_ids):
        start, stop = int(offsets[index]), int(offsets[index + 1])
        vitris = tuple(
            ViTri(
                position=positions[row],
                radius=float(radii[row]),
                count=int(counts[row]),
            )
            for row in range(start, stop)
        )
        summaries.append(
            VideoSummary(
                video_id=int(video_id),
                vitris=vitris,
                num_frames=int(num_frames[index]),
            )
        )
    return summaries, epsilon
