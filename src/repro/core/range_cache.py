"""Composed-range result cache: the tier below the exact-repeat cache.

The engine's result LRU only pays when the *whole query* repeats —
``(snapshot token, query fingerprint, k, method)`` must match exactly,
so the same hot video queried with a different ``k`` re-reads every
leaf.  :class:`RangeCache` memoises one level down: the raw
``(keys, records)`` block a composed search range pulls out of the
B+-tree.  Two queries that compose the same ranges share the blocks even
when their result-cache keys differ (different ``k``, different method,
a result entry that aged out of the smaller L1).

Three properties keep the tier exact:

* **Epoch scoping.**  Every entry is keyed on the index's content token,
  the same fingerprint the result cache uses — a block cached before an
  insert/remove becomes unreachable the moment the token moves, so a
  stale leaf image can never feed a fresh query.  Because a WAL-shipped
  replica is a byte-identical copy of its primary, tokens (and therefore
  cached keys) are portable across copies — that is what replica
  cache warming replays.
* **Raw blocks.**  Entries hold the *undecoded* arrays exactly as
  ``range_search_many`` returned them (owned copies, never views into
  pooled pages).  Decoding, masking and scoring still run per query, so
  the logical cost signature — ``records_scanned``, ``records_decoded``,
  ``similarity_computations``, ``candidates``, ``ranges`` — is identical
  with the cache on or off; only physical I/O (``page_requests``,
  ``node_visits``, ``physical_reads``) drops on a hit.
* **I/O outside the lock.**  A miss fetches through the caller's tree
  handle *after* releasing the cache lock, so concurrent workers never
  serialise on each other's page reads (two threads missing the same
  range fetch it twice and insert the same bytes — wasteful, never
  wrong).

``records_scanned`` is charged on hits (the block's records are handed
to the query as if freshly scanned) to keep the logical signature
exact; hits and misses are additionally tallied into
``counters.extra["range_cache_hits"/"range_cache_misses"]`` per query.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

from repro.utils.counters import CostCounters
from repro.utils.locks import make_lock

__all__ = ["RangeCache"]

_Block = tuple  # (keys ndarray, records ndarray)
_Key = tuple  # (token, low, high)


class RangeCache:
    """Size-bounded LRU of composed-range B+-tree blocks.

    Parameters
    ----------
    capacity:
        Maximum number of cached range blocks (>= 1).  One entry holds
        one range's keys/records arrays; size the tier to the hot
        working set, not the whole tree.
    """

    def __init__(self, capacity: int) -> None:
        if not isinstance(capacity, int) or isinstance(capacity, bool):
            raise TypeError("capacity must be an int")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._lock = make_lock("RangeCache._lock")
        self._entries: OrderedDict[_Key, _Block] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def capacity(self) -> int:
        """Maximum number of cached range blocks."""
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every cached block (hit/miss tallies are kept)."""
        with self._lock:
            self._entries.clear()

    def hot_ranges(self, token: str) -> list[tuple[float, float]]:
        """The ranges cached under ``token``, least-recently-used first.

        The warm set a freshly attached replica replays: iterating these
        in order and fetching them re-creates this cache's state (and
        pulls the backing leaves into the fetching view's buffer pool).
        """
        with self._lock:
            return [
                (low, high)
                for (entry_token, low, high) in self._entries
                if entry_token == token
            ]

    def fetch(
        self,
        token: str,
        ranges: list[tuple[float, float]],
        fetch_many: Callable[[list[tuple[float, float]]], list[_Block]],
        counters: CostCounters | None = None,
    ) -> list[_Block]:
        """Blocks for ``ranges`` in order, from cache or ``fetch_many``.

        ``fetch_many(missing)`` receives the cache-missing ranges (in
        their original relative order) and must return one block per
        range — the ``range_search_many`` contract.  It runs outside the
        cache lock.
        """
        blocks: list[_Block | None] = [None] * len(ranges)
        missing: list[int] = []
        hit_records = 0
        with self._lock:
            for position, (low, high) in enumerate(ranges):
                entry = self._entries.get((token, low, high))
                if entry is None:
                    missing.append(position)
                    self.misses += 1
                else:
                    self._entries.move_to_end((token, low, high))
                    blocks[position] = entry
                    hit_records += int(entry[0].size)
                    self.hits += 1
        if counters is not None:
            # Hits hand their records to the query exactly as a fresh
            # scan would; charging them keeps the logical cost signature
            # identical to the uncached path.
            counters.records_scanned += hit_records
            counters.extra["range_cache_hits"] = (
                counters.extra.get("range_cache_hits", 0)
                + len(ranges)
                - len(missing)
            )
            counters.extra["range_cache_misses"] = (
                counters.extra.get("range_cache_misses", 0) + len(missing)
            )
        if missing:
            fetched = fetch_many([ranges[position] for position in missing])
            if len(fetched) != len(missing):
                raise RuntimeError(
                    f"fetch_many returned {len(fetched)} blocks for "
                    f"{len(missing)} ranges"
                )
            with self._lock:
                for position, block in zip(missing, fetched):
                    blocks[position] = block
                    low, high = ranges[position]
                    self._entries[(token, low, high)] = block
                    self._entries.move_to_end((token, low, high))
                while len(self._entries) > self._capacity:
                    self._entries.popitem(last=False)
        return blocks  # type: ignore[return-value]

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"RangeCache(capacity={self._capacity}, "
                f"cached={len(self._entries)}, hits={self.hits}, "
                f"misses={self.misses})"
            )
