"""Video-level KNN scoring shared by every access method.

The ViTri index, the sequential scan and the pyramid-technique comparator
all produce streams of candidate ViTri records that must be folded into
the same video-level similarity:

* per candidate video, accumulate the estimated shared frames between
  each query ViTri and each of the video's ViTris;
* cap the query-side total per query ViTri at that cluster's frame count
  and the database-side total per database ViTri at its frame count (a
  frame cannot be counted twice);
* ``score = (capped query side + capped database side) /
  (query frames + video frames)``, clipped to 1.

Keeping this in one place guarantees the access methods return *exactly*
the same rankings — which the test suite asserts — and reduces each
method to its actual difference: which candidates it reads and at what
I/O cost.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Mapping

import numpy as np

from repro.core.similarity import _estimate_from_scalars
from repro.core.vitri import VideoSummary
from repro.storage.serialization import ViTriRecord

__all__ = ["ScoreAccumulator"]


class ScoreAccumulator:
    """Folds candidate ViTri records into video-level KNN scores.

    Parameters
    ----------
    query:
        The query video's ViTri summary.
    video_frames:
        Frame count per database video id (for the score denominator).

    Notes
    -----
    :meth:`evaluate` may be called several times for the same candidate
    record as long as each (query ViTri, database ViTri) pair is passed
    at most once overall — the naive range-search method relies on this.
    """

    def __init__(
        self, query: VideoSummary, video_frames: Mapping[int, int]
    ) -> None:
        self._query = query
        self._video_frames = video_frames
        self._m = len(query.vitris)
        self._dim = query.dim
        self._per_video_query: dict[int, np.ndarray] = {}
        self._per_video_db: dict[int, dict[int, float]] = defaultdict(dict)
        self._db_counts: dict[int, int] = {}
        self.evaluations = 0

    def evaluate(
        self, record: ViTriRecord, vitri_indices: Iterable[int]
    ) -> int:
        """Score one candidate against the given query-ViTri indices.

        Returns the number of similarity evaluations performed (the CPU
        cost unit).
        """
        performed = 0
        for index in vitri_indices:
            query_vitri = self._query.vitris[index]
            distance = float(
                np.linalg.norm(record.position - query_vitri.position)
            )
            estimate = _estimate_from_scalars(
                self._dim,
                query_vitri.radius,
                query_vitri.count,
                record.radius,
                record.count,
                distance,
            )
            performed += 1
            if estimate <= 0.0:
                continue
            video = record.video_id
            if video not in self._per_video_query:
                self._per_video_query[video] = np.zeros(self._m)
            self._per_video_query[video][index] += estimate
            per_db = self._per_video_db[video]
            per_db[record.vitri_id] = (
                per_db.get(record.vitri_id, 0.0) + estimate
            )
            self._db_counts[record.vitri_id] = record.count
        self.evaluations += performed
        return performed

    def evaluate_arrays(
        self,
        query_index: int,
        video_ids: np.ndarray,
        vitri_ids: np.ndarray,
        counts: np.ndarray,
        radii: np.ndarray,
        positions: np.ndarray,
    ) -> int:
        """Vectorised scoring of many candidates against one query ViTri.

        Equivalent to calling :meth:`evaluate` once per candidate with
        ``[query_index]``, but the distance and intersection math runs as
        one numpy batch.  Returns the number of similarity evaluations.
        """
        from repro.core.similarity import _estimate_batch

        query_vitri = self._query.vitris[query_index]
        distances = np.linalg.norm(positions - query_vitri.position, axis=1)
        estimates = _estimate_batch(
            self._dim,
            query_vitri.radius,
            query_vitri.count,
            radii,
            counts.astype(np.float64),
            distances,
        )
        performed = int(estimates.shape[0])
        self.evaluations += performed
        for position in np.flatnonzero(estimates > 0.0):
            estimate = float(estimates[position])
            video = int(video_ids[position])
            if video not in self._per_video_query:
                self._per_video_query[video] = np.zeros(self._m)
            self._per_video_query[video][query_index] += estimate
            per_db = self._per_video_db[video]
            vitri_id = int(vitri_ids[position])
            per_db[vitri_id] = per_db.get(vitri_id, 0.0) + estimate
            self._db_counts[vitri_id] = int(counts[position])
        return performed

    def scores(self) -> dict[int, float]:
        """Final per-video similarity scores in ``[0, 1]``."""
        scores: dict[int, float] = {}
        query_counts = self._query.counts().astype(np.float64)
        for video, per_query in self._per_video_query.items():
            count_query_side = float(np.minimum(query_counts, per_query).sum())
            count_db_side = sum(
                min(float(self._db_counts[vid]), total)
                for vid, total in self._per_video_db[video].items()
            )
            denominator = self._query.num_frames + self._video_frames[video]
            scores[video] = min(
                (count_query_side + count_db_side) / denominator, 1.0
            )
        return scores

    def ranked(self, k: int) -> list[tuple[int, float]]:
        """Top-``k`` (video, score) pairs, score-descending, id tie-break."""
        return sorted(
            self.scores().items(), key=lambda item: (-item[1], item[0])
        )[:k]
