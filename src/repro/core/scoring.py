"""Video-level KNN scoring shared by every access method.

The ViTri index, the sequential scan and the pyramid-technique comparator
all produce streams of candidate ViTri records that must be folded into
the same video-level similarity:

* per candidate video, accumulate the estimated shared frames between
  each query ViTri and each of the video's ViTris;
* cap the query-side total per query ViTri at that cluster's frame count
  and the database-side total per database ViTri at its frame count (a
  frame cannot be counted twice);
* ``score = (capped query side + capped database side) /
  (query frames + video frames)``, clipped to 1.

Keeping this in one place guarantees the access methods return *exactly*
the same rankings — which the test suite asserts — and reduces each
method to its actual difference: which candidates it reads and at what
I/O cost.

Bit-exactness contract
----------------------
:meth:`ScoreAccumulator.evaluate` (per record, Python control flow) is the
*scalar oracle*; :meth:`ScoreAccumulator.evaluate_arrays` is the
vectorized path.  Driven over the same candidate stream in the same
order, the two produce bit-identical scores, not merely close ones:

* the per-pair estimate comes from ``_estimate_from_scalars`` /
  ``_estimate_batch``, which share their elementwise primitives and are
  bit-identical lane by lane;
* per-cell accumulation order is preserved — the vectorized path defers
  all summation to ``scores()`` and folds the concatenated candidate
  stream with one ``np.bincount`` per cell kind, whose sequential
  left-to-right accumulation reproduces the oracle's ``+=`` chains
  exactly (summing per *batch* and adding partial sums would not: float
  addition is not associative);
* ``scores()`` folds each video's database-side totals in a canonical
  (vitri-id-sorted) order, since dict insertion order is the one thing
  the two traversals do not share.

``tests/test_vectorized_equivalence.py`` asserts all of this.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Mapping

import numpy as np

from repro.core.similarity import _estimate_from_scalars
from repro.core.vitri import VideoSummary
from repro.storage.serialization import ViTriRecord

__all__ = ["ScoreAccumulator"]


class ScoreAccumulator:
    """Folds candidate ViTri records into video-level KNN scores.

    Parameters
    ----------
    query:
        The query video's ViTri summary.
    video_frames:
        Frame count per database video id (for the score denominator).

    Notes
    -----
    :meth:`evaluate` may be called several times for the same candidate
    record as long as each (query ViTri, database ViTri) pair is passed
    at most once overall — the naive range-search method relies on this.
    """

    def __init__(
        self, query: VideoSummary, video_frames: Mapping[int, int]
    ) -> None:
        self._query = query
        self._video_frames = video_frames
        self._m = len(query.vitris)
        self._dim = query.dim
        self._per_video_query: dict[int, np.ndarray] = {}
        self._per_video_db: dict[int, dict[int, float]] = defaultdict(dict)
        self._db_counts: dict[int, int] = {}
        # Deferred vectorized contributions, folded on first scores() use:
        # (query_index, video_ids, vitri_ids, counts, estimates) per call.
        self._segments: list[
            tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = []
        self.evaluations = 0

    def evaluate(
        self, record: ViTriRecord, vitri_indices: Iterable[int]
    ) -> int:
        """Score one candidate against the given query-ViTri indices.

        Returns the number of similarity evaluations performed (the CPU
        cost unit).
        """
        performed = 0
        for index in vitri_indices:
            query_vitri = self._query.vitris[index]
            # sqrt-of-sum-of-squares, not np.linalg.norm on the 1-D diff:
            # BLAS nrm2's accumulation order differs from the batched
            # axis-1 norm, and this path is the bit-exactness oracle.
            diff = record.position - query_vitri.position
            distance = float(np.sqrt(np.sum(diff * diff)))
            estimate = _estimate_from_scalars(
                self._dim,
                query_vitri.radius,
                query_vitri.count,
                record.radius,
                record.count,
                distance,
            )
            performed += 1
            if estimate <= 0.0:
                continue
            video = record.video_id
            if video not in self._per_video_query:
                self._per_video_query[video] = np.zeros(self._m)
            self._per_video_query[video][index] += estimate
            per_db = self._per_video_db[video]
            per_db[record.vitri_id] = (
                per_db.get(record.vitri_id, 0.0) + estimate
            )
            self._db_counts[record.vitri_id] = record.count
        self.evaluations += performed
        return performed

    def evaluate_arrays(
        self,
        query_index: int,
        video_ids: np.ndarray,
        vitri_ids: np.ndarray,
        counts: np.ndarray,
        radii: np.ndarray,
        positions: np.ndarray,
    ) -> int:
        """Vectorised scoring of many candidates against one query ViTri.

        Bit-identical to calling :meth:`evaluate` once per candidate with
        ``[query_index]`` (see the module docstring's contract), but the
        distance and intersection math runs as one numpy batch and the
        positive estimates are only *recorded* here — the accumulation is
        deferred to :meth:`scores` so every per-cell sum happens in one
        left-to-right pass regardless of how candidates were batched.
        Returns the number of similarity evaluations.
        """
        from repro.core.similarity import _estimate_batch

        query_vitri = self._query.vitris[query_index]
        distances = np.linalg.norm(positions - query_vitri.position, axis=1)
        estimates = _estimate_batch(
            self._dim,
            query_vitri.radius,
            query_vitri.count,
            radii,
            np.asarray(counts, dtype=np.float64),
            distances,
        )
        performed = int(estimates.shape[0])
        self.evaluations += performed
        live = np.flatnonzero(estimates > 0.0)
        if live.size:
            self._segments.append(
                (
                    int(query_index),
                    np.asarray(video_ids)[live].astype(np.int64),
                    np.asarray(vitri_ids)[live].astype(np.int64),
                    np.asarray(counts)[live].astype(np.int64),
                    estimates[live],
                )
            )
        return performed

    def _fold_segments(self) -> None:
        """Fold deferred vectorized contributions into the score state.

        One ``np.bincount`` per cell kind over the *global* concatenation
        of every recorded segment: bincount accumulates its weights
        sequentially in input order, so each (video, query-ViTri) cell
        and each database-ViTri cell receives exactly the scalar oracle's
        ``+=`` chain.  Folding per batch and summing partial sums instead
        would silently break bit-identity.
        """
        if not self._segments:
            return
        m = self._m
        query_indices = np.concatenate(
            [np.full(seg[4].size, seg[0], dtype=np.int64) for seg in self._segments]
        )
        videos = np.concatenate([seg[1] for seg in self._segments])
        vitris = np.concatenate([seg[2] for seg in self._segments])
        counts = np.concatenate([seg[3] for seg in self._segments])
        estimates = np.concatenate([seg[4] for seg in self._segments])
        self._segments.clear()

        unique_videos, video_codes = np.unique(videos, return_inverse=True)
        cells = video_codes * m + query_indices
        query_sums = np.bincount(
            cells, weights=estimates, minlength=unique_videos.size * m
        )
        for code, video in enumerate(unique_videos):
            video = int(video)
            if video not in self._per_video_query:
                self._per_video_query[video] = np.zeros(m)
            self._per_video_query[video] += query_sums[code * m : (code + 1) * m]

        unique_vitris, first_seen, vitri_codes = np.unique(
            vitris, return_index=True, return_inverse=True
        )
        db_sums = np.bincount(
            vitri_codes, weights=estimates, minlength=unique_vitris.size
        )
        owner_videos = videos[first_seen]
        owner_counts = counts[first_seen]
        for code, vitri_id in enumerate(unique_vitris):
            vitri_id = int(vitri_id)
            per_db = self._per_video_db[int(owner_videos[code])]
            per_db[vitri_id] = per_db.get(vitri_id, 0.0) + float(db_sums[code])
            self._db_counts[vitri_id] = int(owner_counts[code])

    def scores(self) -> dict[int, float]:
        """Final per-video similarity scores in ``[0, 1]``."""
        self._fold_segments()
        scores: dict[int, float] = {}
        query_counts = self._query.counts().astype(np.float64)
        for video, per_query in self._per_video_query.items():
            count_query_side = float(np.minimum(query_counts, per_query).sum())
            # Canonical (vitri-id-sorted) fold: the scalar and vectorized
            # paths insert db-side totals in different dict orders, and
            # float summation order must not depend on that.
            count_db_side = sum(
                min(float(self._db_counts[vid]), total)
                for vid, total in sorted(self._per_video_db[video].items())
            )
            denominator = self._query.num_frames + self._video_frames[video]
            scores[video] = min(
                (count_query_side + count_db_side) / denominator, 1.0
            )
        return scores

    def ranked(self, k: int) -> list[tuple[int, float]]:
        """Top-``k`` (video, score) pairs, score-descending, id tie-break."""
        return sorted(
            self.scores().items(), key=lambda item: (-item[1], item[0])
        )[:k]
