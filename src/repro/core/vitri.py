"""The ViTri model (paper Definition 2) and per-video summaries.

A ViTri ``(position, radius, density)`` describes one cluster of similar
frames as a hypersphere.  Density is derived from the stored ``count`` and
``radius`` (``D = |C| / V_hypersphere(R)``) rather than stored, and is
exposed in log space because the volume of a 64-dimensional sphere of
radius ~0.15 underflows float64.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.geometry.volumes import log_sphere_volume
from repro.utils.validation import check_non_negative, check_vector

__all__ = ["ViTri", "VideoSummary"]


@dataclass(frozen=True)
class ViTri:
    """Video Triplet: a frame cluster modelled as a hypersphere.

    Attributes
    ----------
    position:
        Cluster centre ``O`` in the frame feature space, shape ``(n,)``.
    radius:
        Refined cluster radius ``R`` (``min(R_max, mu + sigma)`` from the
        clustering step).
    count:
        Number of frames ``|C|`` in the cluster.
    """

    position: np.ndarray
    radius: float
    count: int

    def __post_init__(self) -> None:
        position = check_vector(self.position, "position")
        object.__setattr__(self, "position", position)
        object.__setattr__(
            self, "radius", check_non_negative(self.radius, "radius")
        )
        if not isinstance(self.count, (int, np.integer)) or isinstance(
            self.count, bool
        ):
            raise TypeError("count must be an int")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        object.__setattr__(self, "count", int(self.count))

    @property
    def dim(self) -> int:
        """Dimensionality ``n`` of the feature space."""
        return self.position.shape[0]

    @property
    def log_volume(self) -> float:
        """Natural log of the bounding hypersphere's volume (``-inf`` for a
        point-mass cluster)."""
        return log_sphere_volume(self.dim, self.radius)

    @property
    def log_density(self) -> float:
        """Natural log of the density ``D = |C| / V``; ``inf`` for a
        point-mass cluster."""
        log_volume = self.log_volume
        if log_volume == -math.inf:
            return math.inf
        return math.log(self.count) - log_volume

    @property
    def density(self) -> float:
        """Density ``D`` (may overflow to ``inf`` in high dimensions; use
        :attr:`log_density` in computations)."""
        return math.exp(self.log_density) if self.log_density < 700 else math.inf

    def __repr__(self) -> str:
        return (
            f"ViTri(dim={self.dim}, radius={self.radius:.6g}, "
            f"count={self.count})"
        )


@dataclass(frozen=True)
class VideoSummary:
    """The ViTri summary of one video sequence.

    Attributes
    ----------
    video_id:
        Identifier of the summarised video.
    vitris:
        The video's ViTris (one per frame cluster).
    num_frames:
        Total frame count of the original sequence; the ViTri counts must
        sum to it (each frame belongs to exactly one cluster).
    """

    video_id: int
    vitris: tuple[ViTri, ...]
    num_frames: int = field(default=0)

    def __post_init__(self) -> None:
        if not isinstance(self.video_id, (int, np.integer)) or isinstance(
            self.video_id, bool
        ):
            raise TypeError("video_id must be an int")
        object.__setattr__(self, "video_id", int(self.video_id))
        vitris = tuple(self.vitris)
        if not vitris:
            raise ValueError("a summary must contain at least one ViTri")
        if not all(isinstance(v, ViTri) for v in vitris):
            raise TypeError("vitris must all be ViTri instances")
        dims = {v.dim for v in vitris}
        if len(dims) != 1:
            raise ValueError(f"vitris have inconsistent dimensions: {dims}")
        object.__setattr__(self, "vitris", vitris)
        total = sum(v.count for v in vitris)
        num_frames = self.num_frames or total
        if num_frames != total:
            raise ValueError(
                f"num_frames={num_frames} but cluster counts sum to {total}"
            )
        object.__setattr__(self, "num_frames", num_frames)

    @property
    def dim(self) -> int:
        """Dimensionality of the feature space."""
        return self.vitris[0].dim

    def __len__(self) -> int:
        return len(self.vitris)

    def positions(self) -> np.ndarray:
        """Stack of the ViTri positions, shape ``(len(self), n)``."""
        return np.stack([v.position for v in self.vitris])

    def radii(self) -> np.ndarray:
        """Vector of the ViTri radii."""
        return np.array([v.radius for v in self.vitris])

    def counts(self) -> np.ndarray:
        """Vector of the ViTri frame counts."""
        return np.array([v.count for v in self.vitris], dtype=np.int64)

    def __repr__(self) -> str:
        return (
            f"VideoSummary(video_id={self.video_id}, vitris={len(self.vitris)}, "
            f"frames={self.num_frames})"
        )
