"""The paper's primary contribution: the ViTri model, its similarity
measure, the 1-D transformation and the B+-tree-backed ViTri index.

Typical flow::

    from repro.core import summarize_video, VitriIndex

    summaries = [summarize_video(vid, frames, epsilon=0.3, seed=0)
                 for vid, frames in enumerate(videos)]
    index = VitriIndex.build(summaries, epsilon=0.3, reference="optimal")
    result = index.knn(query_summary, k=50)
"""

from __future__ import annotations

from repro.core.composition import compose_ranges
from repro.core.database import VideoDatabase
from repro.core.engine import (
    BatchResult,
    QueryEngine,
    ServingMetrics,
    query_fingerprint,
)
from repro.core.frames import frame_similarity, frames_with_match
from repro.core.index import KNNResult, QueryStats, VitriIndex
from repro.core.maintenance import ManagedVitriIndex, RebuildPolicy
from repro.core.reference import (
    DataCenter,
    OptimalReference,
    ReferenceStrategy,
    SpaceCenter,
    make_reference_strategy,
)
from repro.core.similarity import (
    estimated_shared_frames,
    estimated_shared_frames_many,
    video_similarity,
    vitri_similarity,
)
from repro.core.summarize import summarize_video
from repro.core.summary_io import load_summaries, save_summaries
from repro.core.transform import OneDimensionalTransform, key_variance
from repro.core.vitri import VideoSummary, ViTri

__all__ = [
    "compose_ranges",
    "VideoDatabase",
    "BatchResult",
    "QueryEngine",
    "ServingMetrics",
    "query_fingerprint",
    "frame_similarity",
    "frames_with_match",
    "KNNResult",
    "QueryStats",
    "VitriIndex",
    "ManagedVitriIndex",
    "RebuildPolicy",
    "DataCenter",
    "OptimalReference",
    "ReferenceStrategy",
    "SpaceCenter",
    "make_reference_strategy",
    "estimated_shared_frames",
    "estimated_shared_frames_many",
    "video_similarity",
    "vitri_similarity",
    "summarize_video",
    "load_summaries",
    "save_summaries",
    "OneDimensionalTransform",
    "key_variance",
    "VideoSummary",
    "ViTri",
]
