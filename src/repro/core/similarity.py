"""ViTri and video similarity (paper Section 4.2).

The similarity of two ViTris is the *estimated number of similar frames*
they share: the volume of intersection of their hyperspheres multiplied by
the smaller density,

    sim(V1, V2) = V_intersection * min(D1, D2).

Numerical form
--------------
With ``D_i = |C_i| / V_i`` this equals

    min(|C_1| * V_int / V_1,  |C_2| * V_int / V_2)

and both volume ratios are at most 1, so the whole computation can be done
on the intersection *fraction* of the smaller sphere (always in ``[0, 1]``)
and the radius ratio ``(r_small / r_big)^n`` (computed in log space).  No
quantity ever leaves float range, for any dimensionality.  The estimate is
additionally clipped to ``min(|C_1|, |C_2|)`` — two clusters cannot share
more frames than the smaller one has.

Degenerate (point-mass) clusters
--------------------------------
The paper never produces radius-0 clusters (and :func:`summarize_video`
floors the radius), but the public API accepts them: a point mass inside
the other sphere is taken to share ``min(|C_1|, |C_2|)`` frames, outside
it zero.

Video similarity
----------------
The video-level measure stays in "number of similar frames" units, per the
paper.  With pairwise estimates ``n_ij`` between the clusters of ``X`` and
``Y``, the number of frames of ``X`` with a similar frame in ``Y`` is
estimated as ``sum_i min(|C_i|, sum_j n_ij)`` (a frame cannot be counted
more than once), symmetrically for ``Y``, and

    sim(X, Y) = (count_X + count_Y) / (|X| + |Y|).
"""

from __future__ import annotations

import numpy as np

from repro.core.vitri import ViTri, VideoSummary
from repro.utils.counters import CostCounters
from repro.utils.validation import check_matrix, check_vector

__all__ = [
    "estimated_shared_frames",
    "estimated_shared_frames_many",
    "video_similarity",
    "vitri_similarity",
]


def estimated_shared_frames(a: ViTri, b: ViTri) -> float:
    """Estimated number of similar frames shared by two ViTris.

    This is ``V_intersection * min(D1, D2)`` evaluated in the stable ratio
    form described in the module docstring, clipped to
    ``min(a.count, b.count)``.
    """
    if not isinstance(a, ViTri) or not isinstance(b, ViTri):
        raise TypeError("estimated_shared_frames expects two ViTri instances")
    if a.dim != b.dim:
        raise ValueError(f"dimension mismatch: {a.dim} != {b.dim}")
    # sqrt-of-sum-of-squares rather than np.linalg.norm on the 1-D
    # difference: the latter routes through BLAS ``nrm2``/``dot`` whose
    # accumulation order differs from the batched axis-1 norm, and the
    # scalar path is the bit-exactness oracle for the batch kernel.
    diff = a.position - b.position
    distance = float(np.sqrt(np.sum(diff * diff)))
    return _estimate_from_scalars(
        a.dim, a.radius, a.count, b.radius, b.count, distance
    )


def _estimate_from_scalars(
    dim: int,
    radius_a: float,
    count_a: int,
    radius_b: float,
    count_b: int,
    distance: float,
) -> float:
    """Scalar oracle for :func:`_estimate_batch`.

    Same case analysis *and the same elementwise primitives* (numpy
    ``log``/``exp``/``logaddexp`` and the regularised incomplete beta) as
    the batch kernel, evaluated one candidate at a time with Python
    control flow.  Because every numpy elementwise kernel produces
    batch-size-independent results, this function is bit-identical to
    one lane of :func:`_estimate_batch` — which is what the vectorized
    equivalence suite asserts.  Keep the two in lockstep: any arithmetic
    change here must be mirrored there and vice versa.
    """
    if radius_a >= radius_b:
        r_big, c_big = radius_a, float(count_a)
        r_small, c_small = radius_b, float(count_b)
    else:
        r_big, c_big = radius_b, float(count_b)
        r_small, c_small = radius_a, float(count_a)

    ceiling = float(min(count_a, count_b))
    if r_small <= 0.0:
        # Point mass: all its frames coincide with its centre.
        return ceiling if distance <= r_big else 0.0

    if distance >= r_big + r_small:
        return 0.0
    if distance <= r_big - r_small or distance <= 0.0:
        log_fraction = 0.0
    else:
        # Lens case: two hyperspherical caps, summed in log space.
        x1 = (distance * distance + r_big * r_big - r_small * r_small) / (
            2.0 * distance
        )
        cos_alpha = np.clip(x1 / r_big, -1.0, 1.0)
        cos_beta = np.clip((distance - x1) / r_small, -1.0, 1.0)
        log_ratio = dim * (np.log(r_big) - np.log(r_small))
        log_cap_big = (
            float(_log_cap_fraction_batch(dim, np.asarray([cos_alpha]))[0])
            + log_ratio
        )
        log_cap_small = float(
            _log_cap_fraction_batch(dim, np.asarray([cos_beta]))[0]
        )
        log_fraction = np.minimum(
            np.logaddexp(log_cap_big, log_cap_small), 0.0
        )
    with np.errstate(over="ignore"):
        fraction = np.exp(log_fraction)
    # min(D1, D2) in ratio form; r_small/r_big <= 1 so the power never
    # overflows.
    big_limit = c_big * np.exp(dim * (np.log(r_small) - np.log(r_big)))
    estimate = fraction * np.minimum(c_small, big_limit)
    return float(np.minimum(estimate, ceiling))


def vitri_similarity(a: ViTri, b: ViTri) -> float:
    """Alias for :func:`estimated_shared_frames` (the paper's
    ``sim(ViTri_1, ViTri_2)``)."""
    return estimated_shared_frames(a, b)


def _log_cap_fraction_batch(n: int, cos_angle: np.ndarray) -> np.ndarray:
    """Vectorised ``log cap_fraction(n, arccos(cos_angle))``.

    ``cos_angle`` may be negative (obtuse caps).  Entries whose fraction
    underflows come back as ``-inf`` (their contribution is genuinely
    negligible at that point).
    """
    from scipy import special

    sin2 = np.clip(1.0 - cos_angle * cos_angle, 0.0, 1.0)
    half_i = 0.5 * special.betainc((n + 1) / 2.0, 0.5, sin2)
    with np.errstate(divide="ignore"):
        log_acute = np.log(half_i)
        # Obtuse: fraction = 1 - half_i.
        log_obtuse = np.log1p(-half_i)
    return np.where(cos_angle >= 0.0, log_acute, log_obtuse)


def _estimate_batch(
    dim: int,
    radius_q: float,
    count_q: int,
    radii: np.ndarray,
    counts: np.ndarray,
    distances: np.ndarray,
) -> np.ndarray:
    """Vectorised core of :func:`estimated_shared_frames`.

    Same case analysis and log-space ratio arithmetic as
    :func:`_estimate_from_scalars`, over arrays of candidates.
    """
    big = np.maximum(radii, radius_q)
    small = np.minimum(radii, radius_q)
    c_big = np.where(radii >= radius_q, counts, float(count_q))
    c_small = np.where(radii >= radius_q, float(count_q), counts)
    ceiling = np.minimum(counts, float(count_q))

    out = np.zeros(distances.shape[0], dtype=np.float64)

    # Point-mass candidates (or query): covered iff the centre is inside.
    point_mass = small <= 0.0
    out[point_mass] = np.where(
        distances[point_mass] <= big[point_mass], ceiling[point_mass], 0.0
    )

    live = ~point_mass
    if not np.any(live):
        return out
    d = distances[live]
    b = big[live]
    s = small[live]
    cb = c_big[live]
    cs = c_small[live]
    cap = ceiling[live]

    disjoint = d >= b + s
    contained = (d <= b - s) | (d <= 0.0)
    lens = ~(disjoint | contained)

    # Intersection fraction of the smaller sphere, in log space.
    log_fraction = np.full(d.shape[0], -np.inf)
    log_fraction[contained] = 0.0
    if np.any(lens):
        dl, bl, sl = d[lens], b[lens], s[lens]
        x1 = (dl * dl + bl * bl - sl * sl) / (2.0 * dl)
        cos_alpha = np.clip(x1 / bl, -1.0, 1.0)
        cos_beta = np.clip((dl - x1) / sl, -1.0, 1.0)
        log_ratio = dim * (np.log(bl) - np.log(sl))
        log_cap_big = _log_cap_fraction_batch(dim, cos_alpha) + log_ratio
        log_cap_small = _log_cap_fraction_batch(dim, cos_beta)
        log_fraction[lens] = np.minimum(
            np.logaddexp(log_cap_big, log_cap_small), 0.0
        )

    with np.errstate(over="ignore"):
        fraction = np.exp(log_fraction)
    # min(D1, D2) in ratio form: the larger sphere's limit never overflows
    # because s <= b.
    big_limit = cb * np.exp(dim * (np.log(s) - np.log(b)))
    estimate = fraction * np.minimum(cs, big_limit)
    out[live] = np.minimum(estimate, cap)
    return out


def estimated_shared_frames_many(
    query: ViTri,
    positions,
    radii,
    counts,
) -> np.ndarray:
    """Vectorised :func:`estimated_shared_frames` of one query ViTri against
    many candidate ViTris.

    Parameters
    ----------
    query:
        The query ViTri.
    positions:
        Candidate centres, shape ``(m, n)``.
    radii:
        Candidate radii, shape ``(m,)``.
    counts:
        Candidate frame counts, shape ``(m,)``.

    Returns
    -------
    numpy.ndarray
        Estimated shared frames per candidate, shape ``(m,)``.
    """
    positions = check_matrix(positions, "positions", cols=query.dim)
    radii = check_vector(radii, "radii", dim=positions.shape[0])
    counts = check_vector(counts, "counts", dim=positions.shape[0])
    if np.any(radii < 0.0):
        raise ValueError("radii must be non-negative")
    distances = np.linalg.norm(positions - query.position, axis=1)
    return _estimate_batch(
        query.dim, query.radius, query.count, radii, counts, distances
    )


def shared_frames_matrix(
    x: VideoSummary, y: VideoSummary, counters: CostCounters | None = None
) -> np.ndarray:
    """Pairwise estimated-shared-frames matrix between two summaries.

    Shape ``(len(x), len(y))``; entry ``(i, j)`` is the estimate for
    ``x.vitris[i]`` vs ``y.vitris[j]``.
    """
    if x.dim != y.dim:
        raise ValueError(f"dimension mismatch: {x.dim} != {y.dim}")
    matrix = np.empty((len(x), len(y)), dtype=np.float64)
    y_positions = y.positions()
    y_radii = y.radii()
    y_counts = y.counts()
    for i, vitri in enumerate(x.vitris):
        matrix[i] = estimated_shared_frames_many(
            vitri, y_positions, y_radii, y_counts
        )
    if counters is not None:
        counters.similarity_computations += matrix.size
        counters.distance_computations += matrix.size
    return matrix


def video_similarity(
    x: VideoSummary, y: VideoSummary, counters: CostCounters | None = None
) -> float:
    """Similarity of two videos from their ViTri summaries, in ``[0, 1]``.

    Estimates the paper's frame-level measure (Section 3.1): the fraction
    of frames in either video that have a similar frame in the other.
    """
    matrix = shared_frames_matrix(x, y, counters)
    count_x = float(np.minimum(x.counts(), matrix.sum(axis=1)).sum())
    count_y = float(np.minimum(y.counts(), matrix.sum(axis=0)).sum())
    similarity = (count_x + count_y) / (x.num_frames + y.num_frames)
    return min(similarity, 1.0)
