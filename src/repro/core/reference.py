"""Reference-point strategies for the one-dimensional transformation.

The transform maps each ViTri position ``O_i`` to the scalar key
``d(O_i, O')`` for a reference point ``O'``.  The paper compares three
placements (Section 6.3.2), all implemented here behind one interface:

* :class:`SpaceCenter` — the centre of the data domain (e.g. ``0.5 * 1``
  for histogram features in ``[0, 1]^n``); what iDistance uses by default.
* :class:`DataCenter` — the mean of the indexed points.
* :class:`OptimalReference` — Theorem 1: a point on the line of the first
  principal component, shifted *outside* the component's variance segment,
  which maximises the variance of the transformed keys.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.pca.pca import PCA
from repro.utils.validation import check_finite, check_matrix, check_positive

__all__ = [
    "DataCenter",
    "OptimalReference",
    "ReferenceStrategy",
    "SpaceCenter",
    "make_reference_strategy",
]


class ReferenceStrategy(abc.ABC):
    """Strategy interface: turn a set of points into a reference point."""

    @abc.abstractmethod
    def locate(self, positions: np.ndarray) -> np.ndarray:
        """Return the reference point ``O'`` for the given ``(rows, n)``
        position matrix."""

    @property
    def name(self) -> str:
        """Short identifier used in benchmark tables."""
        return type(self).__name__


class SpaceCenter(ReferenceStrategy):
    """Centre of the (axis-aligned) data domain.

    Parameters
    ----------
    low, high:
        Domain bounds per dimension; the frame features in the paper are
        normalised histograms, so the domain defaults to ``[0, 1]^n``.
    """

    def __init__(self, low: float = 0.0, high: float = 1.0) -> None:
        low = check_finite(low, "low")
        high = check_finite(high, "high")
        if high <= low:
            raise ValueError(f"high ({high}) must exceed low ({low})")
        self._low = low
        self._high = high

    def locate(self, positions: np.ndarray) -> np.ndarray:
        positions = check_matrix(positions, "positions", min_rows=1)
        midpoint = (self._low + self._high) / 2.0
        return np.full(positions.shape[1], midpoint)

    @property
    def name(self) -> str:
        return "space_center"


class DataCenter(ReferenceStrategy):
    """Mean of the indexed points."""

    def locate(self, positions: np.ndarray) -> np.ndarray:
        positions = check_matrix(positions, "positions", min_rows=1)
        return positions.mean(axis=0)

    @property
    def name(self) -> str:
        return "data_center"


class OptimalReference(ReferenceStrategy):
    """Theorem 1's optimal reference point.

    Fits PCA on the points, takes the first principal component
    ``Phi_1`` and its variance segment ``[p_min, p_max]`` (the extent of
    the points' projections), and places the reference point at

        ``O' = center + (p_min - margin * segment_length) * Phi_1``

    i.e. on the component's line, *outside* the variance segment, on the
    low-projection side.  Any point outside the segment preserves the
    component's variance exactly (the triangle inequality is tight along a
    line); the margin only needs to be positive.  The margin is relative to
    the segment length so the placement is scale-free; a degenerate
    dataset (zero segment) falls back to a unit offset.

    Parameters
    ----------
    margin:
        Fractional offset beyond the variance segment (default 0.1).
    """

    def __init__(self, margin: float = 0.1) -> None:
        self._margin = check_positive(margin, "margin")
        self.pca_: PCA | None = None
        self.segment_: tuple[float, float] | None = None

    @property
    def margin(self) -> float:
        """Fractional offset beyond the variance segment."""
        return self._margin

    def locate(self, positions: np.ndarray) -> np.ndarray:
        positions = check_matrix(positions, "positions", min_rows=1)
        pca = PCA(n_components=1).fit(positions)
        low, high = pca.variance_segment(positions, 0)
        segment_length = high - low
        offset = self._margin * segment_length if segment_length > 0.0 else 1.0
        self.pca_ = pca
        self.segment_ = (low, high)
        return pca.center_ + (low - offset) * pca.first_component

    @property
    def name(self) -> str:
        return "optimal"


def make_reference_strategy(kind: str, **kwargs) -> ReferenceStrategy:
    """Factory over the three strategies by name.

    Parameters
    ----------
    kind:
        ``"optimal"``, ``"data_center"`` or ``"space_center"``.
    kwargs:
        Forwarded to the strategy constructor.
    """
    strategies = {
        "optimal": OptimalReference,
        "data_center": DataCenter,
        "space_center": SpaceCenter,
    }
    if kind not in strategies:
        raise ValueError(
            f"unknown reference strategy {kind!r}; "
            f"expected one of {sorted(strategies)}"
        )
    return strategies[kind](**kwargs)
