"""Dynamic-maintenance policy (paper Section 6.3.3).

The optimal reference point is chosen from the first principal component
of the ViTri positions at build time.  As videos are inserted, the data's
correlation structure can drift; the original reference point then stops
being optimal and query cost degrades.  The paper's remedy: track the angle
between the original first principal component and the current one, and
rebuild the index once the angle exceeds an allowed degree.

:class:`RebuildPolicy` encapsulates the threshold;
:class:`ManagedVitriIndex` wraps a :class:`~repro.core.index.VitriIndex`
and applies the policy automatically on insertion.
"""

from __future__ import annotations

import math

from repro.core.index import KNNResult, VitriIndex
from repro.core.vitri import VideoSummary
from repro.utils.validation import check_positive

__all__ = ["ManagedVitriIndex", "RebuildPolicy"]


class RebuildPolicy:
    """Rebuild trigger: first-principal-component drift beyond a threshold.

    Parameters
    ----------
    max_angle_degrees:
        Allowed drift of the first principal component before a rebuild is
        requested.
    check_every:
        Only measure drift every this many insertions — the measurement
        scans all positions, so checking on every insert would defeat the
        point of dynamic maintenance.
    """

    def __init__(
        self, max_angle_degrees: float = 15.0, check_every: int = 100
    ) -> None:
        self._max_angle = math.radians(
            check_positive(max_angle_degrees, "max_angle_degrees")
        )
        if not isinstance(check_every, int) or check_every < 1:
            raise ValueError(f"check_every must be a positive int, got {check_every}")
        self._check_every = check_every
        self._since_last_check = 0

    @property
    def max_angle_radians(self) -> float:
        """Drift threshold in radians."""
        return self._max_angle

    def drift_exceeded(self, index: VitriIndex) -> tuple[float, bool]:
        """Measure drift now: ``(angle_radians, angle > threshold)``.

        Unconditional — the ``check_every`` cadence is
        :meth:`should_rebuild`'s job (or the ingest
        :class:`~repro.ingest.drift.DriftMonitor`'s, which adds a
        wall-clock floor on top).
        """
        angle = index.drift_angle()
        return angle, angle > self._max_angle

    def should_rebuild(self, index: VitriIndex) -> bool:
        """True when it is time to measure drift and it exceeds the
        threshold."""
        self._since_last_check += 1
        if self._since_last_check < self._check_every:
            return False
        self._since_last_check = 0
        return self.drift_exceeded(index)[1]


class ManagedVitriIndex:
    """A :class:`VitriIndex` plus automatic drift-triggered rebuilds.

    Presents the same ``insert_video`` / ``knn`` surface; after each
    insertion the policy may decide to rebuild, in which case the wrapped
    index object is replaced (the old page stores are dropped).

    Attributes
    ----------
    rebuilds:
        Number of automatic rebuilds performed so far.
    """

    def __init__(self, index: VitriIndex, policy: RebuildPolicy | None = None) -> None:
        if not isinstance(index, VitriIndex):
            raise TypeError("index must be a VitriIndex")
        self._index = index
        self._policy = policy if policy is not None else RebuildPolicy()
        self.rebuilds = 0

    @property
    def index(self) -> VitriIndex:
        """The currently active underlying index."""
        return self._index

    def insert_video(self, summary: VideoSummary) -> bool:
        """Insert a video; returns True when the insertion triggered a
        rebuild."""
        self._index.insert_video(summary)
        if self._policy.should_rebuild(self._index):
            self._index = self._index.rebuild()
            self.rebuilds += 1
            return True
        return False

    def knn(self, query: VideoSummary, k: int, **kwargs) -> KNNResult:
        """Forward a KNN query to the active index."""
        return self._index.knn(query, k, **kwargs)

    def __repr__(self) -> str:
        return f"ManagedVitriIndex({self._index!r}, rebuilds={self.rebuilds})"
