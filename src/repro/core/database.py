"""High-level facade: a video database that manages its own summaries.

:class:`VideoDatabase` is the surface a downstream application uses: add
videos as raw frame matrices, query with raw frame matrices, and let the
database handle summarisation, index construction, dynamic insertion and
drift-triggered rebuilds.

    db = VideoDatabase(epsilon=0.3)
    for frames in videos:
        db.add(frames)
    result = db.query(query_frames, k=10)

The index is built lazily: videos added before the first query are
batched into one bulk build (packed pages, freshly fitted reference
point); videos added afterwards use dynamic B+-tree insertion, with the
Section 6.3.3 drift policy deciding when to rebuild.
"""

from __future__ import annotations

from repro.core.index import KNNResult, VitriIndex
from repro.core.maintenance import RebuildPolicy
from repro.core.summarize import summarize_video
from repro.core.vitri import VideoSummary
from repro.utils.validation import check_matrix, check_positive

__all__ = ["VideoDatabase"]


class VideoDatabase:
    """Self-managing ViTri video database.

    Parameters
    ----------
    epsilon:
        Frame similarity threshold used for every summary.
    reference:
        Reference-point strategy for the 1-D transform.
    rebuild_policy:
        Drift policy applied after dynamic insertions; ``None`` disables
        automatic rebuilds.
    summarize_seed:
        Base seed for the summarisation k-means (summaries are
        deterministic given the same frames and seed).
    """

    def __init__(
        self,
        epsilon: float = 0.3,
        *,
        reference: str = "optimal",
        rebuild_policy: RebuildPolicy | None = None,
        summarize_seed: int = 0,
    ) -> None:
        self._epsilon = check_positive(epsilon, "epsilon")
        self._reference = reference
        self._policy = rebuild_policy
        self._seed = summarize_seed
        self._pending: list[VideoSummary] = []
        self._index: VitriIndex | None = None
        self._next_video_id = 0
        self.rebuilds = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def epsilon(self) -> float:
        """Frame similarity threshold."""
        return self._epsilon

    @property
    def index(self) -> VitriIndex | None:
        """The underlying index (``None`` until the first query/build)."""
        return self._index

    def __len__(self) -> int:
        pending = len(self._pending)
        indexed = self._index.num_videos if self._index is not None else 0
        return pending + indexed

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, frames, video_id: int | None = None) -> int:
        """Add one video; returns its id (auto-assigned if not given)."""
        frames = check_matrix(frames, "frames", min_rows=1)
        if video_id is None:
            video_id = self._next_video_id
        if not isinstance(video_id, int) or isinstance(video_id, bool):
            raise TypeError("video_id must be an int")
        known = {s.video_id for s in self._pending}
        if self._index is not None:
            known |= set(self._index.video_frames)
        if video_id in known:
            raise ValueError(f"video id {video_id} already present")
        self._next_video_id = max(self._next_video_id, video_id + 1)

        summary = summarize_video(
            video_id, frames, self._epsilon, seed=self._seed + video_id
        )
        if self._index is None:
            self._pending.append(summary)
        else:
            self._index.insert_video(summary)
            self._maybe_rebuild()
        return video_id

    def add_many(self, videos) -> list[int]:
        """Add an iterable of frame matrices; returns their ids."""
        return [self.add(frames) for frames in videos]

    def remove(self, video_id: int) -> None:
        """Remove a video (pending or indexed)."""
        for position, summary in enumerate(self._pending):
            if summary.video_id == video_id:
                del self._pending[position]
                return
        if self._index is None or video_id not in self._index.video_frames:
            raise ValueError(f"video id {video_id} is not in the database")
        self._index.remove_video(video_id)

    def build(self) -> None:
        """Force-build the index over everything added so far."""
        if self._index is None:
            if not self._pending:
                raise ValueError("cannot build an empty database")
            self._index = VitriIndex.build(
                self._pending, self._epsilon, reference=self._reference
            )
            self._pending = []
            return
        if self._pending:  # pragma: no cover - pending only pre-index
            raise AssertionError("pending summaries with a live index")

    def _maybe_rebuild(self) -> None:
        if self._policy is None:
            return
        if self._policy.should_rebuild(self._index):
            self._index = self._index.rebuild(reference=self._reference)
            self.rebuilds += 1

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(
        self, frames, k: int = 10, *, method: str = "composed"
    ) -> KNNResult:
        """Top-``k`` most similar stored videos for a raw frame matrix."""
        frames = check_matrix(frames, "frames", min_rows=1)
        if self._index is None:
            self.build()
        summary = summarize_video(
            # A negative-free throwaway id: query summaries are never stored.
            0, frames, self._epsilon, seed=self._seed
        )
        return self._index.knn(summary, k, method=method)

    def drift_angle(self) -> float:
        """Current principal-component drift (radians)."""
        if self._index is None:
            self.build()
        return self._index.drift_angle()

    def __repr__(self) -> str:
        state = "built" if self._index is not None else "pending"
        return (
            f"VideoDatabase(videos={len(self)}, epsilon={self._epsilon}, "
            f"{state})"
        )
