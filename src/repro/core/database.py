"""High-level facade: a video database that manages its own summaries.

:class:`VideoDatabase` is the surface a downstream application uses: add
videos as raw frame matrices, query with raw frame matrices, and let the
database handle summarisation, index construction, dynamic insertion and
drift-triggered rebuilds.

    db = VideoDatabase(epsilon=0.3)
    for frames in videos:
        db.add(frames)
    result = db.query(query_frames, k=10)

The index is built lazily: videos added before the first query are
batched into one bulk build (packed pages, freshly fitted reference
point); videos added afterwards use dynamic B+-tree insertion, with the
Section 6.3.3 drift policy deciding when to rebuild.

Durable databases
-----------------
Pass ``path=`` to persist the database in a directory::

    db = VideoDatabase(epsilon=0.3, path="videos.db")
    db.add(frames)
    db.checkpoint()          # atomically commit everything added so far
    db.close()               # final checkpoint + release files

    db = VideoDatabase(path="videos.db")   # reopens at last checkpoint

The directory holds the B+-tree file (``index.btree``), the ViTri heap
(``index.heap``), a JSON metadata blob (``db.json``) and a shared
write-ahead log (``db.wal``).  All three data artefacts commit as one
atomic unit through the WAL, so a crash at *any* point — mid-insert,
mid-commit, mid-recovery — leaves a directory that reopens at its last
completed checkpoint (see :mod:`repro.storage.wal`).

Generations
-----------
An online reference-point rebuild (:mod:`repro.ingest.cutover`) must
construct a whole new file set while the old one keeps serving, then
switch atomically.  The directory therefore supports a *generational*
layout: an ``epoch.json`` pointer at the root names the active
generation sub-directory (``gen-0001``, ``gen-0002``, ...), each of
which is an ordinary flat database file set.  Without the pointer the
root itself is the (epoch-0) file set, so every pre-existing directory
keeps working unchanged.  The pointer is replaced with one atomic
``os.replace`` — the cutover's single commit point — and opening the
directory sweeps away any generation the pointer does not name
(a crashed side-build, or the previous epoch after a cutover).
"""

from __future__ import annotations

import json
import os
import shutil

from repro.core.index import KNNResult, VitriIndex
from repro.core.maintenance import RebuildPolicy
from repro.core.summarize import summarize_video
from repro.core.vitri import VideoSummary
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager
from repro.storage.wal import WriteAheadLog
from repro.utils.validation import check_matrix, check_positive

__all__ = [
    "VideoDatabase",
    "generation_name",
    "read_epoch_pointer",
    "write_epoch_pointer",
]

_BTREE_FILE = "index.btree"
_HEAP_FILE = "index.heap"
_META_FILE = "db.json"
_WAL_FILE = "db.wal"
_BTREE_FILE_ID = 0
_HEAP_FILE_ID = 1
_META_FORMAT = 1

_EPOCH_FILE = "epoch.json"
_EPOCH_FORMAT = 1
_GENERATION_PREFIX = "gen-"
#: The flat (epoch-0) data artefacts an old generation leaves behind
#: after the first cutover; swept by the next open.
_DATA_FILES = (_BTREE_FILE, _HEAP_FILE, _META_FILE, _WAL_FILE)


def generation_name(epoch: int) -> str:
    """Deterministic directory name of a generation (``gen-0001`` ...)."""
    if not isinstance(epoch, int) or isinstance(epoch, bool) or epoch < 1:
        raise ValueError(f"epoch must be a positive int, got {epoch}")
    return f"{_GENERATION_PREFIX}{epoch:04d}"


def read_epoch_pointer(path: str) -> tuple[str | None, int]:
    """``(generation, epoch)`` named by ``epoch.json``; ``(None, 0)``
    when the directory uses the flat (pointer-less) layout."""
    pointer_path = os.path.join(path, _EPOCH_FILE)
    if not os.path.exists(pointer_path):
        return None, 0
    with open(pointer_path, "r", encoding="utf-8") as handle:
        pointer = json.load(handle)
    if pointer.get("format") != _EPOCH_FORMAT:
        raise ValueError(
            f"{pointer_path} has unsupported format {pointer.get('format')!r}"
        )
    generation = str(pointer["generation"])
    epoch = int(pointer["epoch"])
    if (
        not generation.startswith(_GENERATION_PREFIX)
        or os.path.basename(generation) != generation
    ):
        raise ValueError(
            f"{pointer_path} names an invalid generation {generation!r}"
        )
    if epoch < 1:
        raise ValueError(f"{pointer_path} has invalid epoch {epoch}")
    return generation, epoch


def write_epoch_pointer(
    path: str, generation: str, epoch: int, *, fault_injector=None
) -> None:
    """Atomically point the directory at ``generation``.

    Temp-write + ``os.replace``, both routed through the fault injector
    when one is given: the replace is the online cutover's *commit
    point*, so a crash-point sweep must be able to land exactly on it.
    """
    if generation != generation_name(epoch):
        raise ValueError(
            f"generation {generation!r} does not match epoch {epoch}"
        )
    blob = json.dumps(
        {"format": _EPOCH_FORMAT, "generation": generation, "epoch": epoch}
    ).encode("utf-8")
    final_path = os.path.join(path, _EPOCH_FILE)
    tmp_path = final_path + ".tmp"

    def write_blob(data: bytes) -> None:
        with open(tmp_path, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())

    if fault_injector is not None:
        fault_injector.write(write_blob, blob)
        fault_injector.op(lambda: os.replace(tmp_path, final_path))
    else:
        write_blob(blob)
        os.replace(tmp_path, final_path)


class VideoDatabase:
    """Self-managing ViTri video database.

    Parameters
    ----------
    epsilon:
        Frame similarity threshold used for every summary.
    reference:
        Reference-point strategy for the 1-D transform.
    rebuild_policy:
        Drift policy applied after dynamic insertions; ``None`` disables
        automatic rebuilds.  Not supported for durable databases (a
        rebuild re-creates the index over fresh in-memory storage, which
        would silently detach it from the directory).
    summarize_seed:
        Base seed for the summarisation k-means (summaries are
        deterministic given the same frames and seed).
    path:
        Directory to persist the database in (created if missing).  When
        the directory already holds a database, its stored configuration
        (epsilon, reference, seed, id counter) wins over the constructor
        arguments and the index reopens at its last checkpoint.
    buffer_capacity:
        LRU buffer-pool capacity (pages) for each durable page store.
    read_latency:
        Simulated seconds slept per physical page read (benchmarking
        seam; reads sleep outside the pager lock so concurrent readers
        overlap their waits).
    fault_injector:
        Optional :class:`~repro.storage.faults.FaultInjector` routed to
        every disk operation of a durable database; testing only.
    """

    def __init__(
        self,
        epsilon: float = 0.3,
        *,
        reference: str = "optimal",
        rebuild_policy: RebuildPolicy | None = None,
        summarize_seed: int = 0,
        path: str | os.PathLike | None = None,
        buffer_capacity: int = 256,
        read_latency: float = 0.0,
        fault_injector=None,
    ) -> None:
        self._epsilon = check_positive(epsilon, "epsilon")
        self._reference = reference
        self._policy = rebuild_policy
        self._seed = summarize_seed
        self._pending: list[VideoSummary] = []
        self._index: VitriIndex | None = None
        self._next_video_id = 0
        self._buffer_capacity = buffer_capacity
        self._read_latency = read_latency
        self.rebuilds = 0

        self._path = os.fspath(path) if path is not None else None
        self._data_dir: str | None = self._path
        self._generation: str | None = None
        self._epoch = 0
        self._faults = fault_injector
        self._wal: WriteAheadLog | None = None
        self._btree_pool: BufferPool | None = None
        self._heap_pool: BufferPool | None = None
        self._closed = False
        if self._path is None:
            if fault_injector is not None:
                raise ValueError(
                    "fault_injector requires a durable database (path=...)"
                )
            return
        if rebuild_policy is not None:
            raise ValueError(
                "rebuild_policy is not supported for durable databases"
            )
        if not isinstance(reference, str):
            raise ValueError(
                "durable databases need a named reference strategy "
                "(it is stored in the directory's metadata)"
            )
        self._open_directory(buffer_capacity)

    def _open_directory(self, buffer_capacity: int) -> None:
        """Attach to (or initialise) the database directory, recovering
        any committed-but-unapplied work from the write-ahead log."""
        os.makedirs(self._path, exist_ok=True)
        self._generation, self._epoch = read_epoch_pointer(self._path)
        if self._generation is not None:
            self._data_dir = os.path.join(self._path, self._generation)
            if not os.path.isdir(self._data_dir):
                raise ValueError(
                    f"epoch pointer names missing generation "
                    f"{self._generation!r} in {self._path}"
                )
        else:
            self._data_dir = self._path
        self._sweep_stale_generations()
        meta_path = os.path.join(self._data_dir, _META_FILE)
        self._wal = WriteAheadLog(
            os.path.join(self._data_dir, _WAL_FILE),
            meta_path=meta_path,
            fault_injector=self._faults,
        )
        self._btree_pool = BufferPool(
            Pager(
                os.path.join(self._data_dir, _BTREE_FILE),
                wal=self._wal,
                wal_file_id=_BTREE_FILE_ID,
                fault_injector=self._faults,
                read_latency=self._read_latency,
            ),
            capacity=buffer_capacity,
        )
        self._heap_pool = BufferPool(
            Pager(
                os.path.join(self._data_dir, _HEAP_FILE),
                wal=self._wal,
                wal_file_id=_HEAP_FILE_ID,
                fault_injector=self._faults,
                read_latency=self._read_latency,
            ),
            capacity=buffer_capacity,
        )
        self._wal.recover()

        if not os.path.exists(meta_path):
            return  # fresh directory: nothing was ever checkpointed
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        if meta.get("format") != _META_FORMAT:
            raise ValueError(
                f"{meta_path} has unsupported format {meta.get('format')!r}"
            )
        self._epsilon = float(meta["epsilon"])
        self._reference = str(meta["reference"])
        self._seed = int(meta["summarize_seed"])
        self._next_video_id = int(meta["next_video_id"])
        if meta["index"] is not None:
            self._index = VitriIndex.from_storage(
                self._btree_pool,
                self._heap_pool,
                meta["index"],
                reference=self._reference,
            )

    def _sweep_stale_generations(self) -> None:
        """Remove every generation the epoch pointer does not name.

        Covers both halves of a cutover's aftermath: a crashed
        side-build (an un-pointed ``gen-*`` sibling) and, once a
        generation *is* active, the previous epoch's files — the old
        generation directory, or the original flat file set at the
        root.  Removals are routed through the fault injector so the
        crash sweep also exercises "crashed while deleting the old
        epoch"; for a flat layout with no strays this is a no-op, which
        keeps existing crash-sweep op counts unchanged.
        """
        stale: list[str] = []
        for entry in sorted(os.listdir(self._path)):
            if not entry.startswith(_GENERATION_PREFIX):
                continue
            full = os.path.join(self._path, entry)
            if os.path.isdir(full) and entry != self._generation:
                stale.append(full)
        flat_leftovers: list[str] = []
        if self._generation is not None:
            for name in _DATA_FILES:
                full = os.path.join(self._path, name)
                if os.path.exists(full):
                    flat_leftovers.append(full)
        for directory in stale:
            if self._faults is not None:
                self._faults.op(lambda d=directory: shutil.rmtree(d))
            else:
                shutil.rmtree(directory)
        for file_path in flat_leftovers:
            if self._faults is not None:
                self._faults.op(lambda f=file_path: os.remove(f))
            else:
                os.remove(file_path)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def epsilon(self) -> float:
        """Frame similarity threshold."""
        return self._epsilon

    @property
    def index(self) -> VitriIndex | None:
        """The underlying index (``None`` until the first query/build)."""
        return self._index

    @property
    def path(self) -> str | None:
        """The backing directory; ``None`` for an in-memory database."""
        return self._path

    @property
    def data_dir(self) -> str | None:
        """Directory holding the active generation's files.

        Equals :attr:`path` for the flat (epoch-0) layout; a
        ``gen-NNNN`` sub-directory once an online rebuild has cut over.
        Snapshots must read from here, not from :attr:`path`.
        """
        return self._data_dir

    @property
    def epoch(self) -> int:
        """Cutover epoch (0 = original flat layout, never cut over)."""
        return self._epoch

    @property
    def generation(self) -> str | None:
        """Active generation directory name (``None`` for flat layout)."""
        return self._generation

    @property
    def reference(self) -> str:
        """Reference-point strategy name."""
        return self._reference

    @property
    def summarize_seed(self) -> int:
        """Base seed for the summarisation k-means."""
        return self._seed

    @property
    def next_video_id(self) -> int:
        """Next auto-assigned video id."""
        return self._next_video_id

    @property
    def buffer_capacity(self) -> int:
        """LRU buffer-pool capacity (pages) per page store."""
        return self._buffer_capacity

    @property
    def read_latency(self) -> float:
        """Simulated seconds slept per physical page read."""
        return self._read_latency

    @property
    def fault_injector(self):
        """The injector routed to disk operations (``None`` if absent)."""
        return self._faults

    @property
    def wal(self) -> WriteAheadLog | None:
        """The directory's shared write-ahead log (``None`` in-memory).

        Exposed for the replication layer: the primary installs a
        sealed-segment sink here, the replica applies shipped segments
        through :meth:`~repro.storage.wal.WriteAheadLog.apply_external`.
        """
        return self._wal

    def reload(self) -> None:
        """Re-attach to the directory's *current* on-disk state.

        The replica side of WAL shipping: after a shipped transaction
        was applied through the WAL targets (new page images, new
        ``db.json``), the in-memory view — buffer pools, the
        :class:`VitriIndex` object, the id counter — is stale.  This
        drops both pools and rebuilds the index from the fresh metadata
        blob, exactly as reopening the directory would, without touching
        the write-ahead log (the shipped transaction was already
        committed by the primary; there is nothing to recover).
        """
        self._check_open()
        if self._path is None:
            raise RuntimeError("reload() requires a durable database")
        if self._pending or self._wal.has_pending:
            raise RuntimeError(
                "reload() would discard uncommitted local changes"
            )
        self._btree_pool.clear()
        self._heap_pool.clear()
        self._index = None
        meta_path = os.path.join(self._data_dir, _META_FILE)
        if not os.path.exists(meta_path):
            return
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        if meta.get("format") != _META_FORMAT:
            raise ValueError(
                f"{meta_path} has unsupported format {meta.get('format')!r}"
            )
        self._epsilon = float(meta["epsilon"])
        self._reference = str(meta["reference"])
        self._seed = int(meta["summarize_seed"])
        self._next_video_id = int(meta["next_video_id"])
        if meta["index"] is not None:
            self._index = VitriIndex.from_storage(
                self._btree_pool,
                self._heap_pool,
                meta["index"],
                reference=self._reference,
            )

    def __len__(self) -> int:
        pending = len(self._pending)
        indexed = self._index.num_videos if self._index is not None else 0
        return pending + indexed

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("database is closed")

    def add(self, frames, video_id: int | None = None) -> int:
        """Add one video; returns its id (auto-assigned if not given).

        For a durable database the addition becomes crash-durable at the
        next :meth:`checkpoint` (or :meth:`close`)."""
        self._check_open()
        frames = check_matrix(frames, "frames", min_rows=1)
        if video_id is None:
            video_id = self._next_video_id
        if not isinstance(video_id, int) or isinstance(video_id, bool):
            raise TypeError("video_id must be an int")
        self._check_id_free(video_id)
        summary = summarize_video(
            video_id, frames, self._epsilon, seed=self._seed + video_id
        )
        return self.add_summary(summary)

    def add_summary(self, summary: VideoSummary) -> int:
        """Add a pre-built summary (its ``video_id`` must be unused).

        The summary must have been produced with this database's epsilon
        (checked at index time via the radius bound).  This is the
        ingestion seam the sharded router uses: it summarises once and
        routes the summary to the owning shard, so a sharded and an
        unsharded database store bit-identical summaries for the same
        frames.
        """
        self._check_open()
        if not isinstance(summary, VideoSummary):
            raise TypeError("summary must be a VideoSummary")
        self._check_id_free(summary.video_id)
        self._next_video_id = max(self._next_video_id, summary.video_id + 1)
        if self._index is None:
            self._pending.append(summary)
        else:
            self._index.insert_video(summary)
            self._maybe_rebuild()
        return summary.video_id

    def add_summaries(self, summaries) -> list[int]:
        """Add a batch of pre-built summaries, all-or-nothing.

        Every summary is type- and id-checked (against the database and
        against the rest of the batch) before the first one is admitted,
        so a bad element cannot leave a half-applied batch behind.  This
        is the ingest pipeline's commit unit: one call, then one
        :meth:`checkpoint`, becomes one WAL transaction and therefore
        one shipped replication segment.
        """
        self._check_open()
        batch = list(summaries)
        seen: set[int] = set()
        for summary in batch:
            if not isinstance(summary, VideoSummary):
                raise TypeError("summaries must be VideoSummary instances")
            if summary.video_id in seen:
                raise ValueError(
                    f"video id {summary.video_id} repeated in batch"
                )
            self._check_id_free(summary.video_id)
            seen.add(summary.video_id)
        return [self.add_summary(summary) for summary in batch]

    def reserve_video_ids(self, next_id: int) -> None:
        """Raise the auto-assign counter to at least ``next_id``.

        A side-build copies summaries from a live database and must not
        recycle ids the source has already promised to future inserts.
        """
        self._check_open()
        if not isinstance(next_id, int) or isinstance(next_id, bool):
            raise TypeError("next_id must be an int")
        self._next_video_id = max(self._next_video_id, next_id)

    def _check_id_free(self, video_id: int) -> None:
        if video_id in self.video_ids():
            raise ValueError(f"video id {video_id} already present")

    def video_ids(self) -> set[int]:
        """Ids of every stored video (pending and indexed)."""
        known = {s.video_id for s in self._pending}
        if self._index is not None:
            known |= set(self._index.video_frames)
        return known

    def summaries(self) -> list[VideoSummary]:
        """Every stored video's summary (pending first, then indexed).

        Indexed summaries are reconstructed from the heap — a full scan,
        meant for shard rebalancing and migration, not the query path.
        """
        self._check_open()
        stored = list(self._pending)
        if self._index is not None:
            stored.extend(self._index.summaries())
        return stored

    def add_many(self, videos) -> list[int]:
        """Add an iterable of frame matrices; returns their ids."""
        return [self.add(frames) for frames in videos]

    def remove(self, video_id: int) -> None:
        """Remove a video (pending or indexed)."""
        self._check_open()
        for position, summary in enumerate(self._pending):
            if summary.video_id == video_id:
                del self._pending[position]
                return
        if self._index is None or video_id not in self._index.video_frames:
            raise ValueError(f"video id {video_id} is not in the database")
        self._index.remove_video(video_id)

    def build(self) -> None:
        """Force-build the index over everything added so far."""
        self._check_open()
        if self._index is None:
            if not self._pending:
                raise ValueError("cannot build an empty database")
            if self._path is not None:
                self._index = VitriIndex.build(
                    self._pending,
                    self._epsilon,
                    reference=self._reference,
                    btree_pool=self._btree_pool,
                    heap_pool=self._heap_pool,
                )
            elif self._read_latency > 0.0:
                # In-memory pagers with a simulated disk: reads sleep
                # outside the pager lock, the serving benchmarks' model.
                self._index = VitriIndex.build(
                    self._pending,
                    self._epsilon,
                    reference=self._reference,
                    btree_pool=BufferPool(
                        Pager(read_latency=self._read_latency),
                        capacity=self._buffer_capacity,
                    ),
                    heap_pool=BufferPool(
                        Pager(read_latency=self._read_latency),
                        capacity=self._buffer_capacity,
                    ),
                )
            else:
                self._index = VitriIndex.build(
                    self._pending, self._epsilon, reference=self._reference
                )
            self._pending = []
            return
        if self._pending:  # pragma: no cover - pending only pre-index
            raise AssertionError("pending summaries with a live index")

    def _maybe_rebuild(self) -> None:
        if self._policy is None:
            return
        if self._policy.should_rebuild(self._index):
            self._index = self._index.rebuild(reference=self._reference)
            self.rebuilds += 1

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Atomically commit every change made since the last checkpoint.

        Builds the index if only pending summaries exist, pushes all
        dirty pages into the shared write-ahead log and commits them
        together with the database metadata as one transaction: after a
        crash, the directory reopens at the most recent completed
        checkpoint — never a partial state.
        """
        self._check_open()
        if self._path is None:
            raise RuntimeError("checkpoint() requires a durable database")
        if self._index is None and self._pending:
            self.build()
        if self._index is not None:
            self._index.flush_pages()
        blob = json.dumps(self._meta_blob()).encode("utf-8")
        self._wal.commit(meta=blob)

    def _meta_blob(self) -> dict:
        return {
            "format": _META_FORMAT,
            "epsilon": self._epsilon,
            "reference": self._reference,
            "summarize_seed": self._seed,
            "next_video_id": self._next_video_id,
            "index": self._index.meta_dict() if self._index is not None else None,
        }

    def close(self) -> None:
        """Checkpoint (unless crashed), then release the directory's
        files.  Idempotent; in-memory databases only flip the closed
        flag."""
        if self._closed:
            return
        if self._path is not None:
            crashed = self._faults is not None and self._faults.crashed
            if not crashed and not self._wal.closed:
                self.checkpoint()
            self._closed = True
            if not self._wal.closed:
                self._wal.close()
            self._btree_pool.pager.close()
            self._heap_pool.pager.close()
        self._closed = True

    def crash(self) -> None:
        """Testing seam: drop every file handle without checkpointing,
        leaving the directory exactly as the last disk operation left
        it (as an abrupt process kill would)."""
        if self._path is None:
            raise RuntimeError("crash() requires a durable database")
        self._closed = True
        self._wal.crash()
        self._btree_pool.pager.crash()
        self._heap_pool.pager.crash()

    def detach(self) -> None:
        """Release file handles without checkpointing.

        The cutover path: once the epoch pointer has moved, the old
        generation's object must step aside *without* writing — a final
        checkpoint would resurrect files the stale-generation sweep is
        about to delete.  Mechanically identical to :meth:`crash`, but
        named for its legitimate (non-testing) use.
        """
        self.crash()

    def __enter__(self) -> "VideoDatabase":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(
        self, frames, k: int = 10, *, method: str = "composed"
    ) -> KNNResult:
        """Top-``k`` most similar stored videos for a raw frame matrix."""
        self._check_open()
        frames = check_matrix(frames, "frames", min_rows=1)
        if self._index is None:
            self.build()
        summary = summarize_video(
            # A negative-free throwaway id: query summaries are never stored.
            0, frames, self._epsilon, seed=self._seed
        )
        return self._index.knn(summary, k, method=method)

    def drift_angle(self) -> float:
        """Current principal-component drift (radians)."""
        if self._index is None:
            self.build()
        return self._index.drift_angle()

    def __repr__(self) -> str:
        state = "built" if self._index is not None else "pending"
        return (
            f"VideoDatabase(videos={len(self)}, epsilon={self._epsilon}, "
            f"{state})"
        )
