"""The one-dimensional transformation (paper Section 5.1).

Maps an ``n``-dimensional point to the scalar key ``d(O_i, O')`` where
``O'`` comes from a :class:`~repro.core.reference.ReferenceStrategy`.
The triangle inequality guarantees that for any query ``Q`` and search
radius ``gamma``, every point within ``gamma`` of ``Q`` has a key inside
``[key(Q) - gamma, key(Q) + gamma]`` — so a B+-tree range search over keys
is a lossless filter.

The module also provides :func:`key_variance`, the quantity Theorem 1
maximises (the variance of pairwise key differences reduces to the variance
of the keys themselves up to a factor of 2), used by the tests and the
reference-point ablation bench.
"""

from __future__ import annotations

import numpy as np

from repro.core.reference import ReferenceStrategy, make_reference_strategy
from repro.utils.validation import check_matrix, check_vector

__all__ = ["OneDimensionalTransform", "key_variance"]


class OneDimensionalTransform:
    """Distance-to-reference-point key transform.

    Parameters
    ----------
    strategy:
        A :class:`ReferenceStrategy` instance, or a strategy name accepted
        by :func:`~repro.core.reference.make_reference_strategy`.

    Attributes
    ----------
    reference_point_:
        The fitted reference point ``O'`` (``None`` before :meth:`fit`).
    """

    def __init__(self, strategy: ReferenceStrategy | str = "optimal") -> None:
        if isinstance(strategy, str):
            strategy = make_reference_strategy(strategy)
        if not isinstance(strategy, ReferenceStrategy):
            raise TypeError(
                "strategy must be a ReferenceStrategy or a strategy name"
            )
        self._strategy = strategy
        self.reference_point_: np.ndarray | None = None

    @property
    def strategy(self) -> ReferenceStrategy:
        """The reference-point placement strategy."""
        return self._strategy

    def fit(self, positions) -> "OneDimensionalTransform":
        """Choose the reference point for the given ``(rows, n)`` points."""
        positions = check_matrix(positions, "positions", min_rows=1)
        self.reference_point_ = self._strategy.locate(positions)
        return self

    def _require_fitted(self) -> None:
        if self.reference_point_ is None:
            raise RuntimeError("transform is not fitted; call fit() first")

    def _distances(self, positions: np.ndarray) -> np.ndarray:
        """Row distances to the reference point.

        Single code path for both :meth:`key` and :meth:`keys`: the two
        numpy spellings (``norm(vector)`` uses BLAS ``dnrm2``,
        ``norm(matrix, axis=1)`` a pairwise reduction) can differ in the
        last ULP, and the index relies on a point always mapping to the
        *bit-identical* key it was stored under (e.g. when a removal
        recomputes the key of a record that was bulk-loaded).
        """
        difference = positions - self.reference_point_
        return np.sqrt(np.sum(difference * difference, axis=-1))

    def key(self, point) -> float:
        """Key of a single point: its distance to the reference point."""
        self._require_fitted()
        point = check_vector(point, "point", dim=self.reference_point_.shape[0])
        return float(self._distances(point[None, :])[0])

    def keys(self, positions) -> np.ndarray:
        """Keys of a ``(rows, n)`` matrix of points."""
        self._require_fitted()
        positions = check_matrix(
            positions, "positions", cols=self.reference_point_.shape[0]
        )
        return self._distances(positions)

    def search_range(self, point, radius: float) -> tuple[float, float]:
        """Key range that must contain every point within *radius* of
        *point* (triangle inequality); the low end is clamped at 0."""
        center_key = self.key(point)
        radius = float(radius)
        if radius < 0.0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        return max(center_key - radius, 0.0), center_key + radius


def key_variance(transform: OneDimensionalTransform, positions) -> float:
    """Variance of the transformed keys for a point set.

    Theorem 1's objective: a reference point that maximises this variance
    retains the most pairwise-distance information after the 1-D mapping
    (``Var(|k_i - k_j|)`` over pairs grows with ``Var(k)``).
    """
    positions = check_matrix(positions, "positions", min_rows=1)
    keys = transform.keys(positions)
    return float(keys.var())
