"""Concurrent batched KNN serving over a read-only index snapshot.

The paper measures one query at a time; a production deployment serves a
*stream* of queries.  :class:`QueryEngine` is that serving layer:

* **Snapshot semantics.**  The engine flushes the index's dirty pages at
  construction and from then on reads the B+-tree pager directly.  Index
  mutations made after the engine is built are not visible to it — build a
  fresh engine after inserting or removing videos.
* **Per-worker buffer pools.**  Every worker thread opens its own
  :class:`~repro.storage.buffer_pool.BufferPool` view over the shared
  (thread-safe) pager, so concurrent queries never evict each other's hot
  pages and per-worker hit rates are meaningful.
* **Per-query cost bundles.**  Each query threads its own
  :class:`~repro.utils.counters.CostCounters` through the tree traversal,
  exactly as :meth:`~repro.core.index.VitriIndex.knn` does, so the
  :class:`~repro.core.index.QueryStats` attached to every result is exact
  even under arbitrary interleaving.  Worker totals are aggregated with
  :meth:`CostCounters.add`, never read from global pool counters.
* **Result cache.**  A size-bounded LRU keyed on
  ``(snapshot token, query fingerprint, k, method)`` memoises whole
  results.  The fingerprint hashes the query's *content* (dimension,
  frame count and every ViTri's position/radius/count), so equal queries
  hit regardless of object identity; the snapshot token is the index's
  :meth:`~repro.core.index.VitriIndex.content_token`, so a cache carried
  across :meth:`QueryEngine.refresh` (or shared between shards) can never
  return a ranking computed over different content.  A cache hit returns
  the memoised result, including its original stats.
* **Range-block tier.**  ``range_cache_size > 0`` adds a second tier
  below the result cache: a :class:`~repro.core.range_cache.RangeCache`
  of raw composed-range B+-tree blocks, shared by every worker view and
  scoped on the same content token.  Queries that miss the result cache
  (different ``k``, aged-out entry) still skip the tree for any range
  another query already pulled; the blocks are pre-decode, so logical
  cost signatures are unchanged.  :meth:`QueryEngine.hot_ranges` exports
  the tier's working set and :meth:`QueryEngine.warm` replays one — the
  replica-attach warming path.

Throughput scaling comes from overlapping simulated disk waits: build the
index over a ``Pager(read_latency=...)`` and each physical read sleeps
*outside* the pager lock, so N workers overlap N reads — the paper's
disk-bound cost model, served concurrently.
"""

from __future__ import annotations

import hashlib
import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.btree.tree import BPlusTree
from repro.core.index import (
    KNNResult,
    QueryStats,
    VitriIndex,
    _check_impl,
    _check_query_args,
    _execute_query,
    _rank,
)
from repro.core.range_cache import RangeCache
from repro.core.vitri import VideoSummary
from repro.storage.buffer_pool import BufferPool
from repro.utils.counters import CostCounters, Timer
from repro.utils.locks import make_lock
from repro.utils.stats import percentile

__all__ = ["BatchResult", "QueryEngine", "ServingMetrics", "query_fingerprint"]

_FP_HEADER = struct.Struct("<IQI")
_FP_VITRI = struct.Struct("<dI")


def query_fingerprint(query: VideoSummary) -> str:
    """Content hash of a query summary (cache key component).

    Two summaries with the same dimension, frame count and ViTris (same
    positions, radii and counts, in order) fingerprint identically.
    """
    if not isinstance(query, VideoSummary):
        raise TypeError("query must be a VideoSummary")
    digest = hashlib.blake2b(digest_size=16)
    digest.update(_FP_HEADER.pack(query.dim, query.num_frames, len(query.vitris)))
    for vitri in query.vitris:
        digest.update(vitri.position.tobytes())
        digest.update(_FP_VITRI.pack(vitri.radius, vitri.count))
    return digest.hexdigest()


@dataclass(frozen=True)
class ServingMetrics:
    """Aggregate outcome of one :meth:`QueryEngine.knn_many` batch.

    Latency percentiles are computed over per-query wall times (cache
    hits included); I/O tuples hold one entry per worker, aggregated from
    that worker's per-query counter bundles.
    """

    queries: int
    workers: int
    wall_time: float
    qps: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
    worker_page_requests: tuple[int, ...]
    worker_physical_reads: tuple[int, ...]
    total_page_requests: int
    total_physical_reads: int

    def to_dict(self) -> dict:
        """JSON-serialisable form (what ``BENCH_serving.json`` records)."""
        return {
            "queries": self.queries,
            "workers": self.workers,
            "wall_time": self.wall_time,
            "qps": self.qps,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "worker_page_requests": list(self.worker_page_requests),
            "worker_physical_reads": list(self.worker_physical_reads),
            "total_page_requests": self.total_page_requests,
            "total_physical_reads": self.total_physical_reads,
        }


@dataclass(frozen=True)
class BatchResult:
    """Results of a batch, in query order, plus the batch's metrics."""

    results: tuple[KNNResult, ...]
    metrics: ServingMetrics

    def __len__(self) -> int:
        return len(self.results)


class _WorkerView:
    """One worker's private read path: own pool, own tree handle."""

    def __init__(self, engine: "QueryEngine") -> None:
        self.pool = BufferPool(engine._pager, capacity=engine._buffer_capacity)
        self.tree = BPlusTree.open(self.pool)
        self.counters = CostCounters()
        self.queries_served = 0


class QueryEngine:
    """Batched, thread-parallel KNN serving over a :class:`VitriIndex`.

    Parameters
    ----------
    index:
        A built index.  Its dirty pages are flushed at construction; the
        engine then treats the B+-tree pager as a read-only snapshot.
    buffer_capacity:
        LRU capacity of each worker's private buffer pool.
    cache_size:
        Maximum number of memoised results; ``0`` disables the cache.
    range_cache_size:
        Maximum number of composed-range blocks in the second cache
        tier; ``0`` (default) disables the tier.  Only the vectorized
        implementation consults it.
    """

    def __init__(
        self,
        index: VitriIndex,
        *,
        buffer_capacity: int = 256,
        cache_size: int = 128,
        range_cache_size: int = 0,
        impl: str = "vectorized",
    ) -> None:
        if not isinstance(index, VitriIndex):
            raise TypeError("index must be a VitriIndex")
        _check_impl(impl)
        if not isinstance(buffer_capacity, int) or isinstance(buffer_capacity, bool):
            raise TypeError("buffer_capacity must be an int")
        if buffer_capacity < 1:
            raise ValueError(
                f"buffer_capacity must be >= 1, got {buffer_capacity}"
            )
        if not isinstance(cache_size, int) or isinstance(cache_size, bool):
            raise TypeError("cache_size must be an int")
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        if not isinstance(range_cache_size, int) or isinstance(
            range_cache_size, bool
        ):
            raise TypeError("range_cache_size must be an int")
        if range_cache_size < 0:
            raise ValueError(
                f"range_cache_size must be >= 0, got {range_cache_size}"
            )

        self._index = index
        self._buffer_capacity = buffer_capacity
        self._cache_size = cache_size
        # Inner-loop implementation for every served query.  Rankings
        # are bit-identical across impls (the equivalence suite asserts
        # it), so impl is deliberately NOT part of the cache key.
        self._impl = impl
        self._cache: OrderedDict[
            tuple[str, str, int, str], KNNResult
        ] = OrderedDict()
        self._cache_lock = make_lock("QueryEngine._cache_lock")
        self.cache_hits = 0
        self.cache_misses = 0
        self._range_cache = (
            RangeCache(range_cache_size) if range_cache_size > 0 else None
        )
        self._take_snapshot()

    def _take_snapshot(self) -> None:
        """(Re-)snapshot the served index: push the index's dirty pages
        down so fresh pools see the committed tree (the pager itself is
        thread-safe), and stamp the snapshot's content token into the
        cache key space."""
        index = self._index
        index.flush_pages()
        self._pager = index.btree.buffer_pool.pager
        self._codec = index.codec
        self._transform = index.transform
        self._epsilon = index.epsilon
        self._dim = index.dim
        self._video_frames = index.video_frames
        self._snapshot_token = index.content_token()
        # Dedicated view for the single-query path (fresh pool: a stale
        # pool could hold pre-refresh page images).
        self._serial_view = _WorkerView(self)

    def refresh(self) -> None:
        """Re-snapshot after the underlying index was mutated.

        Memoised results stay in the cache but become unreachable (their
        keys carry the old snapshot token) and age out of the LRU — a
        query can never be answered from a stale snapshot's ranking.
        """
        self._take_snapshot()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Feature-space dimensionality of the served index."""
        return self._dim

    @property
    def snapshot_token(self) -> str:
        """Content token of the snapshot currently served (cache key part)."""
        return self._snapshot_token

    @property
    def cache_size(self) -> int:
        """Maximum number of memoised results (0 = caching disabled)."""
        return self._cache_size

    @property
    def cache_len(self) -> int:
        """Number of results currently memoised."""
        with self._cache_lock:
            return len(self._cache)

    def clear_cache(self) -> None:
        """Drop every memoised result (hit/miss tallies are kept)."""
        with self._cache_lock:
            self._cache.clear()

    @property
    def range_cache_size(self) -> int:
        """Range-tier capacity in blocks (0 = tier disabled)."""
        return (
            self._range_cache.capacity if self._range_cache is not None else 0
        )

    @property
    def range_cache_len(self) -> int:
        """Number of range blocks currently cached."""
        return len(self._range_cache) if self._range_cache is not None else 0

    @property
    def range_cache_hits(self) -> int:
        """Range-tier hits since construction."""
        return self._range_cache.hits if self._range_cache is not None else 0

    @property
    def range_cache_misses(self) -> int:
        """Range-tier misses since construction."""
        return self._range_cache.misses if self._range_cache is not None else 0

    def hot_ranges(self) -> list[tuple[float, float]]:
        """Ranges cached under the current snapshot token, LRU first.

        A primary exports this as the warm set handed to a freshly
        attached replica; replaying it through :meth:`warm` on the other
        side reproduces the tier's state, because WAL-shipped copies
        share content tokens byte-for-byte.
        """
        if self._range_cache is None:
            return []
        return self._range_cache.hot_ranges(self._snapshot_token)

    def warm(self, ranges: list[tuple[float, float]]) -> int:
        """Pre-load composed ranges into the range tier; returns the count.

        The fetch runs on the serial view (its counters absorb the I/O),
        under the current snapshot token.  A no-op when the tier is
        disabled.
        """
        if self._range_cache is None or not ranges:
            return 0
        view = self._serial_view
        counters = CostCounters()
        self._range_cache.fetch(
            self._snapshot_token,
            [(float(low), float(high)) for low, high in ranges],
            lambda missing: view.tree.range_search_many(
                missing,
                payload_dtype=self._codec.record_dtype,
                counters=counters,
            ),
            counters,
        )
        view.counters.add(counters)
        return len(ranges)

    # ------------------------------------------------------------------
    # Query paths
    # ------------------------------------------------------------------
    def knn(
        self,
        query: VideoSummary,
        k: int,
        *,
        method: str = "composed",
        cold: bool = False,
        out_counters: CostCounters | None = None,
    ) -> KNNResult:
        """Serve one KNN query on the engine's serial view.

        Identical semantics to :meth:`VitriIndex.knn`, but over the
        engine's snapshot, with its result cache, and with ``cold``
        clearing only this view's private pool.  ``out_counters``
        receives the query's event bundle (a cache hit contributes
        nothing: no work was done) — the shard router's aggregation seam.
        """
        _check_query_args(query, k, method, self._dim)
        result, _ = self._serve(
            self._serial_view, query, k, method, cold, out_counters
        )
        return result

    def knn_many(
        self,
        queries: list[VideoSummary],
        k: int,
        *,
        method: str = "composed",
        workers: int | None = None,
        cold: bool = False,
    ) -> BatchResult:
        """Serve a batch of queries across ``workers`` threads.

        Parameters
        ----------
        queries:
            The query summaries; results come back in the same order.
        k:
            Number of results per query.
        method:
            ``"composed"`` or ``"naive"`` (see :meth:`VitriIndex.knn`).
        workers:
            Worker-thread count (default 1).  Each worker owns a private
            buffer pool; queries are pulled from a shared cursor.
        cold:
            Clear the serving worker's pool before *each* query, making
            every query's ``physical_reads`` equal to its solo cold run —
            the mode the exactness tests and acceptance criteria use.
        """
        if workers is None:
            workers = 1
        if not isinstance(workers, int) or isinstance(workers, bool):
            raise TypeError("workers must be an int")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        queries = list(queries)
        for query in queries:
            _check_query_args(query, k, method, self._dim)

        views = [_WorkerView(self) for _ in range(workers)]
        results: list[KNNResult | None] = [None] * len(queries)
        latencies: list[float] = [0.0] * len(queries)
        cache_hits = [0] * workers
        cursor_lock = threading.Lock()
        cursor = [0]
        errors: list[BaseException] = []

        def run(worker_index: int) -> None:
            view = views[worker_index]
            try:
                while True:
                    with cursor_lock:
                        position = cursor[0]
                        if position >= len(queries):
                            return
                        cursor[0] += 1
                    result, hit = self._serve(
                        view, queries[position], k, method, cold
                    )
                    results[position] = result
                    latencies[position] = result.stats.wall_time
                    if hit:
                        cache_hits[worker_index] += 1
            except BaseException as exc:  # propagate to the caller
                errors.append(exc)

        with Timer() as batch_timer:
            if workers == 1:
                run(0)
            else:
                threads = [
                    threading.Thread(
                        target=run, args=(i,), name=f"knn-worker-{i}"
                    )
                    for i in range(workers)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
        if errors:
            raise errors[0]

        hits = sum(cache_hits)
        misses = len(queries) - hits
        ordered = sorted(latencies)
        wall = batch_timer.elapsed
        metrics = ServingMetrics(
            queries=len(queries),
            workers=workers,
            wall_time=wall,
            qps=len(queries) / wall if wall > 0.0 else 0.0,
            latency_p50=percentile(ordered, 0.50, default=0.0),
            latency_p95=percentile(ordered, 0.95, default=0.0),
            latency_p99=percentile(ordered, 0.99, default=0.0),
            cache_hits=hits,
            cache_misses=misses,
            cache_hit_rate=hits / len(queries) if queries else 0.0,
            worker_page_requests=tuple(
                view.counters.page_requests for view in views
            ),
            worker_physical_reads=tuple(
                view.counters.page_reads for view in views
            ),
            total_page_requests=sum(
                view.counters.page_requests for view in views
            ),
            total_physical_reads=sum(
                view.counters.page_reads for view in views
            ),
        )
        return BatchResult(results=tuple(results), metrics=metrics)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _serve(
        self,
        view: _WorkerView,
        query: VideoSummary,
        k: int,
        method: str,
        cold: bool,
        out_counters: CostCounters | None = None,
    ) -> tuple[KNNResult, bool]:
        """Serve one query on a worker view; returns (result, cache_hit)."""
        key = (self._snapshot_token, query_fingerprint(query), k, method)
        if self._cache_size > 0:
            with self._cache_lock:
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    self.cache_hits += 1
                    view.queries_served += 1
                    return cached, True
                self.cache_misses += 1

        if cold:
            view.pool.clear()
        # Cold mode promises physical reads equal to a solo cold run, so
        # it bypasses the range tier along with the pool.
        range_cache = None if cold else self._range_cache
        counters = CostCounters()
        with Timer() as timer:
            scores, candidates, ranges = _execute_query(
                query,
                method,
                btree=view.tree,
                codec=self._codec,
                transform=self._transform,
                epsilon=self._epsilon,
                video_frames=self._video_frames,
                counters=counters,
                impl=self._impl,
                range_cache=range_cache,
                cache_token=self._snapshot_token,
            )
            videos, kept_scores = _rank(scores, k)
        stats = QueryStats(
            page_requests=counters.page_requests,
            physical_reads=counters.page_reads,
            node_visits=counters.btree_node_visits,
            similarity_computations=counters.similarity_computations,
            candidates=candidates,
            ranges=ranges,
            wall_time=timer.elapsed,
        )
        result = KNNResult(videos=videos, scores=kept_scores, stats=stats)
        view.counters.add(counters)
        if out_counters is not None:
            out_counters.add(counters)
        view.queries_served += 1

        if self._cache_size > 0:
            with self._cache_lock:
                self._cache[key] = result
                self._cache.move_to_end(key)
                while len(self._cache) > self._cache_size:
                    self._cache.popitem(last=False)
        return result, False

    def __repr__(self) -> str:
        return (
            f"QueryEngine(dim={self._dim}, "
            f"buffer_capacity={self._buffer_capacity}, "
            f"cache_size={self._cache_size}, "
            f"range_cache_size={self.range_cache_size})"
        )
