"""The ViTri index (paper Section 5): a B+-tree over 1-D-transformed
ViTri positions, with KNN query processing and dynamic insertion.

Architecture
------------
Two page stores back the index:

* a **B+-tree** whose leaves hold ``(key, full ViTri record)`` entries,
  where ``key = d(position, O')`` is the 1-D transform of the ViTri
  position — the paper's design ("inserting the key into the B+-tree and
  ViTri into leaf node"), which keeps records key-clustered even under
  dynamic insertion;
* an append-only **heap file** holding the same records as a flat file,
  which is what the sequential-scan baseline reads.

A KNN query summarises the query video into ``M`` query ViTris.  Each
query ViTri ``(O^Q, R^Q, ...)`` can only share frames with database ViTris
within centre distance ``R^Q + eps/2`` (database radii are at most
``eps/2``), so by the triangle inequality its candidates lie in the key
range ``[key(O^Q) - gamma, key(O^Q) + gamma]`` with ``gamma = R^Q + eps/2``.
The ``naive`` method runs one B+-tree range search per query ViTri; the
``composed`` method (query composition) first merges overlapping ranges so
every leaf page is accessed at most once.  Both produce identical results.

Every page access flows through counted buffer pools, and every ViTri
similarity evaluation bumps a CPU counter, so each query returns a
:class:`QueryStats` with the exact cost breakdown the paper's figures plot.

Cost accounting is strictly per query: each :meth:`VitriIndex.knn` call
threads its own :class:`~repro.utils.counters.CostCounters` bundle down
through the B+-tree traversal and buffer pool, and :class:`QueryStats`
is built from that bundle alone.  (An earlier implementation derived
stats from before/after deltas of the *global* pool counters, which
silently corrupted both queries' stats whenever two queries interleaved
— the per-query bundle is also what lets the concurrent
:class:`~repro.core.engine.QueryEngine` report exact costs per query.)
"""

from __future__ import annotations

import hashlib
import json
import struct
from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.btree.tree import BPlusTree
from repro.core.reference import ReferenceStrategy
from repro.core.scoring import ScoreAccumulator
from repro.core.transform import OneDimensionalTransform
from repro.core.vitri import VideoSummary, ViTri
from repro.core.composition import compose_ranges
from repro.pca.incremental import IncrementalMoments
from repro.pca.pca import PCA, principal_angle
from repro.storage.buffer_pool import BufferPool
from repro.storage.heap_file import HeapFile
from repro.storage.pager import Pager
from repro.storage.serialization import ViTriRecord, ViTriRecordCodec
from repro.utils.counters import CostCounters, StageTimer, Timer
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["KNNResult", "QueryStats", "TOMBSTONE_VIDEO_ID", "VitriIndex"]

TOMBSTONE_VIDEO_ID = 0xFFFFFFFF
"""Video-id sentinel marking a removed record in the heap file."""



def _check_radii(summary: VideoSummary, epsilon: float) -> None:
    """Indexed radii must respect the clustering bound ``R <= eps/2``.

    The KNN search radius ``gamma = R^Q + eps/2`` is only a lossless
    filter under that bound; a summary built with a different epsilon
    could otherwise be silently missed by range searches.
    """
    limit = epsilon / 2.0 + 1e-12
    worst = max(vitri.radius for vitri in summary.vitris)
    if worst > limit:
        raise ValueError(
            f"video {summary.video_id} has a ViTri radius {worst:.6g} "
            f"> epsilon/2 = {epsilon / 2.0:.6g}; summarise with the "
            "index's epsilon"
        )


@dataclass(frozen=True)
class QueryStats:
    """Cost breakdown of one KNN query.

    Attributes
    ----------
    page_requests:
        Logical page accesses (B+-tree nodes + heap pages); the paper's
        I/O-cost unit.
    physical_reads:
        Buffer-pool misses that reached the pager.
    node_visits:
        B+-tree nodes traversed.
    similarity_computations:
        ViTri-pair similarity evaluations; the paper's CPU-cost unit.
    candidates:
        Leaf entries pulled out of the B+-tree (with repeats, for the
        naive method).
    ranges:
        Number of range searches executed.
    wall_time:
        Elapsed seconds.
    """

    page_requests: int
    physical_reads: int
    node_visits: int
    similarity_computations: int
    candidates: int
    ranges: int
    wall_time: float


@dataclass(frozen=True)
class KNNResult:
    """Outcome of a KNN query: ranked videos plus the query's cost."""

    videos: tuple[int, ...]
    scores: tuple[float, ...]
    stats: QueryStats

    def __len__(self) -> int:
        return len(self.videos)


def _check_query_args(query: VideoSummary, k: int, method: str, dim: int) -> None:
    """Shared argument validation for KNN entry points (index and engine)."""
    if not isinstance(query, VideoSummary):
        raise TypeError("query must be a VideoSummary")
    if query.dim != dim:
        raise ValueError(
            f"query dimension {query.dim} != index dimension {dim}"
        )
    check_positive_int(k, "k")
    if method not in ("composed", "naive"):
        raise ValueError(f"method must be 'composed' or 'naive', got {method!r}")


def _check_impl(impl: str) -> None:
    if impl not in ("vectorized", "scalar"):
        raise ValueError(
            f"impl must be 'vectorized' or 'scalar', got {impl!r}"
        )


def _rank(
    scores: dict[int, float], k: int
) -> tuple[tuple[int, ...], tuple[float, ...]]:
    """Top-``k`` videos score-descending, video-id tie-break."""
    ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))[:k]
    return (
        tuple(video for video, _ in ranked),
        tuple(score for _, score in ranked),
    )


def _execute_query(
    query: VideoSummary,
    method: str,
    *,
    btree: BPlusTree,
    codec: ViTriRecordCodec,
    transform: OneDimensionalTransform,
    epsilon: float,
    video_frames: dict[int, int],
    counters: CostCounters,
    impl: str = "vectorized",
    range_cache=None,
    cache_token: str | None = None,
) -> tuple[dict[int, float], int, int]:
    """Run one KNN candidate pass and return ``(scores, candidates, ranges)``.

    This is the execution core shared by :meth:`VitriIndex.knn` and the
    concurrent :class:`~repro.core.engine.QueryEngine` workers: every
    page access, node visit and similarity evaluation it performs is
    recorded in the caller's per-query ``counters`` bundle, so costs are
    exact even when many queries run interleaved over shared storage.

    ``impl`` selects the inner-loop implementation:

    * ``"vectorized"`` (default) — bulk leaf-to-leaf range search with
      structured-array page views, one-view columnar record decode, and
      batched sphere-intersection geometry;
    * ``"scalar"`` — the per-record oracle: one ``range_search`` per
      composed range, per-record ``codec.decode``, per-pair
      ``accumulator.evaluate``.

    Both produce bit-identical scores and identical logical cost
    signatures (``similarity_computations``, ``records_scanned``,
    ``records_decoded``, ``candidates``, ``ranges``); the vectorized
    path may report *fewer* ``page_requests``/``node_visits`` because it
    skips redundant root-to-leaf descents.  The equivalence suite
    asserts both properties.

    Per-stage wall time (I/O / deserialize / geometry / merge) is
    accumulated into ``counters.extra["stage_*_s"]`` for the latency
    benchmark's breakdown.

    ``range_cache`` (a :class:`~repro.core.range_cache.RangeCache`) with
    its epoch ``cache_token`` routes the vectorized bulk range search
    through the composed-range block cache: ranges already cached under
    the token skip the tree entirely, missing ranges are fetched in one
    ``range_search_many`` call and inserted.  The cache stores raw
    pre-decode blocks and charges ``records_scanned`` on hits, so the
    logical cost signature stays identical either way.  The scalar
    oracle path never consults the cache.
    """
    gamma = [vitri.radius + epsilon / 2.0 for vitri in query.vitris]
    query_keys = [transform.key(vitri.position) for vitri in query.vitris]
    per_vitri_ranges = [
        (max(key - g, 0.0), key + g) for key, g in zip(query_keys, gamma)
    ]

    accumulator = ScoreAccumulator(query, video_frames)
    candidates = 0

    if method == "naive":
        search_ranges = per_vitri_ranges
    else:
        search_ranges = compose_ranges(per_vitri_ranges)

    if impl == "vectorized":
        # The leaves hold the full ViTri records (the paper's layout),
        # so the bulk range search is the only I/O a query performs.
        with StageTimer(counters, "io"):
            if range_cache is not None and cache_token is not None:
                blocks = range_cache.fetch(
                    cache_token,
                    search_ranges,
                    lambda missing: btree.range_search_many(
                        missing,
                        payload_dtype=codec.record_dtype,
                        counters=counters,
                    ),
                    counters,
                )
            else:
                blocks = btree.range_search_many(
                    search_ranges,
                    payload_dtype=codec.record_dtype,
                    counters=counters,
                )
        if method == "naive":
            with StageTimer(counters, "deserialize"):
                parts = [
                    (keys, codec.columns_from_struct(records, counters=counters))
                    for keys, records in blocks
                ]
            candidates = sum(keys.size for keys, _ in parts)
            with StageTimer(counters, "geometry"):
                for range_index, (keys, columns) in enumerate(parts):
                    vlow, vhigh = per_vitri_ranges[range_index]
                    mask = (keys >= vlow) & (keys <= vhigh)
                    if not np.any(mask):
                        continue
                    selected = columns.take(mask)
                    counters.similarity_computations += (
                        accumulator.evaluate_arrays(
                            range_index,
                            selected.video_ids,
                            selected.vitri_ids,
                            selected.counts,
                            selected.radii,
                            selected.positions,
                        )
                    )
        else:
            with StageTimer(counters, "deserialize"):
                keys = np.concatenate([keys for keys, _ in blocks])
                columns = codec.columns_from_struct(
                    np.concatenate([records for _, records in blocks]),
                    counters=counters,
                )
            candidates = int(keys.size)
            with StageTimer(counters, "geometry"):
                for i, (vlow, vhigh) in enumerate(per_vitri_ranges):
                    mask = (keys >= vlow) & (keys <= vhigh)
                    if not np.any(mask):
                        continue
                    selected = columns.take(mask)
                    counters.similarity_computations += (
                        accumulator.evaluate_arrays(
                            i,
                            selected.video_ids,
                            selected.vitri_ids,
                            selected.counts,
                            selected.radii,
                            selected.positions,
                        )
                    )
    else:
        for range_index, (low, high) in enumerate(search_ranges):
            with StageTimer(counters, "io"):
                entries = btree.range_search(low, high, counters=counters)
            if not entries:
                continue
            candidates += len(entries)
            counters.records_scanned += len(entries)
            with StageTimer(counters, "deserialize"):
                records = [codec.decode(payload) for _, payload in entries]
                counters.records_decoded += len(records)
            if method == "naive":
                relevant = [range_index]
            else:
                relevant = range(len(per_vitri_ranges))
            with StageTimer(counters, "geometry"):
                for (key, _), record in zip(entries, records):
                    indices = [
                        i
                        for i in relevant
                        if per_vitri_ranges[i][0]
                        <= key
                        <= per_vitri_ranges[i][1]
                    ]
                    if indices:
                        counters.similarity_computations += (
                            accumulator.evaluate(record, indices)
                        )

    with StageTimer(counters, "merge"):
        scores = accumulator.scores()
    # Range-search count rides in the bundle's extra dict so aggregators
    # (the shard router) can rebuild every QueryStats field from bundles
    # alone, never from other QueryStats objects.
    counters.extra["range_searches"] = (
        counters.extra.get("range_searches", 0) + len(search_ranges)
    )
    return scores, candidates, len(search_ranges)


class VitriIndex:
    """B+-tree index over 1-D-transformed ViTri positions.

    Build with :meth:`build` (bulk, one-off construction) and extend with
    :meth:`insert_video` (dynamic maintenance).  Query with :meth:`knn`.
    """

    def __init__(self, *, _opened: bool = False) -> None:
        if not _opened:
            raise RuntimeError("use VitriIndex.build(...) to construct an index")
        self._dim = 0
        self._epsilon = 0.0
        self._transform: OneDimensionalTransform | None = None
        self._codec: ViTriRecordCodec | None = None
        self._btree: BPlusTree | None = None
        self._heap: HeapFile | None = None
        self._video_frames: dict[int, int] = {}
        self._next_vitri_id = 0
        self._built_component: np.ndarray | None = None
        self._moments: IncrementalMoments | None = None
        self._summaries_seen = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        summaries: list[VideoSummary],
        epsilon: float,
        *,
        reference: ReferenceStrategy | str = "optimal",
        btree_path: str | None = None,
        heap_path: str | None = None,
        buffer_capacity: int = 256,
        fill_factor: float = 1.0,
        btree_pool: BufferPool | None = None,
        heap_pool: BufferPool | None = None,
    ) -> "VitriIndex":
        """Bulk-build an index from video summaries.

        The B+-tree is bulk-loaded with packed leaves holding the full
        ViTri records in key order (the paper's layout); the parallel
        heap file — the sequential-scan baseline's flat input — is
        written in the same order.

        Parameters
        ----------
        summaries:
            The database videos' ViTri summaries.
        epsilon:
            Frame similarity threshold used when summarising; needed at
            query time to derive search radii (``gamma = R^Q + eps/2``).
        reference:
            Reference-point strategy (instance or name) for the 1-D
            transform.
        btree_path, heap_path:
            Optional backing files; in-memory when omitted.
        buffer_capacity:
            LRU buffer-pool capacity (pages) for each of the two stores.
        fill_factor:
            B+-tree bulk-load fill factor.
        btree_pool, heap_pool:
            Pre-built buffer pools to use instead of constructing fresh
            ones from the path arguments — the seam the crash-safe
            database directory uses to route both stores through one
            shared write-ahead log.  Mutually exclusive with the
            corresponding path argument.
        """
        if not summaries:
            raise ValueError("cannot build an index from zero summaries")
        epsilon = check_positive(epsilon, "epsilon")
        dims = {summary.dim for summary in summaries}
        if len(dims) != 1:
            raise ValueError(f"summaries have inconsistent dimensions: {dims}")
        video_ids = [summary.video_id for summary in summaries]
        if len(set(video_ids)) != len(video_ids):
            raise ValueError("summaries contain duplicate video ids")
        if any(vid >= TOMBSTONE_VIDEO_ID for vid in video_ids):
            raise ValueError(
                f"video ids must be below {TOMBSTONE_VIDEO_ID} (reserved)"
            )
        for summary in summaries:
            _check_radii(summary, epsilon)

        index = cls(_opened=True)
        index._dim = dims.pop()
        index._epsilon = epsilon
        index._codec = ViTriRecordCodec(index._dim)
        index._transform = OneDimensionalTransform(reference)

        flat: list[tuple[int, ViTri]] = [
            (summary.video_id, vitri)
            for summary in summaries
            for vitri in summary.vitris
        ]
        positions = np.stack([vitri.position for _, vitri in flat])
        index._transform.fit(positions)
        index._built_component = PCA(n_components=1).fit(positions).first_component
        index._moments = IncrementalMoments(index._dim)
        index._moments.update(positions)
        keys = index._transform.keys(positions)

        if btree_pool is not None and btree_path is not None:
            raise ValueError("pass btree_path or btree_pool, not both")
        if heap_pool is not None and heap_path is not None:
            raise ValueError("pass heap_path or heap_pool, not both")

        order = np.argsort(keys, kind="stable")
        index._btree = BPlusTree.create(
            btree_pool
            if btree_pool is not None
            else BufferPool(Pager(btree_path), capacity=buffer_capacity),
            payload_size=index._codec.record_size,
        )
        index._heap = HeapFile.create(
            heap_pool
            if heap_pool is not None
            else BufferPool(Pager(heap_path), capacity=buffer_capacity),
            index._codec.record_size,
        )

        entries: list[tuple[float, bytes]] = []
        for position_in_key_order in order:
            video_id, vitri = flat[position_in_key_order]
            record = ViTriRecord(
                video_id=video_id,
                vitri_id=index._next_vitri_id,
                count=vitri.count,
                radius=vitri.radius,
                position=vitri.position,
            )
            index._next_vitri_id += 1
            payload = index._codec.encode(record)
            index._heap.append(payload)
            entries.append((float(keys[position_in_key_order]), payload))
        index._btree.bulk_load(entries, fill_factor=fill_factor)

        index._video_frames = {
            summary.video_id: summary.num_frames for summary in summaries
        }
        index._summaries_seen = len(summaries)
        return index

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Feature-space dimensionality."""
        return self._dim

    @property
    def epsilon(self) -> float:
        """Frame similarity threshold the database was summarised with."""
        return self._epsilon

    @property
    def num_vitris(self) -> int:
        """Number of indexed ViTris."""
        return self._btree.num_entries

    @property
    def num_videos(self) -> int:
        """Number of indexed videos."""
        return len(self._video_frames)

    @property
    def transform(self) -> OneDimensionalTransform:
        """The fitted 1-D transform."""
        return self._transform

    @property
    def codec(self) -> ViTriRecordCodec:
        """The ViTri record codec (shared with baselines and the engine)."""
        return self._codec

    @property
    def btree(self) -> BPlusTree:
        """The underlying B+-tree (exposed for tests and benchmarks)."""
        return self._btree

    @property
    def heap(self) -> HeapFile:
        """The underlying ViTri heap (exposed for tests and benchmarks)."""
        return self._heap

    @property
    def video_frames(self) -> dict[int, int]:
        """Frame count per indexed video id (copy)."""
        return dict(self._video_frames)

    def content_token(self) -> str:
        """Hash identifying this index's *content snapshot*.

        Changes whenever a video is inserted or removed (and across
        distinct indexes/shards), so result caches keyed on it can never
        serve a ranking computed over different content.  Cheap: hashes
        only in-memory metadata, no page I/O.
        """
        digest = hashlib.blake2b(digest_size=16)
        digest.update(
            struct.pack(
                "<IdQQ",
                self._dim,
                self._epsilon,
                self._next_vitri_id,
                self._btree.num_entries,
            )
        )
        digest.update(self._transform.reference_point_.tobytes())
        for video_id in sorted(self._video_frames):
            digest.update(
                struct.pack("<QQ", video_id, self._video_frames[video_id])
            )
        return digest.hexdigest()

    def clear_caches(self) -> None:
        """Flush and drop both buffer pools (cold-start a measurement)."""
        self._btree.buffer_pool.clear()
        self._heap.buffer_pool.clear()

    def flush(self) -> None:
        """Write all dirty pages and sync both backing files (no-op for
        in-memory pagers)."""
        self._btree.flush()
        self._heap.flush()
        self._btree.buffer_pool.pager.sync()
        self._heap.buffer_pool.pager.sync()

    def flush_pages(self) -> None:
        """Push dirty pages down to the pagers *without* syncing.

        Used by a crash-safe database checkpoint: the page images land in
        the shared write-ahead log, and the owning
        :class:`~repro.core.database.VideoDatabase` commits them together
        with its metadata in one atomic step.
        """
        self._btree.flush()
        self._heap.flush()

    # ------------------------------------------------------------------
    # Dynamic maintenance
    # ------------------------------------------------------------------
    def insert_video(self, summary: VideoSummary) -> None:
        """Insert one video with standard B+-tree insertions.

        The reference point is *not* refitted (the paper's dynamic
        scenario); as insertions drift the data's correlation structure,
        key variance degrades — monitor with :meth:`drift_angle` and
        rebuild with :meth:`rebuild` when it exceeds a threshold.
        """
        if not isinstance(summary, VideoSummary):
            raise TypeError("summary must be a VideoSummary")
        if summary.dim != self._dim:
            raise ValueError(
                f"summary dimension {summary.dim} != index dimension {self._dim}"
            )
        if summary.video_id in self._video_frames:
            raise ValueError(f"video id {summary.video_id} already indexed")
        if summary.video_id >= TOMBSTONE_VIDEO_ID:
            raise ValueError(
                f"video ids must be below {TOMBSTONE_VIDEO_ID} (reserved)"
            )
        _check_radii(summary, self._epsilon)
        for vitri in summary.vitris:
            record = ViTriRecord(
                video_id=summary.video_id,
                vitri_id=self._next_vitri_id,
                count=vitri.count,
                radius=vitri.radius,
                position=vitri.position,
            )
            self._next_vitri_id += 1
            payload = self._codec.encode(record)
            self._heap.append(payload)
            key = self._transform.key(vitri.position)
            self._btree.insert(key, payload)
        self._moments.update(summary.positions())
        self._video_frames[summary.video_id] = summary.num_frames
        self._summaries_seen += 1

    def insert_many(self, summaries) -> int:
        """Insert a batch of videos; returns how many were inserted.

        Every summary is validated (type, dimension, epsilon radius
        bound, id unused — in the index and within the batch) before the
        first B+-tree insertion, so a bad element cannot leave a
        half-inserted batch behind.  This is the invariant the ingest
        pipeline's WAL-batched commits rely on: a batch either lands
        whole or not at all.
        """
        batch = list(summaries)
        seen: set[int] = set()
        for summary in batch:
            if not isinstance(summary, VideoSummary):
                raise TypeError("summaries must be VideoSummary instances")
            if summary.dim != self._dim:
                raise ValueError(
                    f"summary dimension {summary.dim} != index "
                    f"dimension {self._dim}"
                )
            if summary.video_id in self._video_frames or summary.video_id in seen:
                raise ValueError(f"video id {summary.video_id} already indexed")
            if summary.video_id >= TOMBSTONE_VIDEO_ID:
                raise ValueError(
                    f"video ids must be below {TOMBSTONE_VIDEO_ID} (reserved)"
                )
            _check_radii(summary, self._epsilon)
            seen.add(summary.video_id)
        for summary in batch:
            self.insert_video(summary)
        return len(batch)

    def remove_video(self, video_id: int) -> int:
        """Remove a video's ViTris from the index; returns how many.

        B+-tree entries are removed with lazy deletion (underflowing
        leaves remain until a rebuild); the heap records are overwritten
        with tombstones so the sequential-scan baseline skips them.
        """
        if video_id not in self._video_frames:
            raise ValueError(f"video id {video_id} is not indexed")
        removed = 0
        for record_id, payload in list(self._heap.scan()):
            record = self._codec.decode(payload)
            if record.video_id != video_id:
                continue
            key = self._transform.key(record.position)
            deleted = self._btree.delete(key, payload)
            if deleted == 0:
                raise RuntimeError(
                    f"index out of sync: ViTri {record.vitri_id} of video "
                    f"{video_id} is in the heap but not in the B+-tree"
                )
            removed += deleted
            tombstone = ViTriRecord(
                video_id=TOMBSTONE_VIDEO_ID,
                vitri_id=record.vitri_id,
                count=record.count,
                radius=record.radius,
                position=record.position,
            )
            self._heap.overwrite(record_id, self._codec.encode(tombstone))
            self._moments.downdate(record.position[None, :])
        del self._video_frames[video_id]
        return removed

    def drift_angle(self) -> float:
        """Angle (radians) between the build-time first principal component
        and the current one (Section 6.3.3's rebuild trigger).

        Computed from exact streaming moments maintained across inserts
        and removals, so the check performs **no page I/O**.
        """
        current = self._moments.first_component()
        return principal_angle(self._built_component, current)

    def rebuild(
        self,
        *,
        reference: ReferenceStrategy | str | None = None,
        buffer_capacity: int = 256,
        fill_factor: float = 1.0,
    ) -> "VitriIndex":
        """Return a freshly built index over the current content.

        Re-fits the reference point on all present ViTri positions; used
        when :meth:`drift_angle` exceeds the allowed degree.
        """
        summaries = self._reconstruct_summaries()
        return VitriIndex.build(
            summaries,
            self._epsilon,
            reference=reference if reference is not None else self._transform.strategy,
            buffer_capacity=buffer_capacity,
            fill_factor=fill_factor,
        )

    def _all_positions(self) -> np.ndarray:
        positions = [
            record.position
            for record in (
                self._codec.decode(payload) for _, payload in self._heap.scan()
            )
            if record.video_id != TOMBSTONE_VIDEO_ID
        ]
        if not positions:
            # Every record tombstoned: a legal state for a reopened index.
            return np.zeros((0, self._dim))
        return np.stack(positions)

    def summaries(self) -> list[VideoSummary]:
        """Reconstruct every indexed video's summary from the heap
        (video-id ascending).  Full heap scan — intended for rebuilds,
        shard rebalancing and manifest reconciliation, not queries."""
        return self._reconstruct_summaries()

    def _reconstruct_summaries(self) -> list[VideoSummary]:
        by_video: dict[int, list[ViTri]] = defaultdict(list)
        for _, payload in self._heap.scan():
            record = self._codec.decode(payload)
            if record.video_id == TOMBSTONE_VIDEO_ID:
                continue
            by_video[record.video_id].append(
                ViTri(
                    position=record.position,
                    radius=record.radius,
                    count=record.count,
                )
            )
        return [
            VideoSummary(
                video_id=video_id,
                vitris=tuple(vitris),
                num_frames=self._video_frames[video_id],
            )
            for video_id, vitris in sorted(by_video.items())
        ]

    # ------------------------------------------------------------------
    # KNN query processing
    # ------------------------------------------------------------------
    def knn(
        self,
        query: VideoSummary,
        k: int,
        *,
        method: str = "composed",
        impl: str = "vectorized",
        cold: bool = False,
        out_counters: CostCounters | None = None,
    ) -> KNNResult:
        """Find the top-``k`` most similar database videos.

        Parameters
        ----------
        query:
            ViTri summary of the query video (summarised with the same
            ``epsilon`` as the database).
        k:
            Number of results.
        method:
            ``"composed"`` (query composition, the default) or ``"naive"``
            (one independent range search per query ViTri).  Both return
            identical results; they differ only in cost.
        impl:
            ``"vectorized"`` (page-batched reads + numpy geometry, the
            default) or ``"scalar"`` (the per-record oracle).  Results
            are bit-identical; ``"scalar"`` exists as the equivalence
            baseline and for debugging.
        cold:
            Clear the buffer pools first so the reported I/O reflects a
            cold cache.
        out_counters:
            Optional caller-owned bundle the query's events are folded
            into (in addition to the returned stats) — the seam the
            shard router uses to aggregate per-shard costs.
        """
        _check_query_args(query, k, method, self._dim)
        _check_impl(impl)
        if cold:
            self.clear_caches()

        # Per-query bundle: every page access / node visit / similarity
        # evaluation of *this* query lands here and nowhere else, so
        # interleaved queries cannot misattribute each other's costs.
        counters = CostCounters()
        with Timer() as timer:
            scores, candidates, ranges = _execute_query(
                query,
                method,
                btree=self._btree,
                codec=self._codec,
                transform=self._transform,
                epsilon=self._epsilon,
                video_frames=self._video_frames,
                counters=counters,
                impl=impl,
            )
            videos, kept_scores = _rank(scores, k)

        stats = QueryStats(
            page_requests=counters.page_requests,
            physical_reads=counters.page_reads,
            node_visits=counters.btree_node_visits,
            similarity_computations=counters.similarity_computations,
            candidates=candidates,
            ranges=ranges,
            wall_time=timer.elapsed,
        )
        if out_counters is not None:
            out_counters.add(counters)
        return KNNResult(videos=videos, scores=kept_scores, stats=stats)

    def similarity_range(
        self,
        query: VideoSummary,
        min_similarity: float,
        *,
        method: str = "composed",
        impl: str = "vectorized",
        cold: bool = False,
        out_counters: CostCounters | None = None,
    ) -> KNNResult:
        """All videos whose similarity to the query is at least the
        threshold, ranked (an epsilon-range query at video level).

        Costs exactly one KNN-style candidate pass: the key filter already
        prunes every zero-similarity ViTri pair, so thresholding happens
        on the final scores.  The returned stats are this call's own —
        measured from a per-query counter bundle and a wall timer that
        cover the whole operation including the threshold filtering (not
        a reused full-``k`` :meth:`knn` stats object).
        """
        if not isinstance(min_similarity, (int, float)) or isinstance(
            min_similarity, bool
        ):
            raise TypeError("min_similarity must be a number")
        if not 0.0 < min_similarity <= 1.0:
            raise ValueError(
                f"min_similarity must be in (0, 1], got {min_similarity}"
            )
        _check_query_args(query, 1, method, self._dim)
        _check_impl(impl)
        if cold:
            self.clear_caches()

        counters = CostCounters()
        with Timer() as timer:
            scores, candidates, ranges = _execute_query(
                query,
                method,
                btree=self._btree,
                codec=self._codec,
                transform=self._transform,
                epsilon=self._epsilon,
                video_frames=self._video_frames,
                counters=counters,
                impl=impl,
            )
            kept = {
                video: score
                for video, score in scores.items()
                if score >= min_similarity
            }
            videos, kept_scores = _rank(kept, len(kept))

        stats = QueryStats(
            page_requests=counters.page_requests,
            physical_reads=counters.page_reads,
            node_visits=counters.btree_node_visits,
            similarity_computations=counters.similarity_computations,
            candidates=candidates,
            ranges=ranges,
            wall_time=timer.elapsed,
        )
        if out_counters is not None:
            out_counters.add(counters)
        return KNNResult(videos=videos, scores=kept_scores, stats=stats)

    # ------------------------------------------------------------------
    # Metadata persistence
    # ------------------------------------------------------------------
    def meta_dict(self) -> dict:
        """The index's non-paged metadata as a JSON-serialisable dict
        (epsilon, reference point, video frame counts, ...)."""
        return {
            "dim": self._dim,
            "epsilon": self._epsilon,
            "reference_point": self._transform.reference_point_.tolist(),
            "built_component": self._built_component.tolist(),
            "video_frames": {str(k): v for k, v in self._video_frames.items()},
            "next_vitri_id": self._next_vitri_id,
        }

    def save_meta(self, path: str) -> None:
        """Write the index's non-paged metadata (epsilon, reference point,
        video frame counts) as JSON, for re-opening file-backed indexes."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.meta_dict(), handle)

    @classmethod
    def from_storage(
        cls,
        btree_pool: BufferPool,
        heap_pool: BufferPool,
        meta: dict,
        *,
        reference: ReferenceStrategy | str = "optimal",
    ) -> "VitriIndex":
        """Re-attach an index to already-open storage plus a meta dict.

        The inverse of :meth:`meta_dict` over pools the caller controls —
        this is how the crash-safe database reopens a recovered directory
        whose pagers share one write-ahead log.
        """
        index = cls(_opened=True)
        index._dim = int(meta["dim"])
        index._epsilon = float(meta["epsilon"])
        index._codec = ViTriRecordCodec(index._dim)
        index._transform = OneDimensionalTransform(reference)
        index._transform.reference_point_ = np.asarray(
            meta["reference_point"], dtype=np.float64
        )
        index._built_component = np.asarray(
            meta["built_component"], dtype=np.float64
        )
        index._video_frames = {
            int(k): int(v) for k, v in meta["video_frames"].items()
        }
        index._next_vitri_id = int(meta["next_vitri_id"])
        index._summaries_seen = len(index._video_frames)
        index._btree = BPlusTree.open(btree_pool)
        index._heap = HeapFile.open(heap_pool)
        index._moments = IncrementalMoments(index._dim)
        positions = index._all_positions()
        if positions.shape[0] > 0:
            index._moments.update(positions)
        return index

    @classmethod
    def open(
        cls,
        btree_path: str,
        heap_path: str,
        meta_path: str,
        *,
        reference: ReferenceStrategy | str = "optimal",
        buffer_capacity: int = 256,
    ) -> "VitriIndex":
        """Re-open a file-backed index written earlier.

        The stored reference point is restored verbatim (the strategy
        object is only needed for future rebuilds).
        """
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        return cls.from_storage(
            BufferPool(Pager(btree_path), capacity=buffer_capacity),
            BufferPool(Pager(heap_path), capacity=buffer_capacity),
            meta,
            reference=reference,
        )

    def __repr__(self) -> str:
        return (
            f"VitriIndex(videos={self.num_videos}, vitris={self.num_vitris}, "
            f"dim={self._dim}, epsilon={self._epsilon})"
        )

    def __len__(self) -> int:
        return self.num_vitris
