"""Exact frame-level video similarity (paper Section 3.1).

This is the measure the whole system approximates, and what the evaluation
uses as ground truth:

    sim(X, Y) = ( |{x in X : exists y in Y, d(x, y) <= eps}|
                + |{y in Y : exists x in X, d(x, y) <= eps}| )
                / (|X| + |Y|)

It is robust to temporal order (a video is treated as a bag of frames) and
costs ``O(|X| * |Y| * n)`` — the cost the ViTri summary exists to avoid.
The implementation blocks the distance computation to bound memory on long
videos.
"""

from __future__ import annotations

import numpy as np

from repro.utils.counters import CostCounters
from repro.utils.validation import check_matrix, check_positive

__all__ = ["frame_similarity", "frames_with_match"]

_BLOCK = 2048


def frames_with_match(
    frames_x, frames_y, epsilon: float, counters: CostCounters | None = None
) -> int:
    """Number of frames of ``X`` that have at least one frame of ``Y``
    within distance ``epsilon``."""
    frames_x = check_matrix(frames_x, "frames_x", min_rows=1)
    frames_y = check_matrix(frames_y, "frames_y", cols=frames_x.shape[1], min_rows=1)
    epsilon = check_positive(epsilon, "epsilon")
    epsilon_sq = epsilon * epsilon

    matched = 0
    y_sq = np.sum(frames_y * frames_y, axis=1)
    for start in range(0, frames_x.shape[0], _BLOCK):
        block = frames_x[start : start + _BLOCK]
        block_sq = np.sum(block * block, axis=1)
        # Squared distances via the expansion; clip round-off negatives.
        sq = block_sq[:, None] - 2.0 * (block @ frames_y.T) + y_sq[None, :]
        np.clip(sq, 0.0, None, out=sq)
        matched += int(np.any(sq <= epsilon_sq, axis=1).sum())
        if counters is not None:
            counters.distance_computations += sq.size
    return matched


def frame_similarity(
    frames_x, frames_y, epsilon: float, counters: CostCounters | None = None
) -> float:
    """The paper's exact video similarity measure, in ``[0, 1]``."""
    frames_x = check_matrix(frames_x, "frames_x", min_rows=1)
    frames_y = check_matrix(
        frames_y, "frames_y", cols=frames_x.shape[1], min_rows=1
    )
    count_x = frames_with_match(frames_x, frames_y, epsilon, counters)
    count_y = frames_with_match(frames_y, frames_x, epsilon, counters)
    total = frames_x.shape[0] + frames_y.shape[0]
    return (count_x + count_y) / total
