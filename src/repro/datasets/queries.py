"""Query workload sampling.

The paper averages its measurements over 50 queries for 50-NN search, with
queries drawn from the database itself and ground truth computed at frame
level.  :func:`sample_queries` reproduces that setup; by default it prefers
videos that belong to a near-duplicate family so the KNN problem is
non-trivial (a distractor's only meaningful neighbour is itself).
"""

from __future__ import annotations

from repro.datasets.loader import VideoDataset
from repro.utils.rng import ensure_rng

__all__ = ["sample_queries"]


def sample_queries(
    dataset: VideoDataset,
    num_queries: int,
    *,
    prefer_families: bool = True,
    seed=None,
) -> list[int]:
    """Sample query video ids from the dataset.

    Parameters
    ----------
    dataset:
        The dataset to draw from.
    num_queries:
        Number of query ids to return (without replacement when possible).
    prefer_families:
        Draw from family members first, falling back to distractors only
        when families are exhausted.
    seed:
        Seed / generator for reproducibility.
    """
    if not isinstance(num_queries, int) or isinstance(num_queries, bool):
        raise TypeError("num_queries must be an int")
    if num_queries < 1:
        raise ValueError(f"num_queries must be >= 1, got {num_queries}")
    rng = ensure_rng(seed)

    family_ids = [
        info.video_id
        for info in (dataset.info(i) for i in range(dataset.num_videos))
        if info.family >= 0
    ]
    other_ids = [
        video_id
        for video_id in range(dataset.num_videos)
        if video_id not in set(family_ids)
    ]
    if prefer_families:
        pool = family_ids + other_ids
    else:
        pool = list(range(dataset.num_videos))
        rng.shuffle(pool)

    if num_queries <= len(pool):
        if prefer_families:
            primary = pool[: max(len(family_ids), num_queries)]
            picks = rng.choice(
                len(primary), size=num_queries, replace=False
            )
            return [primary[i] for i in sorted(picks)]
        return pool[:num_queries]
    # More queries than videos: sample with replacement.
    picks = rng.integers(0, dataset.num_videos, size=num_queries)
    return [int(p) for p in picks]
