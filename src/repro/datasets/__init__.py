"""Synthetic video dataset substrate.

The paper evaluates on ~6,500 real TV advertisements represented as
64-dimensional quantised-RGB colour histograms (2 bits per channel,
normalised by pixel count).  Real captures are unavailable here, so
:mod:`repro.datasets.synthetic` generates videos with the same statistical
structure the algorithms depend on:

* frames are non-negative 64-d vectors summing to 1 (histograms);
* strong temporal locality — videos are sequences of *shots*, each a
  stationary anchor histogram plus small per-frame jitter, so nearby
  frames cluster tightly (the premise of ``Generate_Clusters``);
* *near-duplicate families* — groups of variants of a source video
  (re-encodes, brightness shifts, frame drops), giving KNN queries a
  non-trivial, frame-level-verifiable ground truth;
* the paper's three duration classes (30/15/10 s at 25 fps, scalable).

:mod:`repro.datasets.features` extracts the paper's quantised-RGB
histograms from real decoded frames; :mod:`repro.datasets.queries`
samples query workloads; :mod:`repro.datasets.loader` persists datasets
as ``.npz``.
"""

from __future__ import annotations

from repro.datasets.features import histogram_dim, rgb_histogram, video_histograms
from repro.datasets.loader import VideoDataset
from repro.datasets.queries import sample_queries
from repro.datasets.synthetic import DatasetConfig, generate_dataset

__all__ = [
    "DatasetConfig",
    "VideoDataset",
    "generate_dataset",
    "sample_queries",
    "histogram_dim",
    "rgb_histogram",
    "video_histograms",
]
