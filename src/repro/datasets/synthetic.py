"""Synthetic TV-advertisement video generator.

The paper evaluates on ~6,500 real TV ads as 64-d quantised-RGB colour
histograms.  This generator reproduces the statistical structure those
algorithms depend on, with a four-level hierarchy:

``dataset -> video -> scene -> shot -> frame``

* **Dataset level** — two correlated content axes, each a pair of sparse
  extreme histograms: a *palette* axis (every video has a position on it)
  and a *scene* axis (every scene has a position on it).  Real histogram
  collections are strongly low-rank; these axes are what give the first
  principal components a dominant variance share — the property Theorem
  1's optimal reference point exploits.
* **Video level** — a palette position ``w`` plus a sparse *identity*
  histogram tinting all the video's frames, keeping unrelated ads apart
  at frame level.
* **Scene level** — a position ``u`` on the scene axis.  Scene-to-scene
  distance within a video is continuous in ``|u - u'|``, so as ``epsilon``
  grows, ``Generate_Clusters`` merges ever more scenes — reproducing the
  smooth decline of cluster counts in the paper's Table 3.
* **Shot level** — a small sparse residual per shot; **frame level** — a
  slow random walk plus i.i.d. jitter, so frames within a shot cluster
  tightly (the premise of the summarisation).

Near-duplicate *families* model the retrieval task: a source video is
perturbed into variants by a global anchor shift (re-encode / brightness),
fresh jitter, random frame drops and shot reordering.  The perturbation is
*graduated* across the family so the frame-level ground truth ranks family
members distinctly rather than tying them.

All frames are non-negative and sum to 1, like the paper's pixel-count-
normalised histograms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.loader import VideoDataset, VideoInfo
from repro.utils.rng import ensure_rng

__all__ = ["DatasetConfig", "generate_dataset"]


@dataclass(frozen=True)
class DatasetConfig:
    """Knobs of the synthetic dataset.

    Attributes
    ----------
    dim:
        Feature dimensionality (64 = 2 bits per RGB channel in the paper).
    num_families:
        Number of near-duplicate families.
    family_size:
        Videos per family (1 source + ``family_size - 1`` variants).
    num_distractors:
        Independent videos unrelated to any family.
    duration_classes:
        ``(frames, weight)`` pairs mimicking the paper's Table 2 duration
        mix (30/15/10 s at 25 fps, scaled down by default for speed).
    shot_length_mean:
        Average frames per shot.
    shots_per_scene_mean:
        Average shots per scene.
    palette_weight / scene_weight / identity_weight / shot_weight:
        Relative weights of the anchor components: the palette-axis blend
        (per video), the scene-axis blend (per scene), the video identity
        histogram and the per-shot residual.
    axis_concentration:
        Dirichlet concentration of the four axis-extreme histograms;
        smaller = sparser = longer axes.
    identity_concentration / shot_concentration:
        Dirichlet concentrations of the identity and shot residuals.
    palette_beta:
        ``Beta(a, a)`` parameter of per-video palette positions (1.0 =
        uniform; values below 1 push videos towards the extremes, widening
        the key spread at the cost of palette collisions).
    palette_jitter:
        Std of the per-scene deviation from the video's palette position.
    jitter / drift:
        Per-frame i.i.d. noise std and random-walk step std within a shot.
    variant_anchor_noise:
        Base std of the global anchor perturbation applied to family
        variants.  The k-th variant uses
        ``variant_anchor_noise * (0.4 + 1.2 * k / (family_size - 1))``,
        so family members degrade unevenly (like real re-recordings) and
        the ground-truth ranking inside a family is well defined.
    variant_drop_rate:
        Fraction of frames randomly dropped in each variant.
    """

    dim: int = 64
    num_families: int = 16
    family_size: int = 4
    num_distractors: int = 36
    duration_classes: tuple[tuple[int, float], ...] = (
        (150, 0.45),
        (75, 0.38),
        (50, 0.17),
    )
    shot_length_mean: float = 10.0
    shots_per_scene_mean: float = 2.0
    palette_weight: float = 5.0
    scene_weight: float = 10.0
    identity_weight: float = 4.0
    shot_weight: float = 0.8
    axis_concentration: float = 0.015
    identity_concentration: float = 0.02
    shot_concentration: float = 0.05
    palette_beta: float = 1.0
    palette_jitter: float = 0.03
    jitter: float = 0.006
    drift: float = 0.002
    variant_anchor_noise: float = 0.004
    variant_drop_rate: float = 0.08

    def __post_init__(self) -> None:
        if self.dim < 2:
            raise ValueError(f"dim must be >= 2, got {self.dim}")
        if self.num_families < 0 or self.num_distractors < 0:
            raise ValueError("video counts must be non-negative")
        if self.num_families > 0 and self.family_size < 1:
            raise ValueError("family_size must be >= 1")
        if self.num_families == 0 and self.num_distractors == 0:
            raise ValueError("the dataset must contain at least one video")
        if not self.duration_classes:
            raise ValueError("at least one duration class is required")
        for frames, weight in self.duration_classes:
            if frames < 2 or weight < 0:
                raise ValueError(f"invalid duration class ({frames}, {weight})")

    @property
    def num_videos(self) -> int:
        """Total videos the configuration generates."""
        return self.num_families * self.family_size + self.num_distractors

    @classmethod
    def precision_preset(cls, **overrides) -> "DatasetConfig":
        """Configuration tuned for the retrieval-precision experiments
        (Figures 14-15).

        Emphasises per-video *identity* so the frame-level ground truth
        separates near-duplicate families from unrelated videos across the
        whole epsilon sweep; near-duplicate variants carry graduated
        perturbations so the ground-truth ranking within a family is well
        defined.
        """
        params = dict(
            num_families=10,
            family_size=6,
            num_distractors=20,
            palette_weight=6.0,
            scene_weight=0.5,
            identity_weight=5.0,
            shot_weight=1.2,
            shot_concentration=0.03,
            palette_beta=0.5,
        )
        params.update(overrides)
        return cls(**params)

    @classmethod
    def indexing_preset(cls, **overrides) -> "DatasetConfig":
        """Configuration tuned for the index-cost experiments
        (Figures 16-19).

        Emphasises the correlated palette/scene axes so the data has the
        dominant-first-principal-component structure real histogram
        collections exhibit — the property the optimal reference point
        exploits.  Frame-level separability does not matter here (the cost
        experiments never consult ground truth), so identity is kept
        small.
        """
        params = dict(
            num_families=0,
            family_size=1,
            num_distractors=100,
            palette_weight=24.0,
            scene_weight=3.0,
            identity_weight=1.5,
            shot_weight=0.8,
            axis_concentration=0.008,
            jitter=0.004,
        )
        params.update(overrides)
        return cls(**params)


def _sample_duration(config: DatasetConfig, rng: np.random.Generator) -> int:
    frames = np.array([f for f, _ in config.duration_classes])
    weights = np.array([w for _, w in config.duration_classes], dtype=np.float64)
    weights = weights / weights.sum()
    return int(rng.choice(frames, p=weights))


class _World:
    """Dataset-level latent structure: the two content axes."""

    def __init__(self, config: DatasetConfig, rng: np.random.Generator) -> None:
        alpha = np.full(config.dim, config.axis_concentration)
        self.palette_a = rng.dirichlet(alpha)
        self.palette_b = rng.dirichlet(alpha)
        self.scene_a = rng.dirichlet(alpha)
        self.scene_b = rng.dirichlet(alpha)


@dataclass
class _VideoLatent:
    """Per-video latent content (shared verbatim by a family's variants)."""

    palette_position: float
    identity: np.ndarray
    scene_positions: list[float]
    scene_palette_offsets: list[float]
    shot_scenes: list[int]
    shot_residuals: list[np.ndarray]
    shot_lengths: list[int]


def _shot_lengths(
    total_frames: int, mean_length: float, rng: np.random.Generator
) -> list[int]:
    """Split a frame budget into shot runs of ~geometric length."""
    lengths: list[int] = []
    remaining = total_frames
    while remaining > 0:
        length = 1 + int(rng.geometric(min(1.0 / mean_length, 1.0)))
        length = min(length, remaining)
        lengths.append(length)
        remaining -= length
    return lengths


def _sample_video_latent(
    config: DatasetConfig, rng: np.random.Generator
) -> _VideoLatent:
    duration = _sample_duration(config, rng)
    lengths = _shot_lengths(duration, config.shot_length_mean, rng)
    num_shots = len(lengths)
    num_scenes = max(1, round(num_shots / config.shots_per_scene_mean))
    scene_of_shot = sorted(
        int(rng.integers(num_scenes)) if num_scenes > 1 else 0
        for _ in range(num_shots)
    )
    palette_position = float(rng.beta(config.palette_beta, config.palette_beta))
    return _VideoLatent(
        palette_position=palette_position,
        identity=rng.dirichlet(np.full(config.dim, config.identity_concentration)),
        scene_positions=[float(rng.uniform(0.0, 1.0)) for _ in range(num_scenes)],
        scene_palette_offsets=[
            float(rng.normal(0.0, config.palette_jitter)) for _ in range(num_scenes)
        ],
        shot_scenes=scene_of_shot,
        shot_residuals=[
            rng.dirichlet(np.full(config.dim, config.shot_concentration))
            for _ in range(num_shots)
        ],
        shot_lengths=lengths,
    )


def _shot_anchors(
    latent: _VideoLatent, world: _World, config: DatasetConfig
) -> list[np.ndarray]:
    """Materialise the anchor histogram of every shot from the latent."""
    total_weight = (
        config.palette_weight
        + config.scene_weight
        + config.identity_weight
        + config.shot_weight
    )
    anchors: list[np.ndarray] = []
    for shot, scene in enumerate(latent.shot_scenes):
        w = float(
            np.clip(
                latent.palette_position + latent.scene_palette_offsets[scene],
                0.0,
                1.0,
            )
        )
        u = latent.scene_positions[scene]
        blend = (
            config.palette_weight
            * (w * world.palette_a + (1.0 - w) * world.palette_b)
            + config.scene_weight * (u * world.scene_a + (1.0 - u) * world.scene_b)
            + config.identity_weight * latent.identity
            + config.shot_weight * latent.shot_residuals[shot]
        )
        anchors.append(blend / total_weight)
    return anchors


def _renormalise(frame: np.ndarray) -> np.ndarray:
    """Clip negatives introduced by noise and renormalise to sum 1."""
    clipped = np.clip(frame, 0.0, None)
    total = clipped.sum()
    if total <= 0.0:
        # Pathological (all mass clipped); fall back to uniform.
        return np.full(frame.shape[0], 1.0 / frame.shape[0])
    return clipped / total


def _render_video(
    anchors: list[np.ndarray],
    lengths: list[int],
    config: DatasetConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Materialise frames from per-shot anchors."""
    frames: list[np.ndarray] = []
    for anchor, length in zip(anchors, lengths):
        current = anchor.copy()
        for _ in range(length):
            current = current + rng.normal(0.0, config.drift, config.dim)
            frame = current + rng.normal(0.0, config.jitter, config.dim)
            frames.append(_renormalise(frame))
    return np.stack(frames)


def _make_variant(
    anchors: list[np.ndarray],
    lengths: list[int],
    config: DatasetConfig,
    rng: np.random.Generator,
    noise_scale: float,
) -> tuple[list[np.ndarray], list[int]]:
    """Perturb a source's shot structure into a near-duplicate variant."""
    # Global "re-encode" shift applied to every anchor of the variant.
    shift = rng.normal(0.0, config.variant_anchor_noise * noise_scale, config.dim)
    new_anchors = [_renormalise(anchor + shift) for anchor in anchors]
    # Random frame drops change shot lengths slightly.
    new_lengths = []
    for length in lengths:
        kept = sum(
            1 for _ in range(length) if rng.random() >= config.variant_drop_rate
        )
        new_lengths.append(max(kept, 1))
    # Shot reordering: harmless under the order-robust similarity measure.
    order = rng.permutation(len(new_anchors))
    new_anchors = [new_anchors[i] for i in order]
    new_lengths = [new_lengths[i] for i in order]
    return new_anchors, new_lengths


def generate_dataset(config: DatasetConfig | None = None, seed=None) -> VideoDataset:
    """Generate a synthetic video dataset.

    Parameters
    ----------
    config:
        Dataset knobs; defaults to :class:`DatasetConfig()`.
    seed:
        Seed / generator for reproducibility.

    Returns
    -------
    VideoDataset
        Videos with per-video metadata (family id, or -1 for distractors).
    """
    if config is None:
        config = DatasetConfig()
    rng = ensure_rng(seed)
    world = _World(config, rng)

    videos: list[np.ndarray] = []
    infos: list[VideoInfo] = []
    video_id = 0
    for family in range(config.num_families):
        latent = _sample_video_latent(config, rng)
        anchors = _shot_anchors(latent, world, config)
        for member in range(config.family_size):
            if member == 0:
                frames = _render_video(anchors, latent.shot_lengths, config, rng)
            else:
                if config.family_size > 1:
                    noise_scale = 0.4 + 1.2 * member / (config.family_size - 1)
                else:
                    noise_scale = 1.0
                v_anchors, v_lengths = _make_variant(
                    anchors,
                    latent.shot_lengths,
                    config,
                    rng,
                    noise_scale=noise_scale,
                )
                frames = _render_video(v_anchors, v_lengths, config, rng)
            videos.append(frames)
            infos.append(
                VideoInfo(video_id=video_id, family=family, num_frames=len(frames))
            )
            video_id += 1
    for _ in range(config.num_distractors):
        latent = _sample_video_latent(config, rng)
        anchors = _shot_anchors(latent, world, config)
        frames = _render_video(anchors, latent.shot_lengths, config, rng)
        videos.append(frames)
        infos.append(
            VideoInfo(video_id=video_id, family=-1, num_frames=len(frames))
        )
        video_id += 1

    return VideoDataset(videos=videos, infos=infos, dim=config.dim)
