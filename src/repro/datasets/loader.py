"""Dataset container and ``.npz`` persistence."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["VideoDataset", "VideoInfo"]


@dataclass(frozen=True)
class VideoInfo:
    """Per-video metadata.

    Attributes
    ----------
    video_id:
        Index of the video in the dataset.
    family:
        Near-duplicate family id, or ``-1`` for an unrelated distractor.
    num_frames:
        Length of the video in frames.
    """

    video_id: int
    family: int
    num_frames: int


class VideoDataset:
    """A collection of videos plus metadata.

    Parameters
    ----------
    videos:
        List of ``(frames_i, dim)`` float64 matrices.
    infos:
        One :class:`VideoInfo` per video, aligned with ``videos``.
    dim:
        Shared feature dimensionality.
    """

    def __init__(
        self, videos: list[np.ndarray], infos: list[VideoInfo], dim: int
    ) -> None:
        if len(videos) != len(infos):
            raise ValueError(
                f"{len(videos)} videos but {len(infos)} info records"
            )
        if not videos:
            raise ValueError("a dataset must contain at least one video")
        for index, (frames, info) in enumerate(zip(videos, infos)):
            if frames.ndim != 2 or frames.shape[1] != dim:
                raise ValueError(
                    f"video {index} has shape {frames.shape}, expected (*, {dim})"
                )
            if info.num_frames != frames.shape[0]:
                raise ValueError(
                    f"video {index}: info says {info.num_frames} frames, "
                    f"matrix has {frames.shape[0]}"
                )
            if info.video_id != index:
                raise ValueError(
                    f"video {index}: video_id {info.video_id} out of order"
                )
        self._videos = [np.ascontiguousarray(v, dtype=np.float64) for v in videos]
        self._infos = list(infos)
        self._dim = dim

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Feature dimensionality."""
        return self._dim

    @property
    def num_videos(self) -> int:
        """Number of videos."""
        return len(self._videos)

    @property
    def total_frames(self) -> int:
        """Total frames across all videos."""
        return sum(info.num_frames for info in self._infos)

    def frames(self, video_id: int) -> np.ndarray:
        """The frame matrix of one video."""
        return self._videos[video_id]

    def info(self, video_id: int) -> VideoInfo:
        """Metadata of one video."""
        return self._infos[video_id]

    def family_members(self, family: int) -> list[int]:
        """Video ids belonging to a near-duplicate family."""
        if family < 0:
            raise ValueError("family must be non-negative")
        return [
            info.video_id for info in self._infos if info.family == family
        ]

    @property
    def families(self) -> list[int]:
        """Sorted distinct family ids present (excluding distractors)."""
        return sorted({info.family for info in self._infos if info.family >= 0})

    def __len__(self) -> int:
        return len(self._videos)

    def __iter__(self):
        return iter(self._videos)

    # ------------------------------------------------------------------
    # Statistics (paper Table 2)
    # ------------------------------------------------------------------
    def duration_table(self) -> list[tuple[int, int, int]]:
        """Rows of ``(frames-per-video class, num videos, num frames)``,
        longest class first — the layout of the paper's Table 2."""
        buckets: dict[int, tuple[int, int]] = {}
        for info in self._infos:
            count, frames = buckets.get(info.num_frames, (0, 0))
            buckets[info.num_frames] = (count + 1, frames + info.num_frames)
        return [
            (length, count, frames)
            for length, (count, frames) in sorted(buckets.items(), reverse=True)
        ]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Write the dataset to an ``.npz`` file."""
        arrays = {
            f"video_{info.video_id}": frames
            for info, frames in zip(self._infos, self._videos)
        }
        arrays["families"] = np.array(
            [info.family for info in self._infos], dtype=np.int64
        )
        arrays["dim"] = np.array([self._dim], dtype=np.int64)
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path: str) -> "VideoDataset":
        """Read a dataset previously written with :meth:`save`."""
        with np.load(path) as data:
            families = data["families"]
            dim = int(data["dim"][0])
            videos = [
                np.asarray(data[f"video_{index}"], dtype=np.float64)
                for index in range(len(families))
            ]
        infos = [
            VideoInfo(
                video_id=index,
                family=int(families[index]),
                num_frames=videos[index].shape[0],
            )
            for index in range(len(videos))
        ]
        return cls(videos=videos, infos=infos, dim=dim)

    def __repr__(self) -> str:
        return (
            f"VideoDataset(videos={self.num_videos}, "
            f"frames={self.total_frames}, dim={self._dim})"
        )
