"""Frame feature extraction: the paper's quantised RGB colour histogram.

The paper represents every frame as a 64-dimensional vector in RGB space:
the two most significant bits of each colour channel index one of
``4 * 4 * 4 = 64`` bins, and the histogram is normalised by the pixel
count.  This module implements that extractor over plain numpy image
arrays, so the library can be pointed at real decoded video (any decoder
that yields RGB arrays — e.g. OpenCV or imageio — plugs in directly):

    features = np.stack([rgb_histogram(frame) for frame in decoded_frames])
    summary = summarize_video(video_id, features, epsilon=0.3)

A generalised ``bits`` parameter supports coarser/finer quantisation
(``bits=2`` is the paper's 64 bins; ``bits=3`` gives 512).
"""

from __future__ import annotations

import numpy as np

__all__ = ["histogram_dim", "rgb_histogram", "video_histograms"]


def histogram_dim(bits: int = 2) -> int:
    """Feature dimensionality for a given per-channel bit depth."""
    _check_bits(bits)
    return (1 << bits) ** 3


def _check_bits(bits: int) -> None:
    if not isinstance(bits, int) or isinstance(bits, bool):
        raise TypeError("bits must be an int")
    if bits < 1 or bits > 8:
        raise ValueError(f"bits must be in [1, 8], got {bits}")


def _check_image(image) -> np.ndarray:
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError(
            f"image must have shape (height, width, 3), got {image.shape}"
        )
    if image.size == 0:
        raise ValueError("image must contain at least one pixel")
    if image.dtype == np.uint8:
        return image
    if np.issubdtype(image.dtype, np.floating):
        if image.min() < 0.0 or image.max() > 1.0:
            raise ValueError(
                "float images must have values in [0, 1]"
            )
        return (image * 255.0).astype(np.uint8)
    raise TypeError(
        f"image dtype must be uint8 or float in [0, 1], got {image.dtype}"
    )


def rgb_histogram(image, bits: int = 2) -> np.ndarray:
    """Quantised RGB histogram of one frame, normalised to sum 1.

    Parameters
    ----------
    image:
        ``(height, width, 3)`` RGB array; ``uint8`` in ``[0, 255]`` or
        float in ``[0, 1]``.
    bits:
        Most-significant bits kept per channel (2 = the paper's 64 bins).

    Returns
    -------
    numpy.ndarray
        Histogram of length ``(2^bits)^3``; non-negative, sums to 1.
    """
    _check_bits(bits)
    image = _check_image(image)
    shift = 8 - bits
    levels = 1 << bits
    quantised = (image.astype(np.uint32) >> shift).reshape(-1, 3)
    bin_index = (
        quantised[:, 0] * levels * levels
        + quantised[:, 1] * levels
        + quantised[:, 2]
    )
    counts = np.bincount(bin_index, minlength=levels**3).astype(np.float64)
    return counts / counts.sum()


def video_histograms(frames, bits: int = 2) -> np.ndarray:
    """Feature matrix for a decoded video.

    Parameters
    ----------
    frames:
        Iterable of ``(height, width, 3)`` RGB arrays, or a single
        ``(num_frames, height, width, 3)`` array.
    bits:
        Per-channel bit depth (2 = the paper's setting).

    Returns
    -------
    numpy.ndarray
        Shape ``(num_frames, (2^bits)^3)``; each row sums to 1.
    """
    rows = [rgb_histogram(frame, bits=bits) for frame in frames]
    if not rows:
        raise ValueError("the video must contain at least one frame")
    return np.stack(rows)
