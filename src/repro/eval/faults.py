"""Fault-tolerance evaluation for the sharded fleet.

The resilience acceptance question has three parts, and
:func:`run_fault_benchmark` answers all of them over one seeded query
stream against a 4-shard (by default) fleet on a
:class:`~repro.utils.clock.VirtualClock`:

* **Correctness under partial failure.**  With one shard hard-down,
  every degraded query's ranking must equal a single-index oracle built
  over the *surviving* shards' videos, every coverage report must flag
  the incompleteness, and strict mode must still raise.
* **Exact recovery.**  Under transient faults the retry path must
  reproduce the fault-free reference *exactly* — same rankings and the
  same per-query cost counters, which is only possible if no retry's
  cost is double-counted.
* **Availability.**  Across every injected-fault scenario the fleet must
  keep answering: the sweep's availability (fraction of queries that
  produced a usable answer) is the headline number of
  ``BENCH_faults.json``, asserted ≥ 99% by ``benchmarks/bench_faults.py``.

Every scenario is deterministic: faults fire by operation count, retry
jitter is a seeded hash, and all latencies/backoffs/cooldowns run on the
virtual clock — so a failing sweep reproduces bit-for-bit.

Queries fan out to every shard (``prune=False``): the sweep measures
what failure does to the fleet, not whether routing luck avoided the
faulted shard.
"""

from __future__ import annotations

from repro.core.index import VitriIndex
from repro.core.vitri import VideoSummary
from repro.shard.faults import ShardFault, ShardFaultInjector
from repro.shard.partitioner import KeyRangePartitioner
from repro.shard.resilience import (
    FaultPolicy,
    HedgePolicy,
    RetryPolicy,
    ScatterError,
)
from repro.shard.router import ShardedVideoDatabase
from repro.utils.clock import VirtualClock

__all__ = ["run_fault_benchmark"]


def _build_fleet(
    summaries: list[VideoSummary],
    num_shards: int,
    *,
    epsilon: float,
    buffer_capacity: int,
) -> ShardedVideoDatabase:
    """A fresh in-memory fleet on a fresh virtual clock, cache disabled
    (every attempt must pay its real cost or the double-counting check
    proves nothing)."""
    fleet = ShardedVideoDatabase(
        epsilon,
        partitioner=KeyRangePartitioner.fit(summaries, num_shards),
        buffer_capacity=buffer_capacity,
        cache_size=0,
        clock=VirtualClock(),
    )
    for summary in summaries:
        fleet.add_summary(summary)
    fleet.build()
    return fleet


def _cost_signature(stats) -> tuple:
    """A query's deterministic cost fields (wall time excluded)."""
    return (
        stats.page_requests,
        stats.physical_reads,
        stats.node_visits,
        stats.similarity_computations,
        stats.candidates,
        stats.ranges,
    )


def run_fault_benchmark(
    summaries: list[VideoSummary],
    stream: list[VideoSummary],
    k: int,
    *,
    epsilon: float,
    num_shards: int = 4,
    seed: int = 0,
    down_shard: int = 1,
    transient_errors: int = 2,
    slow_delay: float = 0.05,
    deadline: float = 0.02,
    buffer_capacity: int = 32,
) -> dict:
    """Sweep fault scenarios over one query stream; return the report.

    Scenarios (each on a freshly built fleet over the same summaries):

    ``reference``
        Fault-free strict pass; its rankings and per-query cost
        signatures are the baseline every other scenario is held to.
    ``hard_down``
        ``down_shard`` is down from its first operation.  Asserts:
        degraded rankings equal the surviving-shards oracle, coverage
        flags every query incomplete, strict mode raises, and the
        breaker opens (later queries trip instead of burning retries).
    ``transient``
        ``down_shard`` fails its first ``transient_errors`` operations,
        then heals.  Asserts rankings *and* cost signatures equal the
        reference — retries recovered exactly, with zero
        :class:`~repro.utils.counters.CostCounters` double-counting.
    ``slow_hedge``
        ``down_shard`` is a permanent straggler (``slow_delay`` of
        injected latency per attempt); an absolute hedge threshold fires
        a backup per query.  Asserts rankings equal the reference and
        hedges actually fired.
    ``timeout``
        Same straggler, but with a ``deadline`` below ``slow_delay``:
        every attempt times out and the query degrades.  Asserts
        rankings equal the surviving oracle and timeouts were recorded.

    The returned dict is JSON-serialisable and becomes
    ``BENCH_faults.json``.
    """
    if not stream:
        raise ValueError("stream must be non-empty")
    if not 0 <= down_shard < num_shards:
        raise ValueError(
            f"down_shard must be in [0, {num_shards}), got {down_shard}"
        )

    # --- reference: fault-free strict pass --------------------------------
    fleet = _build_fleet(
        summaries, num_shards, epsilon=epsilon, buffer_capacity=buffer_capacity
    )
    reference_batch = fleet.serve_many(stream, k, prune=False, cold=True)
    reference = [
        (result.videos, _cost_signature(result.stats))
        for result in reference_batch.results
    ]
    surviving = [
        summary
        for summary in summaries
        if fleet.shard_of(summary.video_id) != down_shard
    ]
    survivor_oracle = VitriIndex.build(surviving, epsilon, reference="optimal")
    survivor_expected = [
        survivor_oracle.knn(query, k).videos for query in stream
    ]

    scenarios: list[dict] = []

    def record(name: str, batch, *, note: str) -> dict:
        entry = batch.metrics.to_dict()
        entry["scenario"] = name
        entry["note"] = note
        scenarios.append(entry)
        return entry

    record("reference", reference_batch, note="fault-free strict baseline")

    # --- hard-down: degrade, flag, and trip -------------------------------
    fleet = _build_fleet(
        summaries, num_shards, epsilon=epsilon, buffer_capacity=buffer_capacity
    )
    fleet.inject_shard_faults(
        ShardFaultInjector({down_shard: [ShardFault.hard_down()]})
    )
    policy = FaultPolicy(retry=RetryPolicy(max_attempts=2, seed=seed))
    try:
        fleet.knn(stream[0], k, prune=False, fault_policy=policy)
    except ScatterError:
        pass
    else:
        raise RuntimeError("strict mode failed to raise with a shard down")
    batch = fleet.serve_many(
        stream, k, prune=False, cold=True, fault_policy=policy, fail_fast=False
    )
    for position, result in enumerate(batch.results):
        if result.videos != survivor_expected[position]:
            raise RuntimeError(
                f"hard-down ranking diverged from the surviving-shards "
                f"oracle at stream position {position}"
            )
        if result.coverage.complete:
            raise RuntimeError(
                f"hard-down query {position} reported complete coverage"
            )
    entry = record(
        "hard_down", batch, note=f"shard {down_shard} down for the whole sweep"
    )
    if entry["breaker_trips"] == 0:
        raise RuntimeError("breaker never opened under a hard-down shard")

    # --- transient: exact recovery, zero double-counting ------------------
    fleet = _build_fleet(
        summaries, num_shards, epsilon=epsilon, buffer_capacity=buffer_capacity
    )
    fleet.inject_shard_faults(
        ShardFaultInjector(
            {down_shard: [ShardFault.transient(errors=transient_errors)]}
        )
    )
    batch = fleet.serve_many(
        stream,
        k,
        prune=False,
        cold=True,
        fault_policy=FaultPolicy(
            retry=RetryPolicy(max_attempts=transient_errors + 2, seed=seed)
        ),
        fail_fast=False,
    )
    for position, result in enumerate(batch.results):
        videos, signature = reference[position]
        if result.videos != videos:
            raise RuntimeError(
                f"transient recovery changed the ranking at stream "
                f"position {position}"
            )
        if _cost_signature(result.stats) != signature:
            raise RuntimeError(
                f"transient recovery double-counted costs at stream "
                f"position {position}: {_cost_signature(result.stats)} != "
                f"{signature}"
            )
        if not result.coverage.complete:
            raise RuntimeError(
                f"transient query {position} should have recovered fully"
            )
    record(
        "transient",
        batch,
        note=f"shard {down_shard} fails first {transient_errors} ops, heals",
    )

    # --- slow + hedge: stragglers recovered without degradation ----------
    fleet = _build_fleet(
        summaries, num_shards, epsilon=epsilon, buffer_capacity=buffer_capacity
    )
    fleet.inject_shard_faults(
        ShardFaultInjector({down_shard: [ShardFault.slow(slow_delay)]})
    )
    batch = fleet.serve_many(
        stream,
        k,
        prune=False,
        cold=True,
        fault_policy=FaultPolicy(
            retry=RetryPolicy(max_attempts=2, seed=seed),
            hedge=HedgePolicy(after=slow_delay / 2.0),
        ),
        fail_fast=False,
    )
    for position, result in enumerate(batch.results):
        if result.videos != reference[position][0]:
            raise RuntimeError(
                f"straggler scenario changed the ranking at stream "
                f"position {position}"
            )
    entry = record(
        "slow_hedge",
        batch,
        note=f"shard {down_shard} +{slow_delay}s per attempt, hedged",
    )
    if entry["hedges"] == 0:
        raise RuntimeError("no hedges fired against a permanent straggler")

    # --- timeout: stragglers past the deadline degrade --------------------
    fleet = _build_fleet(
        summaries, num_shards, epsilon=epsilon, buffer_capacity=buffer_capacity
    )
    fleet.inject_shard_faults(
        ShardFaultInjector({down_shard: [ShardFault.slow(slow_delay)]})
    )
    batch = fleet.serve_many(
        stream,
        k,
        prune=False,
        cold=True,
        fault_policy=FaultPolicy(
            retry=RetryPolicy(max_attempts=2, seed=seed), deadline=deadline
        ),
        fail_fast=False,
    )
    for position, result in enumerate(batch.results):
        if result.videos != survivor_expected[position]:
            raise RuntimeError(
                f"timeout scenario diverged from the surviving-shards "
                f"oracle at stream position {position}"
            )
    entry = record(
        "timeout",
        batch,
        note=f"deadline {deadline}s < straggler delay {slow_delay}s",
    )
    if entry["timeouts"] == 0:
        raise RuntimeError("deadline sweep recorded no timeouts")

    total_queries = sum(entry["queries"] for entry in scenarios)
    answered = sum(
        entry["availability"] * entry["queries"] for entry in scenarios
    )
    availability = answered / total_queries if total_queries else 1.0
    return {
        "videos": len(summaries),
        "queries": len(stream),
        "k": k,
        "num_shards": num_shards,
        "down_shard": down_shard,
        "seed": seed,
        "transient_errors": transient_errors,
        "slow_delay": slow_delay,
        "deadline": deadline,
        "scenarios": scenarios,
        "availability": availability,
        "p99_latency": max(entry["latency_p99"] for entry in scenarios),
        "total_retries": sum(entry["retries"] for entry in scenarios),
        "total_hedges": sum(entry["hedges"] for entry in scenarios),
        "total_timeouts": sum(entry["timeouts"] for entry in scenarios),
        "total_breaker_trips": sum(
            entry["breaker_trips"] for entry in scenarios
        ),
    }
