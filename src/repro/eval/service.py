"""End-to-end service evaluation: the network fleet under admission load.

The serving and sharding benchmarks measure engines and routers held in
the caller's hands; this one measures the whole stack as deployed — a
durable fleet opened as a :class:`~repro.serve.frontdoor.NetworkFleet`
(thread-mode shard servers, remote proxies over real TCP, read-only
router, front door).  :func:`run_service_benchmark` answers the
production questions the in-process benchmarks cannot:

* **Exactness over the wire** — every completed answer is asserted
  bit-identical to the in-process router's ranking for the same query.
* **Availability under over-admission** — a burst phase offers each
  client ``overadmission``× its admission quota.  The excess must be
  shed *synchronously and typed* (:class:`~repro.serve.protocol.RateLimited`,
  :class:`~repro.serve.protocol.ServiceOverloaded`), never queued to
  die; everything admitted must complete.  The acceptance number is
  ``completed / admitted``.
* **Bounded tail latency** — admitted queries ride a bounded queue, so
  the burst p99 must stay within a small multiple of the uncontended
  baseline p50 (queue depth bounds the wait), not grow with offered
  load.

Shedding is made deterministic the same way the front-door tests do it:
each burst client gets a token bucket whose burst capacity *is* its
admission quota and whose refill rate is negligible over the run, so
exactly the over-admitted excess is refused regardless of machine speed.
"""

from __future__ import annotations

import tempfile
import threading

from repro.core.vitri import VideoSummary
from repro.serve.frontdoor import NetworkFleet
from repro.serve.protocol import (
    RateLimited,
    ServiceDraining,
    ServiceOverloaded,
)
from repro.shard.router import ShardedVideoDatabase
from repro.utils.counters import Timer
from repro.utils.stats import percentile
from repro.utils.validation import check_positive

__all__ = ["run_service_benchmark"]

# Refill slow enough that no bucket earns a whole extra token within any
# plausible run length (1e-6 tokens/s ~ one token per 11.6 days).
_NEGLIGIBLE_RATE = 1e-6


def _build_fleet_dir(
    path: str,
    summaries: list[VideoSummary],
    num_shards: int,
    *,
    epsilon: float,
) -> None:
    """Write a durable ``num_shards``-way fleet of ``summaries``."""
    db = ShardedVideoDatabase(
        epsilon, partitioner="hash", num_shards=num_shards, path=path
    )
    try:
        for summary in summaries:
            db.add_summary(summary)
    finally:
        db.close()


def _latency_summary(latencies_s: list[float]) -> dict:
    """p50/p95/p99/max of a latency sample, in milliseconds."""
    ordered = sorted(latencies_s)
    return {
        "samples": len(ordered),
        "p50_ms": percentile(ordered, 0.50, default=0.0) * 1e3,
        "p95_ms": percentile(ordered, 0.95, default=0.0) * 1e3,
        "p99_ms": percentile(ordered, 0.99, default=0.0) * 1e3,
        "max_ms": (ordered[-1] * 1e3) if ordered else 0.0,
    }


def run_service_benchmark(
    summaries: list[VideoSummary],
    stream: list[VideoSummary],
    k: int,
    *,
    epsilon: float,
    num_shards: int = 3,
    workers: int = 2,
    max_queue: int = 8,
    clients: int = 4,
    overadmission: float = 2.0,
    timeout: float = 60.0,
) -> dict:
    """Drive a network fleet through a baseline pass and a shed burst.

    Builds a durable fleet of ``summaries`` in a temporary directory,
    computes in-process reference rankings for the whole ``stream``,
    then runs two phases against thread-mode network fleets:

    1. **Baseline** — the stream served serially through an uncontended
       front door; per-query wall latencies set the tail-latency yard
       stick and every ranking is asserted bit-identical to the
       reference.
    2. **Burst** — ``clients`` threads replay the stream closed-loop
       through a rate-limited front door whose per-client quota admits
       only ``1/overadmission`` of each client's offered queries.  The
       excess must shed typed; admitted queries must all complete with
       reference rankings.

    The returned dict is JSON-serialisable — the payload of
    ``BENCH_service.json``.  A ranking mismatch or an untyped failure
    raises instead of reporting: a service that answers wrong or sheds
    with a stack trace has no availability number worth printing.
    """
    if not stream:
        raise ValueError("stream must be non-empty")
    check_positive(overadmission, "overadmission")
    if overadmission <= 1.0:
        raise ValueError(
            f"overadmission must exceed 1.0 to create a burst, got "
            f"{overadmission}"
        )
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")

    with tempfile.TemporaryDirectory() as tmp:
        fleet_dir = f"{tmp}/fleet"
        _build_fleet_dir(fleet_dir, summaries, num_shards, epsilon=epsilon)

        with ShardedVideoDatabase(epsilon, path=fleet_dir) as db:
            reference = {
                summary.video_id: db.knn(summary, k) for summary in summaries
            }

        baseline = _run_baseline(
            fleet_dir, stream, k,
            reference=reference, workers=workers, max_queue=max_queue,
            timeout=timeout,
        )
        burst = _run_burst(
            fleet_dir, stream, k,
            reference=reference, workers=workers, max_queue=max_queue,
            clients=clients, overadmission=overadmission, timeout=timeout,
        )

    # The queue is bounded, so an admitted query waits behind at most
    # max_queue predecessors; give slow shared machines a generous
    # floor, but never let the tail scale with offered load.
    p99_bound_ms = max(50.0, 30.0 * baseline["latency"]["p50_ms"])
    return {
        "k": k,
        "videos": len(summaries),
        "queries": len(stream),
        "num_shards": num_shards,
        "workers": workers,
        "max_queue": max_queue,
        "clients": clients,
        "overadmission": overadmission,
        "baseline": baseline,
        "burst": burst,
        "p99_bound_ms": p99_bound_ms,
        "p99_within_bound": burst["latency"]["p99_ms"] <= p99_bound_ms,
    }


def _run_baseline(
    fleet_dir: str,
    stream: list[VideoSummary],
    k: int,
    *,
    reference: dict,
    workers: int,
    max_queue: int,
    timeout: float,
) -> dict:
    """Serial pass through an uncontended front door."""
    latencies: list[float] = []
    with NetworkFleet(
        fleet_dir, mode="thread", workers=workers, max_queue=max_queue
    ) as fleet:
        for position, query in enumerate(stream):
            timer = Timer()
            with timer:
                result = fleet.query_sync(query, k, timeout=timeout)
            latencies.append(timer.elapsed)
            _check_ranking(position, query, result, reference)
        stats = fleet.frontdoor.stats()
    return {
        "latency": _latency_summary(latencies),
        "frontdoor": stats,
    }


def _run_burst(
    fleet_dir: str,
    stream: list[VideoSummary],
    k: int,
    *,
    reference: dict,
    workers: int,
    max_queue: int,
    clients: int,
    overadmission: float,
    timeout: float,
) -> dict:
    """Closed-loop client threads offering ``overadmission``× quota."""
    offered_per_client = len(stream)
    quota = max(1, int(offered_per_client / overadmission))
    outcomes: list[list[tuple[str, float]]] = [[] for _ in range(clients)]
    errors: list[BaseException | None] = [None] * clients

    with NetworkFleet(
        fleet_dir,
        mode="thread",
        workers=workers,
        max_queue=max_queue,
        rate=_NEGLIGIBLE_RATE,
        burst=float(quota),
    ) as fleet:

        def run_client(index: int) -> None:
            name = f"client-{index}"
            mine = outcomes[index]
            try:
                # Each client walks the stream from its own offset so
                # concurrent clients exercise different shards.
                for position in range(offered_per_client):
                    query = stream[(position + index) % len(stream)]
                    timer = Timer()
                    try:
                        with timer:
                            result = fleet.query_sync(
                                query, k, client=name, timeout=timeout
                            )
                    except (
                        RateLimited, ServiceOverloaded, ServiceDraining
                    ):
                        mine.append(("shed", 0.0))
                        continue
                    _check_ranking(position, query, result, reference)
                    mine.append(("ok", timer.elapsed))
            except BaseException as exc:  # noqa: BLE001 - reraised below
                errors[index] = exc

        threads = [
            threading.Thread(
                target=run_client, args=(index,), name=f"bench-client-{index}"
            )
            for index in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout * offered_per_client)
        stats = fleet.frontdoor.stats()

    for exc in errors:
        if exc is not None:
            raise exc

    flat = [entry for client_log in outcomes for entry in client_log]
    offered = len(flat)
    shed = sum(1 for kind, _ in flat if kind == "shed")
    completed = sum(1 for kind, _ in flat if kind == "ok")
    admitted = offered - shed
    latencies = [elapsed for kind, elapsed in flat if kind == "ok"]
    return {
        "offered": offered,
        "admitted": admitted,
        "shed": shed,
        "completed": completed,
        "availability": (completed / admitted) if admitted else 0.0,
        "latency": _latency_summary(latencies),
        "frontdoor": stats,
    }


def _check_ranking(
    position: int, query: VideoSummary, result, reference: dict
) -> None:
    want = reference[query.video_id]
    if result.videos != want.videos or result.scores != want.scores:
        raise RuntimeError(
            f"network ranking diverged from the in-process reference at "
            f"stream position {position} (query video "
            f"{query.video_id}): {result.videos} != {want.videos}"
        )
