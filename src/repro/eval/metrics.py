"""Retrieval metrics.

The paper reports a single metric: ``precision = |rel ∩ ret| / |rel|``
where ``rel`` is the frame-level ground-truth top-K and ``ret`` the top-K
returned by a summarisation method.  (With ``|ret| = |rel| = K`` this is
also the recall; the paper calls it precision and so do we.)
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["precision_at_k"]


def precision_at_k(relevant: Iterable[int], retrieved: Iterable[int]) -> float:
    """Fraction of the ground-truth set that the method retrieved.

    Parameters
    ----------
    relevant:
        Ground-truth video ids (``rel``); must be non-empty.
    retrieved:
        Returned video ids (``ret``).
    """
    relevant_set = set(relevant)
    if not relevant_set:
        raise ValueError("the relevant set must not be empty")
    retrieved_set = set(retrieved)
    return len(relevant_set & retrieved_set) / len(relevant_set)
