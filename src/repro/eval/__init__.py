"""Evaluation harness: frame-level ground truth, the precision metric and
cost aggregation used by every experiment in Section 6."""

from __future__ import annotations

from repro.eval.faults import run_fault_benchmark
from repro.eval.ground_truth import GroundTruthCache, knn_ground_truth
from repro.eval.harness import aggregate_stats, format_table
from repro.eval.ingest import run_cutover_crash_sweep, run_ingest_benchmark
from repro.eval.metrics import precision_at_k
from repro.eval.refine import refine_ranking, refined_knn
from repro.eval.replication import run_replication_benchmark
from repro.eval.service import run_service_benchmark
from repro.eval.serving import make_query_stream, run_serving_benchmark
from repro.eval.sharding import build_fleet, run_sharding_benchmark

__all__ = [
    "build_fleet",
    "run_cutover_crash_sweep",
    "run_fault_benchmark",
    "run_ingest_benchmark",
    "run_replication_benchmark",
    "run_service_benchmark",
    "run_sharding_benchmark",
    "GroundTruthCache",
    "knn_ground_truth",
    "aggregate_stats",
    "format_table",
    "precision_at_k",
    "refine_ranking",
    "refined_knn",
    "make_query_stream",
    "run_serving_benchmark",
]
