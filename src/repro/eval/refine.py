"""Filter-and-refine retrieval.

The ViTri index is a *filter*: cheap, summary-level, approximate.  When
the raw frames are available, the classic production pattern recovers
exact quality at a bounded cost — over-fetch candidates from the index,
then re-rank just those with the exact frame-level similarity of Section
3.1:

    result = refined_knn(index, dataset, summaries, query_id, k=10)

The exact comparison runs only against ``k * overfetch`` videos instead
of the whole corpus, so the quadratic frame-level cost is paid on a
constant-size set.
"""

from __future__ import annotations

from repro.core.frames import frame_similarity
from repro.core.index import KNNResult, VitriIndex
from repro.datasets.loader import VideoDataset
from repro.utils.counters import CostCounters
from repro.utils.validation import check_positive

__all__ = ["refine_ranking", "refined_knn"]


def refine_ranking(
    dataset: VideoDataset,
    query_frames,
    candidate_ids,
    epsilon: float,
    counters: CostCounters | None = None,
) -> list[tuple[int, float]]:
    """Re-rank candidate videos by exact frame-level similarity.

    Parameters
    ----------
    dataset:
        Corpus holding the candidates' raw frames.
    query_frames:
        The query video's frame matrix.
    candidate_ids:
        Video ids to re-rank (typically an index result's ``videos``).
    epsilon:
        Frame similarity threshold.
    counters:
        Optional cost bundle; the refinement's exact frame comparisons
        are charged to ``distance_computations``.

    Returns
    -------
    list[tuple[int, float]]
        ``(video_id, exact_similarity)`` sorted descending, id tie-break.
    """
    epsilon = check_positive(epsilon, "epsilon")
    scored = [
        (
            int(video_id),
            frame_similarity(
                query_frames, dataset.frames(int(video_id)), epsilon, counters
            ),
        )
        for video_id in candidate_ids
    ]
    scored.sort(key=lambda item: (-item[1], item[0]))
    return scored


def refined_knn(
    index: VitriIndex,
    dataset: VideoDataset,
    summaries,
    query_id: int,
    k: int,
    *,
    overfetch: int = 3,
    method: str = "composed",
    counters: CostCounters | None = None,
) -> KNNResult:
    """Indexed KNN followed by exact re-ranking of the top candidates.

    Parameters
    ----------
    index:
        The ViTri index over *dataset*'s summaries.
    dataset:
        The corpus (for raw frames).
    summaries:
        Per-video summaries aligned with the dataset (``summaries[i]``
        summarises video ``i``); used for the query.
    query_id:
        The query video's id in the dataset.
    k:
        Number of results.
    overfetch:
        Candidate multiplier: the index returns ``k * overfetch``
        candidates for exact re-ranking.
    method:
        Index query method (``"composed"`` / ``"naive"``).
    counters:
        Optional cost bundle charged with the refinement pass's exact
        frame comparisons (the coarse pass's cost is in ``stats``).

    Returns
    -------
    KNNResult
        Top-``k`` by *exact* similarity; ``stats`` is the index query's
        cost (the refinement cost is CPU-side frame comparisons over the
        candidate set).
    """
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise ValueError(f"k must be a positive int, got {k}")
    if not isinstance(overfetch, int) or overfetch < 1:
        raise ValueError(f"overfetch must be a positive int, got {overfetch}")

    coarse = index.knn(summaries[query_id], k * overfetch, method=method)
    refined = refine_ranking(
        dataset,
        dataset.frames(query_id),
        coarse.videos,
        index.epsilon,
        counters,
    )[:k]
    return KNNResult(
        videos=tuple(video for video, _ in refined),
        scores=tuple(score for _, score in refined),
        stats=coarse.stats,
    )
