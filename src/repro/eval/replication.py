"""Read-replica evaluation: does the copy fleet actually scale reads?

The serving benchmark measures one engine; this one measures one
*shard group* — a primary plus N WAL-shipped replicas behind a
:class:`~repro.replication.group.ReplicaSet` — under the traffic shape
replication exists for: a zipf-skewed stream where a small hot set
dominates and the long tail pays physical reads.

:func:`run_replication_benchmark` runs the same stream against the same
data at several replica counts (``0`` = today's primary-only serving)
and reports, per configuration:

* **Throughput** — ``clients`` closed-loop threads drive the group;
  each copy serves one query at a time behind its gate (the in-process
  stand-in for one single-worker server per copy), so N synced copies
  can overlap N queries' disk waits.
* **Cache hierarchy** — per-tier tallies (L1 exact-repeat result cache,
  L2 range-block cache) summed over every copy's engine, measured over
  the timed phase only.
* **Exactness** — every configuration must produce bit-identical
  rankings, position by position; replication that answers differently
  from the primary fails the benchmark rather than reporting a QPS.

Each run has two phases.  A *warmup* prefix is served before replicas
attach, so the primary's caches hold the stream's hot set; attaching
then warms each replica's range tier from the primary's hot ranges
(:meth:`ReplicaSet.attach_replica`'s warm-on-attach path).  The timed
*measured* suffix is what the numbers come from — for every
configuration alike, so primary-only and replicated runs face the same
warm-primary starting line.
"""

from __future__ import annotations

import os
import threading

from repro.core.vitri import VideoSummary
from repro.replication import ReplicaSet, ReplicaShard
from repro.shard.shard import Shard
from repro.utils.clock import Clock, SystemClock
from repro.utils.counters import Timer
from repro.utils.rng import ensure_rng
from repro.utils.stats import percentile

__all__ = ["run_replication_benchmark"]


def _build_primary(
    path: str,
    summaries: list[VideoSummary],
    *,
    epsilon: float,
    buffer_capacity: int,
    read_latency: float,
    cache_size: int,
    range_cache_size: int,
) -> Shard:
    """One durable primary holding every summary, checkpointed."""
    shard = Shard(
        0,
        epsilon=epsilon,
        path=path,
        buffer_capacity=buffer_capacity,
        read_latency=read_latency,
        cache_size=cache_size,
        range_cache_size=range_cache_size,
    )
    for summary in summaries:
        shard.add_summary(summary)
    shard.checkpoint()
    return shard


def _tier_tallies(group: ReplicaSet) -> dict:
    """Summed per-tier cache tallies over every copy's built engine."""
    tallies = {
        "result_hits": 0,
        "result_misses": 0,
        "range_hits": 0,
        "range_misses": 0,
    }
    for engine in group.serving_engines():
        tallies["result_hits"] += engine.cache_hits
        tallies["result_misses"] += engine.cache_misses
        tallies["range_hits"] += engine.range_cache_hits
        tallies["range_misses"] += engine.range_cache_misses
    return tallies


def _hit_rate(hits: int, misses: int) -> float:
    total = hits + misses
    return hits / total if total else 0.0


def _drive(
    group: ReplicaSet,
    stream: list[VideoSummary],
    ks: list[int],
    clients: int,
) -> tuple[list, float, list[float]]:
    """Serve the stream closed-loop; return (rankings, wall, latencies).

    ``clients`` threads pull the next unserved position from a shared
    cursor, so the offered concurrency is constant until the stream
    drains — the throughput ceiling is the group's, not the driver's.
    """
    cursor_lock = threading.Lock()
    cursor = 0
    rankings: list = [None] * len(stream)
    latencies: list[float] = [0.0] * len(stream)
    failures: list[BaseException] = []

    def client() -> None:
        nonlocal cursor
        while True:
            with cursor_lock:
                position = cursor
                cursor += 1
            if position >= len(stream):
                return
            try:
                with Timer() as timer:
                    result = group.knn(stream[position], ks[position])
            except BaseException as exc:  # surfaced after the join
                failures.append(exc)
                return
            rankings[position] = (list(result.videos), list(result.scores))
            latencies[position] = timer.elapsed

    threads = [
        threading.Thread(target=client, name=f"replication-client-{i}")
        for i in range(min(clients, len(stream)))
    ]
    with Timer() as wall:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    if failures:
        raise failures[0]
    return rankings, wall.elapsed, latencies


def run_replication_benchmark(
    path: str | os.PathLike,
    summaries: list[VideoSummary],
    stream: list[VideoSummary],
    *,
    epsilon: float,
    k_values: tuple[int, ...] = (5, 10),
    replica_counts: tuple[int, ...] = (0, 2),
    clients: int = 4,
    warmup: int = 0,
    seed: int = 0,
    buffer_capacity: int = 32,
    read_latency: float = 0.002,
    cache_size: int = 128,
    range_cache_size: int = 256,
    clock: Clock | None = None,
) -> dict:
    """Measure one shard group's read serving at several replica counts.

    Each configuration builds a fresh topology under ``path`` (fresh
    primary directory, fresh replica directories), serves the first
    ``warmup`` stream positions through the bare primary, attaches the
    replicas (bootstrapping from a snapshot and warming their range
    tiers from the primary's hot ranges), then times the remaining
    positions driven by ``clients`` closed-loop threads.  ``k_values``
    vary ``k`` per position (seeded), so the stream exercises both
    cache tiers: an exact repeat hits the result cache, the same query
    at a different ``k`` falls through to the range tier.

    Returns a JSON-serialisable dict (the ``BENCH_replication.json``
    payload) whose headline numbers are ``speedup_replicated`` (measured
    QPS of the largest configuration over primary-only) and
    ``combined_cache_hit_rate`` (both tiers, largest configuration,
    measured phase only).  Rankings must be bit-identical across every
    configuration or the function raises.
    """
    if not summaries:
        raise ValueError("summaries must be non-empty")
    if not stream:
        raise ValueError("stream must be non-empty")
    if not k_values:
        raise ValueError("k_values must be non-empty")
    if not replica_counts:
        raise ValueError("replica_counts must be non-empty")
    if not 0 <= warmup < len(stream):
        raise ValueError(
            f"warmup must leave a measured suffix: 0 <= {warmup} < "
            f"{len(stream)}"
        )
    clock = clock if clock is not None else SystemClock()
    path = os.fspath(path)
    rng = ensure_rng(seed)
    ks = [int(k_values[int(rng.integers(len(k_values)))]) for _ in stream]

    runs: list[dict] = []
    reference: list | None = None
    for replicas in replica_counts:
        run_dir = os.path.join(path, f"replicas-{replicas}")
        primary = _build_primary(
            os.path.join(run_dir, "primary"),
            summaries,
            epsilon=epsilon,
            buffer_capacity=buffer_capacity,
            read_latency=read_latency,
            cache_size=cache_size,
            range_cache_size=range_cache_size,
        )
        group = ReplicaSet(primary, clock=clock)
        try:
            warm_rankings, _, _ = (
                _drive(group, stream[:warmup], ks[:warmup], 1)
                if warmup
                else ([], 0.0, [])
            )
            for index in range(replicas):
                group.attach_replica(
                    ReplicaShard(
                        0,
                        os.path.join(run_dir, f"replica-{index}"),
                        epsilon=epsilon,
                        clock=clock,
                        buffer_capacity=buffer_capacity,
                        read_latency=read_latency,
                        cache_size=cache_size,
                        range_cache_size=range_cache_size,
                    )
                )
            before = _tier_tallies(group)
            rankings, wall, latencies = _drive(
                group, stream[warmup:], ks[warmup:], clients
            )
            after = _tier_tallies(group)
            status = group.replication_status()
        finally:
            group.close()

        full = warm_rankings + rankings
        if reference is None:
            reference = full
        elif full != reference:
            position = next(
                i for i, (a, b) in enumerate(zip(full, reference)) if a != b
            )
            raise RuntimeError(
                f"replicas={replicas} changed the ranking of stream "
                f"position {position}: {full[position]} != "
                f"{reference[position]}"
            )

        measured = {key: after[key] - before[key] for key in after}
        combined_hits = measured["result_hits"] + measured["range_hits"]
        combined_misses = (
            measured["result_misses"] + measured["range_misses"]
        )
        ordered = sorted(latencies)
        runs.append(
            {
                "replicas": replicas,
                "copies": replicas + 1,
                "queries": len(stream) - warmup,
                "wall_time": wall,
                "qps": (len(stream) - warmup) / wall if wall > 0 else 0.0,
                "latency_p50_ms": percentile(ordered, 0.50, default=0.0)
                * 1e3,
                "latency_p95_ms": percentile(ordered, 0.95, default=0.0)
                * 1e3,
                "result_cache_hit_rate": _hit_rate(
                    measured["result_hits"], measured["result_misses"]
                ),
                "range_cache_hit_rate": _hit_rate(
                    measured["range_hits"], measured["range_misses"]
                ),
                "combined_cache_hit_rate": _hit_rate(
                    combined_hits, combined_misses
                ),
                "cache_tallies": measured,
                "fallbacks_to_primary": status["fallbacks_to_primary"],
                "replica_states": [
                    replica["state"] for replica in status["replicas"]
                ],
                "segments_applied": sum(
                    replica["segments_applied"]
                    for replica in status["replicas"]
                ),
                "bootstraps": sum(
                    replica["bootstraps"] for replica in status["replicas"]
                ),
            }
        )

    baseline = runs[0]
    headline = runs[-1]
    return {
        "queries": len(stream),
        "warmup": warmup,
        "measured": len(stream) - warmup,
        "k_values": list(k_values),
        "clients": clients,
        "replica_counts": list(replica_counts),
        "buffer_capacity": buffer_capacity,
        "read_latency": read_latency,
        "cache_size": cache_size,
        "range_cache_size": range_cache_size,
        "runs": runs,
        "speedup_replicated": (
            headline["qps"] / baseline["qps"] if baseline["qps"] > 0 else 0.0
        ),
        "combined_cache_hit_rate": headline["combined_cache_hit_rate"],
    }
