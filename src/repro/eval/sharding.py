"""Scatter-gather scaling evaluation for the sharded database.

The sharding acceptance question is twofold: does a sharded fleet return
*exactly* the unsharded rankings, and does scattering a query across N
shards actually cut its latency?  :func:`run_sharding_benchmark` answers
both over one seeded query stream: every shard-count configuration's
rankings are asserted identical to a single-shard reference pass, and the
report records per-configuration throughput, latency percentiles, prune
rates and per-shard I/O — the payload of ``BENCH_sharding.json``.

Disk model: as with the serving benchmark, scatter-gather pays off when
queries wait on the disk.  Every shard is built over pagers with
``read_latency``, so a query's per-shard sub-searches sleep concurrently
— N shards overlap N disks — while the merge itself is microseconds of
CPU.  With zero latency the sweep still verifies exactness, it just
reports CPU-bound (flat) speedups.
"""

from __future__ import annotations

from repro.core.vitri import VideoSummary
from repro.shard.partitioner import KeyRangePartitioner
from repro.shard.router import ShardedVideoDatabase

__all__ = ["build_fleet", "run_sharding_benchmark"]


def build_fleet(
    summaries: list[VideoSummary],
    num_shards: int,
    *,
    epsilon: float,
    partitioner: str = "key_range",
    read_latency: float = 0.0,
    buffer_capacity: int = 32,
    cache_size: int = 0,
) -> ShardedVideoDatabase:
    """An in-memory fleet holding ``summaries`` across ``num_shards``.

    ``key_range`` placement is *fitted* to the summaries (quantile
    boundaries — balanced shards), matching how a production fleet would
    be provisioned; ``hash`` placement needs no fitting.
    """
    if partitioner == "key_range":
        routed = KeyRangePartitioner.fit(summaries, num_shards)
        fleet = ShardedVideoDatabase(
            epsilon,
            partitioner=routed,
            read_latency=read_latency,
            buffer_capacity=buffer_capacity,
            cache_size=cache_size,
        )
    else:
        fleet = ShardedVideoDatabase(
            epsilon,
            partitioner=partitioner,
            num_shards=num_shards,
            read_latency=read_latency,
            buffer_capacity=buffer_capacity,
            cache_size=cache_size,
        )
    for summary in summaries:
        fleet.add_summary(summary)
    fleet.build()
    return fleet


def run_sharding_benchmark(
    summaries: list[VideoSummary],
    stream: list[VideoSummary],
    k: int,
    *,
    epsilon: float,
    shard_counts: tuple[int, ...] = (1, 2, 4),
    partitioner: str = "key_range",
    read_latency: float = 0.0,
    buffer_capacity: int = 32,
    cache_size: int = 0,
    method: str = "composed",
    prune: bool = True,
    cold: bool = True,
) -> dict:
    """Sweep fleet sizes over one query stream; return the results dict.

    Every shard count gets a freshly built fleet over the *same*
    summaries, and every configuration's rankings are asserted identical
    to the 1-shard reference pass — a routing or merge bug fails the
    benchmark instead of shipping wrong answers with a nice speedup.

    The returned dict is JSON-serialisable::

        {"k", "queries", "partitioner", "shard_counts",
         "runs": [ShardedServingMetrics.to_dict()
                  + {"shards", "speedup_vs_single", "pruned_fraction"},
                  ...],
         "max_speedup"}

    ``speedup_vs_single`` is each run's QPS over the 1-shard run's QPS —
    the scatter-gather acceptance number.  ``cold=True`` (the default)
    clears serving pools per query so every configuration pays its real
    I/O instead of amortising it into the cache.
    """
    if not stream:
        raise ValueError("stream must be non-empty")
    if not shard_counts:
        raise ValueError("shard_counts must be non-empty")
    if shard_counts[0] != 1:
        raise ValueError(
            "shard_counts must start with 1 (the exactness/speedup "
            f"reference), got {shard_counts}"
        )

    runs: list[dict] = []
    reference: list[tuple[tuple[int, ...], tuple[float, ...]]] = []
    reference_qps: float | None = None
    for num_shards in shard_counts:
        fleet = build_fleet(
            summaries,
            num_shards,
            epsilon=epsilon,
            partitioner=partitioner,
            read_latency=read_latency,
            buffer_capacity=buffer_capacity,
            cache_size=cache_size,
        )
        batch = fleet.serve_many(
            stream, k, method=method, prune=prune, cold=cold
        )
        if not reference:
            reference = [
                (result.videos, result.scores) for result in batch.results
            ]
        else:
            for position, (expected, result) in enumerate(
                zip(reference, batch.results)
            ):
                if expected[0] != result.videos:
                    raise RuntimeError(
                        f"{num_shards} shards changed the ranking of "
                        f"stream position {position}: {expected[0]} != "
                        f"{result.videos}"
                    )
        queried = sum(
            len(result.scatter.shards_queried) for result in batch.results
        )
        pruned = sum(
            len(result.scatter.shards_pruned) for result in batch.results
        )
        entry = batch.metrics.to_dict()
        entry["shards"] = num_shards
        entry["pruned_fraction"] = (
            pruned / (queried + pruned) if queried + pruned else 0.0
        )
        if reference_qps is None:
            reference_qps = entry["qps"]
        entry["speedup_vs_single"] = (
            entry["qps"] / reference_qps if reference_qps > 0.0 else 0.0
        )
        runs.append(entry)

    return {
        "k": k,
        "queries": len(stream),
        "videos": len(summaries),
        "partitioner": partitioner,
        "method": method,
        "prune": prune,
        "cold": cold,
        "read_latency": read_latency,
        "buffer_capacity": buffer_capacity,
        "cache_size": cache_size,
        "shard_counts": list(shard_counts),
        "runs": runs,
        "max_speedup": max(run["speedup_vs_single"] for run in runs),
    }
