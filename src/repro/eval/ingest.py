"""Online-ingestion evaluation: live writes, live reads, live rebuilds.

The ingest acceptance question has three parts, and this module answers
all of them:

* **Exactness under concurrency.**  While the
  :class:`~repro.ingest.pipeline.IngestPipeline` commits batches into a
  durable sharded fleet and a client thread keeps querying it,
  :func:`run_ingest_benchmark` pauses at seeded checkpoints, quiesces
  the queue, and asserts the fleet's rankings — videos *and* scores —
  bit-identically equal a :class:`~repro.core.index.VitriIndex` oracle
  rebuilt from scratch over everything ingested so far.  A drifted
  stream forces at least one online rebuild mid-run, so the oracle
  crosses a cutover boundary: the refitted reference point must not
  move a single score.
* **Read availability during writes.**  The same run reports query
  latency percentiles measured *during* ingestion next to an at-rest
  baseline on the final corpus (same probes, same cold-read
  discipline, nobody writing) — the benchmark gates p95-during against
  a multiple of p95-idle, so a rebuild that stalls reads fails loudly.
* **Crash-safe cutover.**  :func:`run_cutover_crash_sweep` replays one
  online rebuild with a :class:`~repro.storage.faults.FaultInjector`
  crash scripted at *every* disk operation (damage modes cycling
  drop/torn/duplicate) and asserts each reopen lands on exactly one of
  {old index complete, new index complete} — matching the ``epoch.json``
  pointer — with rankings equal to the pre-rebuild reference.

Both entry points return JSON-serialisable dicts; together they are the
``BENCH_ingest.json`` payload.
"""

from __future__ import annotations

import os
import shutil
import threading

from repro.core.index import VitriIndex
from repro.core.vitri import VideoSummary
from repro.ingest.cutover import rebuild_online
from repro.ingest.drift import DriftMonitor
from repro.ingest.pipeline import IngestOverloaded, IngestPipeline
from repro.replication.shipper import database_token
from repro.shard.partitioner import KeyRangePartitioner
from repro.shard.router import ShardedVideoDatabase
from repro.shard.shard import Shard
from repro.storage.faults import FaultInjector, SimulatedCrash
from repro.core.database import read_epoch_pointer
from repro.utils.clock import Clock, SystemClock
from repro.utils.counters import Timer
from repro.utils.rng import ensure_rng
from repro.utils.stats import percentile

__all__ = ["run_cutover_crash_sweep", "run_ingest_benchmark"]

_SWEEP_MODES = ("drop", "torn", "duplicate")


def _ranking(result) -> tuple:
    return (tuple(result.videos), tuple(result.scores))


def _drive_queries(
    fleet: ShardedVideoDatabase,
    probes: list[VideoSummary],
    k: int,
    count: int,
    *,
    cold: bool,
) -> list[float]:
    """Serve ``count`` queries round-robin over ``probes``; latencies."""
    latencies: list[float] = []
    for position in range(count):
        with Timer() as timer:
            fleet.knn(probes[position % len(probes)], k, cold=cold)
        latencies.append(timer.elapsed)
    return latencies


def run_ingest_benchmark(
    path: str | os.PathLike,
    initial: list[VideoSummary],
    stream: list[VideoSummary],
    *,
    epsilon: float,
    k: int = 5,
    num_shards: int = 2,
    batch_size: int = 16,
    max_queue: int = 128,
    linger: float = 0.0,
    drift_max_angle: float = 12.0,
    drift_check_every: int = 32,
    oracle_checkpoints: int = 4,
    idle_queries: int = 40,
    num_probes: int = 6,
    buffer_capacity: int = 64,
    read_latency: float = 0.0005,
    cold: bool = True,
    pace: float = 0.0,
    seed: int = 0,
    clock: Clock | None = None,
) -> dict:
    """Ingest ``stream`` into a live fleet under concurrent reads.

    Builds a durable ``num_shards``-shard fleet (key-range placement
    fitted to ``initial``) holding ``initial``, measures an idle query
    baseline, then starts the pipeline's background pump and submits the
    whole stream while a client thread queries continuously.  At
    ``oracle_checkpoints`` evenly spaced stream positions (always
    including the end) the queue is quiesced and every probe query's
    ranking is compared — videos and scores, exact equality — against a
    fresh in-memory :class:`VitriIndex` over ``initial + stream[:pos]``.

    A stream whose suffix is drawn from a rotated distribution (see
    ``benchmarks/bench_ingest.py``) drives the attached
    :class:`DriftMonitor` past its threshold mid-run, so at least one
    shard is rebuilt online — through the router's maintenance window —
    while the client thread keeps reading.

    Returns a JSON-serialisable dict whose headline numbers are
    ``oracle_agreement`` (fraction of checkpoint probes that matched the
    oracle exactly — must be 1.0), ``ingest_throughput`` (summaries
    committed per second of the concurrent phase), ``p95_during_ms``
    against ``p95_idle_ms`` (the at-rest baseline on the final corpus —
    ``p95_idle_initial_ms`` records the smaller pre-ingest corpus's
    baseline), and ``rebuilds`` (online cutovers triggered).

    ``cold=True`` (the default) clears serving pools per query in *both*
    latency phases, so idle and during-ingest queries pay the same real
    I/O — the p95 ratio then measures read availability (lock waits,
    cutover stalls), not whether concurrent writes happened to evict a
    cache line.

    ``pace`` spaces submissions by that many seconds — an *open-loop*
    offered write rate, the shape live traffic actually has.  At
    ``pace=0`` the submitter saturates: every read then races a commit
    and the p95 ratio measures GIL contention more than availability.
    """
    if not initial:
        raise ValueError("initial must be non-empty")
    if not stream:
        raise ValueError("stream must be non-empty")
    if not 1 <= oracle_checkpoints <= len(stream):
        raise ValueError(
            f"oracle_checkpoints must be in [1, {len(stream)}], got "
            f"{oracle_checkpoints}"
        )
    clock = clock if clock is not None else SystemClock()
    path = os.fspath(path)
    rng = ensure_rng(seed)
    probes = [
        initial[int(position)]
        for position in rng.integers(
            0, len(initial), size=min(num_probes, len(initial))
        )
    ]

    fleet = ShardedVideoDatabase(
        epsilon,
        partitioner=KeyRangePartitioner.fit(initial, num_shards),
        path=os.path.join(path, "fleet"),
        buffer_capacity=buffer_capacity,
        read_latency=read_latency,
        # L1 result cache off: the probe set repeats, so an exact-repeat
        # cache would hide every queried cost behind sub-ms hits and the
        # idle/during comparison would measure hit-rate luck, not reads.
        cache_size=0,
    )
    monitor = DriftMonitor(
        max_angle_degrees=drift_max_angle,
        check_every=drift_check_every,
        clock=clock,
    )
    pipeline = IngestPipeline(
        fleet,
        batch_size=batch_size,
        max_queue=max_queue,
        linger=linger,
        clock=clock,
        drift=monitor,
    )
    try:
        for summary in initial:
            fleet.add_summary(summary)
        fleet.build()
        fleet.checkpoint()

        idle_before = _drive_queries(
            fleet, probes, k, idle_queries, cold=cold
        )

        # Checkpoint positions: evenly spaced, always including the end.
        positions = sorted(
            {
                len(stream) * step // oracle_checkpoints
                for step in range(1, oracle_checkpoints + 1)
            }
        )

        concurrent_latencies: list[float] = []
        failures: list[BaseException] = []
        stop_reads = threading.Event()
        # Held by the main thread while it runs an oracle verification
        # pause; the reader takes it *outside* its timer, so measured
        # latencies cover live ingestion (commits, rebuilds, cutovers)
        # but not contention with the harness's own probe queries.
        verify_lock = threading.Lock()

        def client() -> None:
            position = 0
            while not stop_reads.is_set():
                try:
                    with verify_lock:
                        with Timer() as timer:
                            fleet.knn(
                                probes[position % len(probes)], k, cold=cold
                            )
                except BaseException as exc:  # surfaced after the join
                    failures.append(exc)
                    return
                concurrent_latencies.append(timer.elapsed)
                position += 1

        oracle_checks = 0
        oracle_matches = 0
        checkpoint_log: list[dict] = []

        reader = threading.Thread(target=client, name="ingest-bench-client")
        pipeline.start()
        reader.start()
        try:
            with Timer() as wall:
                submitted = 0
                for position, summary in enumerate(stream, start=1):
                    while True:
                        try:
                            pipeline.submit(summary)
                            submitted += 1
                            break
                        except IngestOverloaded:
                            clock.sleep(0.001)
                    if pace > 0.0:
                        clock.sleep(pace)
                    if position in positions:
                        # Quiesce: our pump() returns with the queue
                        # empty only after any in-flight worker batch
                        # committed (one pump lock serialises them), and
                        # nothing new arrives while we hold the stream.
                        while pipeline.pump() or pipeline.depth:
                            pass
                        oracle = VitriIndex.build(
                            initial + stream[:position], epsilon
                        )
                        matched = 0
                        with verify_lock:
                            for probe in probes:
                                expected = _ranking(oracle.knn(probe, k))
                                actual = _ranking(fleet.knn(probe, k))
                                oracle_checks += 1
                                if expected == actual:
                                    oracle_matches += 1
                                    matched += 1
                        checkpoint_log.append(
                            {
                                "position": position,
                                "probes": len(probes),
                                "matched": matched,
                                "rebuilds_so_far": pipeline.rebuilds,
                            }
                        )
        finally:
            pipeline.drain()
            stop_reads.set()
            reader.join()
        if failures:
            raise failures[0]

        stats = pipeline.stats()
        epochs = [shard.database.epoch for shard in fleet.shards]
        # The availability baseline: the same probe queries at rest on
        # the *final* corpus.  The stream grew the fleet, so every read
        # got intrinsically costlier (more pages per composed range);
        # comparing during-ingest reads against the pre-ingest corpus
        # would charge that data growth to the ingest path.
        idle_after = _drive_queries(
            fleet, probes, k, idle_queries, cold=cold
        )
        fleet.checkpoint()
    finally:
        fleet.close()

    idle_sorted = sorted(idle_after)
    idle_before_sorted = sorted(idle_before)
    during_sorted = sorted(concurrent_latencies)
    wall_time = wall.elapsed
    return {
        "videos_initial": len(initial),
        "videos_streamed": len(stream),
        "num_shards": num_shards,
        "k": k,
        "batch_size": batch_size,
        "max_queue": max_queue,
        "drift_max_angle": drift_max_angle,
        "drift_check_every": drift_check_every,
        "read_latency": read_latency,
        "buffer_capacity": buffer_capacity,
        "seed": seed,
        "wall_time": wall_time,
        "ingested": stats["ingested"],
        "rejected": stats["rejected"],
        "shed": stats["shed"],
        "batches": stats["batches"],
        "rebuilds": stats["rebuilds"],
        "drift_checks": stats["drift_checks"],
        "shard_epochs": epochs,
        "ingest_throughput": (
            stats["ingested"] / wall_time if wall_time > 0 else 0.0
        ),
        "queries_during_ingest": len(concurrent_latencies),
        "p50_idle_initial_ms": percentile(idle_before_sorted, 0.50, default=0.0)
        * 1e3,
        "p95_idle_initial_ms": percentile(idle_before_sorted, 0.95, default=0.0)
        * 1e3,
        "p50_idle_ms": percentile(idle_sorted, 0.50, default=0.0) * 1e3,
        "p95_idle_ms": percentile(idle_sorted, 0.95, default=0.0) * 1e3,
        "p50_during_ms": percentile(during_sorted, 0.50, default=0.0) * 1e3,
        "p95_during_ms": percentile(during_sorted, 0.95, default=0.0) * 1e3,
        "oracle_checkpoints": checkpoint_log,
        "oracle_checks": oracle_checks,
        "oracle_matches": oracle_matches,
        "oracle_agreement": (
            oracle_matches / oracle_checks if oracle_checks else 0.0
        ),
    }


def run_cutover_crash_sweep(
    path: str | os.PathLike,
    summaries: list[VideoSummary],
    *,
    epsilon: float,
    k: int = 5,
    num_probes: int = 3,
    reference: str | None = None,
    buffer_capacity: int = 32,
) -> dict:
    """Crash an online rebuild at every disk operation; prove recovery.

    Builds one golden durable shard over ``summaries``, records its
    probe rankings, counts the disk operations of a full
    :func:`~repro.ingest.cutover.rebuild_online` (open included — the
    open-time WAL recovery and stale-generation sweep are part of the
    workload), then replays the rebuild once per operation index with a
    terminal fault scripted there, damage mode cycling
    drop/torn/duplicate.  After each crash the directory is reopened
    with a plain pager and the sweep asserts:

    * the content token matches whichever side the ``epoch.json``
      pointer names — *old* before the pointer replace landed, *new*
      after; no third state;
    * every video is present and every probe ranking is bit-identical
      to the golden reference.

    Returns ``{"crash_points", "recovered", "outcomes": {"old", "new"},
    ...}``; the benchmark gates ``recovered == crash_points``.
    """
    if not summaries:
        raise ValueError("summaries must be non-empty")
    path = os.fspath(path)
    probes = summaries[: max(1, min(num_probes, len(summaries)))]

    def build_golden(directory: str) -> None:
        shard = Shard(
            0,
            epsilon=epsilon,
            path=directory,
            buffer_capacity=buffer_capacity,
        )
        for summary in summaries:
            shard.add_summary(summary)
        shard.checkpoint()
        shard.close()

    golden = os.path.join(path, "golden")
    build_golden(golden)
    reopened = Shard(
        0, epsilon=epsilon, path=golden, buffer_capacity=buffer_capacity
    )
    expected_rankings = [
        _ranking(reopened.knn(probe, k)) for probe in probes
    ]
    reopened.close()

    def run_rebuild(directory: str, injector: FaultInjector):
        # The Shard open is *inside* the crash scope: operation 1 is the
        # open-time WAL recovery truncate, and the sweep must cover it.
        shard = None
        try:
            shard = Shard(
                0,
                epsilon=epsilon,
                path=directory,
                buffer_capacity=buffer_capacity,
                fault_injector=injector,
            )
            report = rebuild_online(shard, reference=reference)
            shard.close()
            return report
        except SimulatedCrash:
            if shard is not None:
                shard.crash()
            return None

    # Pass 1: count the workload's operations (no crash scripted).
    count_dir = os.path.join(path, "count")
    shutil.copytree(golden, count_dir)
    counting = FaultInjector(crash_after=None)
    report = run_rebuild(count_dir, counting)
    if report is None:
        raise RuntimeError("operation-counting pass crashed unexpectedly")
    total_ops = counting.ops
    if total_ops == 0:
        raise RuntimeError("rebuild performed no injected disk operations")
    old_token, new_token = report.old_token, report.new_token

    recovered = 0
    outcomes = {"old": 0, "new": 0}
    failures: list[str] = []
    for point in range(1, total_ops + 1):
        sweep_dir = os.path.join(path, f"sweep-{point:04d}")
        shutil.copytree(golden, sweep_dir)
        injector = FaultInjector(
            crash_after=point, mode=_SWEEP_MODES[point % len(_SWEEP_MODES)]
        )
        run_rebuild(sweep_dir, injector)

        generation, _ = read_epoch_pointer(sweep_dir)
        expected_token = old_token if generation is None else new_token
        side = "old" if generation is None else "new"
        shard = Shard(
            0, epsilon=epsilon, path=sweep_dir, buffer_capacity=buffer_capacity
        )
        try:
            token = database_token(shard.database)
            if token != expected_token:
                failures.append(
                    f"point {point}: recovered token {token[:12]} does not "
                    f"match the {side} side named by epoch.json"
                )
                continue
            if len(shard) != len(summaries):
                failures.append(
                    f"point {point}: {len(shard)} videos after recovery, "
                    f"expected {len(summaries)}"
                )
                continue
            rankings = [_ranking(shard.knn(probe, k)) for probe in probes]
            if rankings != expected_rankings:
                failures.append(
                    f"point {point}: probe rankings diverged from the "
                    f"golden reference on the {side} side"
                )
                continue
        finally:
            shard.close()
            shutil.rmtree(sweep_dir)
        outcomes[side] += 1
        recovered += 1

    if failures:
        raise RuntimeError(
            f"{len(failures)}/{total_ops} crash points failed recovery: "
            + "; ".join(failures[:5])
        )
    return {
        "videos": len(summaries),
        "probes": len(probes),
        "k": k,
        "crash_points": total_ops,
        "recovered": recovered,
        "outcomes": outcomes,
        "modes": list(_SWEEP_MODES),
        "old_token": old_token,
        "new_token": new_token,
    }
