"""Frame-level KNN ground truth (paper Section 6.1).

Browsing large video sets for manual relevance judgements is impractical,
so the paper defines a query's ground truth as the top-K videos under the
*exact* frame-level similarity of Section 3.1.  That computation is
quadratic in frames and is the slowest part of any experiment, so a
per-(query, epsilon) cache is provided.
"""

from __future__ import annotations

from repro.core.frames import frame_similarity
from repro.datasets.loader import VideoDataset
from repro.utils.counters import CostCounters
from repro.utils.validation import check_positive

__all__ = ["GroundTruthCache", "knn_ground_truth"]


def knn_ground_truth(
    dataset: VideoDataset,
    query_id: int,
    k: int,
    epsilon: float,
    counters: CostCounters | None = None,
) -> list[int]:
    """Top-``k`` video ids for a query by exact frame-level similarity.

    The query video itself is included (it trivially has similarity 1),
    matching the paper's protocol where queries are database members.
    Ties are broken by video id for determinism.  The exact pass's frame
    comparisons are charged to *counters* when one is given (ground truth
    is usually oracle setup, but the exact-scan cost is exactly what
    Figure 14 contrasts the index against).
    """
    if not isinstance(query_id, int) or isinstance(query_id, bool):
        raise TypeError("query_id must be an int")
    if query_id < 0 or query_id >= dataset.num_videos:
        raise ValueError(f"query_id {query_id} out of range")
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise ValueError(f"k must be a positive int, got {k}")
    epsilon = check_positive(epsilon, "epsilon")

    query_frames = dataset.frames(query_id)
    scored: list[tuple[float, int]] = []
    for video_id in range(dataset.num_videos):
        similarity = frame_similarity(
            query_frames, dataset.frames(video_id), epsilon, counters
        )
        scored.append((similarity, video_id))
    scored.sort(key=lambda item: (-item[0], item[1]))
    return [video_id for _, video_id in scored[:k]]


class GroundTruthCache:
    """Memoising wrapper around :func:`knn_ground_truth`.

    Computes the *full ranking* once per (query, epsilon) and serves any
    ``k`` from it, so sweeping K (Figure 15) costs one exact pass.
    """

    def __init__(self, dataset: VideoDataset) -> None:
        self._dataset = dataset
        self._rankings: dict[tuple[int, float], list[int]] = {}

    def top_k(self, query_id: int, k: int, epsilon: float) -> list[int]:
        """Ground-truth top-``k`` for the query at this epsilon."""
        key = (query_id, float(epsilon))
        if key not in self._rankings:
            # Oracle setup, deliberately outside cost accounting: a cache
            # hit performs no comparisons, so threading a counters bundle
            # through here would charge the full exact scan to whichever
            # query happened to populate the cache first.
            self._rankings[key] = knn_ground_truth(  # vilint: disable=counter-discipline
                self._dataset, query_id, self._dataset.num_videos, epsilon
            )
        return self._rankings[key][:k]

    def __len__(self) -> int:
        return len(self._rankings)
