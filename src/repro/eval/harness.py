"""Experiment-harness helpers: cost aggregation and table formatting.

The benchmark scripts print their results as plain-text tables matching
the rows/series of the paper's tables and figures; the helpers here keep
that formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.index import QueryStats

__all__ = ["aggregate_stats", "format_table"]


def aggregate_stats(stats: Iterable[QueryStats]) -> dict[str, float]:
    """Average a batch of per-query costs.

    Returns means of every :class:`QueryStats` field over the batch (the
    paper reports per-query averages over 50 queries).
    """
    stats = list(stats)
    if not stats:
        raise ValueError("cannot aggregate an empty batch of stats")
    n = len(stats)
    return {
        "page_requests": sum(s.page_requests for s in stats) / n,
        "physical_reads": sum(s.physical_reads for s in stats) / n,
        "node_visits": sum(s.node_visits for s in stats) / n,
        "similarity_computations": (
            sum(s.similarity_computations for s in stats) / n
        ),
        "candidates": sum(s.candidates for s in stats) / n,
        "ranges": sum(s.ranges for s in stats) / n,
        "wall_time": sum(s.wall_time for s in stats) / n,
    }


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render a list of rows as an aligned plain-text table."""
    if not headers:
        raise ValueError("headers must not be empty")
    rendered_rows = [
        [_format_cell(cell) for cell in row] for row in rows
    ]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered_rows))
        if rendered_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        str(h).ljust(widths[i]) for i, h in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)
