"""Serving-throughput evaluation for the concurrent query engine.

The paper's experiments measure single-query costs; the serving benchmark
asks the production question instead: how many queries per second does a
worker pool sustain over one index, and does concurrency change any
answer?  :func:`run_serving_benchmark` sweeps worker counts over one
seeded query stream, asserts every configuration returns the serial
rankings, and reports per-configuration throughput, latency percentiles,
cache behaviour and per-worker I/O — the payload of
``BENCH_serving.json``.

Disk model: concurrency pays off only when queries wait on something.
Build the index over a ``Pager(read_latency=...)`` so every physical read
sleeps outside the pager lock; N workers then overlap N reads, exactly
like N outstanding requests against one disk.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import QueryEngine
from repro.core.index import VitriIndex
from repro.core.vitri import VideoSummary
from repro.utils.rng import ensure_rng

__all__ = ["make_query_stream", "run_serving_benchmark"]


def make_query_stream(
    summaries: list[VideoSummary],
    num_queries: int,
    *,
    seed: int = 0,
    repeat_fraction: float = 0.5,
    skew: float = 0.0,
) -> list[VideoSummary]:
    """A seeded query stream with deliberate repeats and optional skew.

    Real query logs are skewed — popular videos are queried again and
    again — and repeats are what a result cache exists for.  Each stream
    position is, with probability ``repeat_fraction``, a repeat of an
    earlier position; otherwise a fresh draw from ``summaries`` —
    uniform at ``skew=0``, zipf-weighted otherwise, so hot-key traffic
    concentrates on a small popular set the way production logs do.

    Parameters
    ----------
    summaries:
        Pool of candidate query summaries.
    num_queries:
        Length of the stream.
    seed:
        RNG seed; the same arguments always yield the same stream.
    repeat_fraction:
        Probability that a position repeats an earlier one.
    skew:
        Zipf exponent ``s`` for fresh draws: the ``r``-th most popular
        summary is drawn with probability proportional to
        ``1 / r**s``.  Popularity ranks are a seeded permutation of the
        pool (so "who is hot" varies with the seed, not the pool
        order).  ``0.0`` keeps today's uniform draws; ``~1.0`` is the
        classic web-traffic shape.
    """
    if not summaries:
        raise ValueError("summaries must be non-empty")
    if not isinstance(num_queries, int) or num_queries < 1:
        raise ValueError(f"num_queries must be a positive int, got {num_queries}")
    if not 0.0 <= repeat_fraction <= 1.0:
        raise ValueError(
            f"repeat_fraction must be in [0, 1], got {repeat_fraction}"
        )
    if skew < 0.0:
        raise ValueError(f"skew must be >= 0, got {skew}")
    rng = ensure_rng(seed)
    weights = None
    if skew > 0.0:
        # summaries[order[r]] is the r-th most popular; weights follow
        # the zipf law over ranks, normalised to a distribution.
        order = rng.permutation(len(summaries))
        ranked = 1.0 / np.arange(1, len(summaries) + 1, dtype=np.float64) ** skew
        weights = np.empty(len(summaries), dtype=np.float64)
        weights[order] = ranked / ranked.sum()
    stream: list[VideoSummary] = []
    for _ in range(num_queries):
        if stream and rng.random() < repeat_fraction:
            stream.append(stream[int(rng.integers(len(stream)))])
        elif weights is None:
            stream.append(summaries[int(rng.integers(len(summaries)))])
        else:
            stream.append(summaries[int(rng.choice(len(summaries), p=weights))])
    return stream


def run_serving_benchmark(
    index: VitriIndex,
    stream: list[VideoSummary],
    k: int,
    *,
    worker_counts: tuple[int, ...] = (1, 2, 4),
    buffer_capacity: int = 32,
    cache_size: int = 128,
    method: str = "composed",
    cold: bool = False,
) -> dict:
    """Sweep worker counts over one query stream; return the results dict.

    Every worker count gets a *fresh* :class:`QueryEngine` (empty cache,
    cold per-worker pools) so configurations are directly comparable, and
    every configuration's rankings are asserted identical to a serial
    reference pass — a concurrency bug fails the benchmark instead of
    silently shipping wrong answers with a nice QPS.

    The returned dict is JSON-serialisable::

        {"k", "queries", "method", "worker_counts",
         "runs": [ServingMetrics.to_dict() + {"speedup_vs_single"}, ...],
         "max_speedup"}

    ``speedup_vs_single`` is each run's QPS over the first (reference)
    run's QPS — the acceptance number for the concurrent engine.
    """
    if not stream:
        raise ValueError("stream must be non-empty")
    if not worker_counts:
        raise ValueError("worker_counts must be non-empty")

    reference = [
        QueryEngine(index, buffer_capacity=buffer_capacity, cache_size=0).knn(
            query, k, method=method
        )
        for query in stream
    ]

    runs: list[dict] = []
    reference_qps: float | None = None
    for workers in worker_counts:
        engine = QueryEngine(
            index, buffer_capacity=buffer_capacity, cache_size=cache_size
        )
        batch = engine.knn_many(
            stream, k, method=method, workers=workers, cold=cold
        )
        for position, (expected, result) in enumerate(
            zip(reference, batch.results)
        ):
            if expected.videos != result.videos:
                raise RuntimeError(
                    f"workers={workers} changed the ranking of stream "
                    f"position {position}: {expected.videos} != "
                    f"{result.videos}"
                )
        entry = batch.metrics.to_dict()
        if reference_qps is None:
            reference_qps = entry["qps"]
        entry["speedup_vs_single"] = (
            entry["qps"] / reference_qps if reference_qps > 0.0 else 0.0
        )
        runs.append(entry)

    return {
        "k": k,
        "queries": len(stream),
        "method": method,
        "buffer_capacity": buffer_capacity,
        "cache_size": cache_size,
        "cold": cold,
        "worker_counts": list(worker_counts),
        "runs": runs,
        "max_speedup": max(run["speedup_vs_single"] for run in runs),
    }
