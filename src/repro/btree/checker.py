"""B+-tree invariant checker.

Used by the tests (including property-based tests that compare the tree
against a sorted-list oracle) to verify the structure after arbitrary
insert/bulk-load workloads:

* every leaf's keys are non-decreasing, and keys are globally
  non-decreasing along the leaf chain;
* internal separators bound their subtrees (all keys in ``children[i]`` are
  ``< keys[i]``, all keys in ``children[i+1]`` are ``>= keys[i]`` — with the
  duplicate-straddle relaxation: keys equal to the separator may appear at
  the end of the left subtree);
* the leaf chain visits exactly the leaves reachable from the root, left to
  right, and terminates with the ``NO_LEAF`` sentinel (no cycles);
* ``num_entries`` matches the actual entry count;
* all leaves sit at the same depth;
* every stored page frame passes CRC32 checksum verification (delegated
  to :meth:`~repro.storage.pager.Pager.verify_checksums`, surfaced here as
  an :class:`AssertionError` like every other violation);
* pager bookkeeping is airtight: no page is referenced twice (each page id
  appears exactly once in the tree) and no page is leaked (every allocated
  page except the metadata page 0 is reachable from the root — deletes
  tombstone entries in place and never free pages, so an unreachable page
  can only mean lost structure or I/O-count inflation).
"""

from __future__ import annotations

import math

from repro.btree.node import (
    NODE_INTERNAL,
    NODE_LEAF,
    NO_LEAF,
    InternalNode,
    LeafNode,
    node_type_of,
)
from repro.btree.tree import BPlusTree
from repro.storage.serialization import ChecksumError

__all__ = ["check_tree"]


class _TreeWalker:
    def __init__(self, tree: BPlusTree) -> None:
        self.tree = tree
        self.pool = tree.buffer_pool
        self.leaf_ids_in_order: list[int] = []
        self.entry_count = 0
        self.leaf_depths: set[int] = set()
        self.visited_ids: set[int] = set()

    def walk(self, page_id: int, depth: int, low: float, high: float) -> None:
        """Verify the subtree at *page_id*; keys must lie in [low, high)."""
        if page_id in self.visited_ids:
            raise AssertionError(
                f"page {page_id} referenced more than once in the tree"
            )
        self.visited_ids.add(page_id)
        page = self.pool.fetch(page_id)
        node_type = node_type_of(page)
        if node_type == NODE_LEAF:
            leaf = LeafNode.load(page, self.tree.payload_size)
            self._check_leaf(leaf, low, high)
            self.leaf_ids_in_order.append(page_id)
            self.leaf_depths.add(depth)
            self.entry_count += leaf.count
            return
        if node_type != NODE_INTERNAL:
            raise AssertionError(f"page {page_id} has unknown node type {node_type}")
        node = InternalNode.load(page)
        if len(node.children) != len(node.keys) + 1:
            raise AssertionError(
                f"internal page {page_id}: {len(node.keys)} keys but "
                f"{len(node.children)} children"
            )
        for a, b in zip(node.keys, node.keys[1:]):
            if b < a:
                raise AssertionError(
                    f"internal page {page_id}: separators not sorted"
                )
        for key in node.keys:
            if not (low <= key <= high):
                raise AssertionError(
                    f"internal page {page_id}: separator {key} outside "
                    f"[{low}, {high}]"
                )
        bounds = [low, *node.keys, high]
        for index, child in enumerate(node.children):
            # Duplicates of a separator may straddle the split boundary, so
            # the left subtree's upper bound is inclusive.
            self.walk(child, depth + 1, bounds[index], bounds[index + 1])

    def _check_leaf(self, leaf: LeafNode, low: float, high: float) -> None:
        for a, b in zip(leaf.keys, leaf.keys[1:]):
            if b < a:
                raise AssertionError(
                    f"leaf page {leaf.page.page_id}: keys not sorted"
                )
        for key in leaf.keys:
            if not (low <= key <= high):
                raise AssertionError(
                    f"leaf page {leaf.page.page_id}: key {key} outside "
                    f"[{low}, {high}]"
                )


def check_tree(tree: BPlusTree) -> None:
    """Raise :class:`AssertionError` if any B+-tree invariant is violated."""
    # Physical integrity first: a frame with a bad CRC32 trailer would
    # decode to garbage below, so surface it as its own violation.
    try:
        tree.buffer_pool.pager.verify_checksums()
    except ChecksumError as exc:
        raise AssertionError(f"page checksum violation: {exc}") from exc

    walker = _TreeWalker(tree)
    # Find the root page id via a protected attribute: the checker is a
    # white-box test utility and deliberately reaches inside.
    walker.walk(tree._root, 0, -math.inf, math.inf)

    if walker.entry_count != tree.num_entries:
        raise AssertionError(
            f"num_entries={tree.num_entries} but leaves hold "
            f"{walker.entry_count} entries"
        )
    if len(walker.leaf_depths) != 1:
        raise AssertionError(f"leaves at unequal depths: {walker.leaf_depths}")

    # Pager bookkeeping: the tree owns every allocated page except the
    # metadata page 0, and deletes never free pages, so the reachable set
    # must cover the pager exactly.
    num_pages = tree.buffer_pool.pager.num_pages
    leaked = set(range(1, num_pages)) - walker.visited_ids
    if leaked:
        raise AssertionError(
            f"leaked pages (allocated but unreachable from the root): "
            f"{sorted(leaked)}"
        )
    out_of_range = {
        page_id
        for page_id in walker.visited_ids
        if page_id <= 0 or page_id >= num_pages
    }
    if out_of_range:
        raise AssertionError(
            f"tree references invalid page ids: {sorted(out_of_range)}"
        )

    # The leaf chain must visit the same leaves in the same order and end
    # with the NO_LEAF terminator (never a cycle).
    chain: list[int] = []
    seen_in_chain: set[int] = set()
    page_id = walker.leaf_ids_in_order[0]
    previous_key = -math.inf
    terminated = False
    while len(chain) <= len(walker.leaf_ids_in_order):
        if page_id in seen_in_chain:
            raise AssertionError(
                f"leaf chain cycles back to page {page_id}"
            )
        chain.append(page_id)
        seen_in_chain.add(page_id)
        leaf = LeafNode.load(tree.buffer_pool.fetch(page_id), tree.payload_size)
        for key in leaf.keys:
            if key < previous_key:
                raise AssertionError("keys decrease along the leaf chain")
            previous_key = key
        if leaf.next_leaf == NO_LEAF:
            terminated = True
            break
        page_id = leaf.next_leaf
    if not terminated:
        raise AssertionError(
            "leaf chain does not terminate with NO_LEAF within the "
            "reachable leaf count"
        )
    if chain != walker.leaf_ids_in_order:
        raise AssertionError(
            "leaf chain disagrees with root-reachable leaf order: "
            f"{chain} != {walker.leaf_ids_in_order}"
        )
