"""B+-tree node layouts and their page (de)serialisation.

Both node kinds live in the :data:`~repro.storage.page.PAGE_CONTENT_SIZE`
usable bytes of one page (the frame's CRC32 trailer is not addressable
here).

Leaf page layout (little-endian)::

    type u8 | count u16 | next_leaf u64 | (key f64, payload bytes)[count]

Internal page layout::

    type u8 | count u16 | children u64[count + 1] | keys f64[count]

The children array is stored at a fixed offset sized for the maximum
capacity so that keys never move when children are inserted.  Internal
separator keys follow the "first key of the right subtree" convention:
``children[i]`` holds keys ``< keys[i]``; ``children[i+1]`` holds keys
``>= keys[i]`` — except that duplicates of a separator may straddle the
boundary, which the search code accommodates by descending with
``bisect_left`` when looking for the *leftmost* occurrence.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.storage.page import PAGE_CONTENT_SIZE, Page

__all__ = [
    "InternalNode",
    "LeafNode",
    "NODE_INTERNAL",
    "NODE_LEAF",
    "NO_LEAF",
    "internal_capacity",
    "leaf_capacity",
    "leaf_entries_view",
    "leaf_header",
    "node_type_of",
]

NODE_LEAF = 1
NODE_INTERNAL = 2
NO_LEAF = 0xFFFFFFFFFFFFFFFF
"""Sentinel for "no next leaf" in the rightmost leaf."""

_LEAF_HEADER = struct.Struct("<BHQ")  # type, count, next_leaf
_INTERNAL_HEADER = struct.Struct("<BH")  # type, count
_KEY = struct.Struct("<d")
_CHILD = struct.Struct("<Q")


def leaf_capacity(payload_size: int) -> int:
    """Maximum entries per leaf for the given payload size."""
    if payload_size < 0:
        raise ValueError(f"payload_size must be >= 0, got {payload_size}")
    capacity = (PAGE_CONTENT_SIZE - _LEAF_HEADER.size) // (_KEY.size + payload_size)
    if capacity < 2:
        raise ValueError(
            f"payload_size {payload_size} leaves room for fewer than 2 "
            "entries per leaf page"
        )
    return capacity


def internal_capacity() -> int:
    """Maximum separator keys per internal node."""
    # count keys of 8 bytes + (count + 1) children of 8 bytes must fit.
    return (PAGE_CONTENT_SIZE - _INTERNAL_HEADER.size - _CHILD.size) // (
        _KEY.size + _CHILD.size
    )


def node_type_of(page: Page) -> int:
    """Read the node-type tag of a serialised node page."""
    return page.data[0]


def leaf_header(page: Page) -> tuple[int, int, int]:
    """Unpack a leaf page's header: ``(node_type, count, next_leaf)``."""
    return _LEAF_HEADER.unpack_from(page.data, 0)


def leaf_entries_view(
    page: Page, entry_dtype: np.dtype, count: int
) -> np.ndarray:
    """Structured array view of a leaf page's ``(key, payload)`` entries.

    One ``np.frombuffer`` over the whole entries region — the bulk read
    path's replacement for :meth:`LeafNode.load`'s per-entry unpacking.
    The view aliases the page buffer; callers that keep results past the
    current page access must copy (slicing into ``np.concatenate``, as
    ``range_search_many`` does, already copies).
    """
    return np.frombuffer(
        page.data, dtype=entry_dtype, count=count, offset=_LEAF_HEADER.size
    )


class LeafNode:
    """In-memory view of a leaf page.

    Mutate ``keys`` / ``payloads`` / ``next_leaf`` and call :meth:`save` to
    write the node back into its page.
    """

    __slots__ = ("page", "payload_size", "keys", "payloads", "next_leaf")

    def __init__(self, page: Page, payload_size: int) -> None:
        self.page = page
        self.payload_size = payload_size
        self.keys: list[float] = []
        self.payloads: list[bytes] = []
        self.next_leaf: int = NO_LEAF

    @classmethod
    def new(cls, page: Page, payload_size: int) -> "LeafNode":
        """Initialise an empty leaf in a freshly allocated page."""
        node = cls(page, payload_size)
        node.save()
        return node

    @classmethod
    def load(cls, page: Page, payload_size: int) -> "LeafNode":
        """Parse a leaf from its page bytes."""
        node_type, count, next_leaf = _LEAF_HEADER.unpack_from(page.data, 0)
        if node_type != NODE_LEAF:
            raise ValueError(f"page {page.page_id} is not a leaf node")
        node = cls(page, payload_size)
        node.next_leaf = next_leaf
        entry_size = _KEY.size + payload_size
        offset = _LEAF_HEADER.size
        for _ in range(count):
            (key,) = _KEY.unpack_from(page.data, offset)
            payload = bytes(
                page.data[offset + _KEY.size : offset + entry_size]
            )
            node.keys.append(key)
            node.payloads.append(payload)
            offset += entry_size
        return node

    @property
    def count(self) -> int:
        """Number of entries currently in the node."""
        return len(self.keys)

    @property
    def capacity(self) -> int:
        """Maximum number of entries this leaf can hold."""
        return leaf_capacity(self.payload_size)

    def save(self) -> None:
        """Serialise the node into its page and mark the page dirty."""
        if len(self.keys) != len(self.payloads):
            raise ValueError("keys and payloads out of sync")
        if len(self.keys) > self.capacity:
            raise ValueError(
                f"leaf holds {len(self.keys)} entries, capacity {self.capacity}"
            )
        data = self.page.data
        _LEAF_HEADER.pack_into(data, 0, NODE_LEAF, len(self.keys), self.next_leaf)
        entry_size = _KEY.size + self.payload_size
        offset = _LEAF_HEADER.size
        for key, payload in zip(self.keys, self.payloads):
            if len(payload) != self.payload_size:
                raise ValueError(
                    f"payload must be {self.payload_size} bytes, "
                    f"got {len(payload)}"
                )
            _KEY.pack_into(data, offset, key)
            data[offset + _KEY.size : offset + entry_size] = payload
            offset += entry_size
        self.page.mark_dirty()


class InternalNode:
    """In-memory view of an internal page.

    Holds ``count`` separator keys and ``count + 1`` child page ids.
    """

    __slots__ = ("page", "keys", "children")

    def __init__(self, page: Page) -> None:
        self.page = page
        self.keys: list[float] = []
        self.children: list[int] = []

    @classmethod
    def new(cls, page: Page, keys: list[float], children: list[int]) -> "InternalNode":
        """Initialise an internal node in a freshly allocated page."""
        node = cls(page)
        node.keys = list(keys)
        node.children = list(children)
        node.save()
        return node

    @classmethod
    def load(cls, page: Page) -> "InternalNode":
        """Parse an internal node from its page bytes."""
        node_type, count = _INTERNAL_HEADER.unpack_from(page.data, 0)
        if node_type != NODE_INTERNAL:
            raise ValueError(f"page {page.page_id} is not an internal node")
        node = cls(page)
        offset = _INTERNAL_HEADER.size
        for _ in range(count + 1):
            (child,) = _CHILD.unpack_from(page.data, offset)
            node.children.append(child)
            offset += _CHILD.size
        for _ in range(count):
            (key,) = _KEY.unpack_from(page.data, offset)
            node.keys.append(key)
            offset += _KEY.size
        return node

    @property
    def count(self) -> int:
        """Number of separator keys."""
        return len(self.keys)

    @property
    def capacity(self) -> int:
        """Maximum number of separator keys."""
        return internal_capacity()

    def save(self) -> None:
        """Serialise the node into its page and mark the page dirty."""
        if len(self.children) != len(self.keys) + 1:
            raise ValueError(
                f"internal node needs count+1 children: "
                f"{len(self.keys)} keys, {len(self.children)} children"
            )
        if len(self.keys) > self.capacity:
            raise ValueError(
                f"internal node holds {len(self.keys)} keys, "
                f"capacity {self.capacity}"
            )
        data = self.page.data
        _INTERNAL_HEADER.pack_into(data, 0, NODE_INTERNAL, len(self.keys))
        offset = _INTERNAL_HEADER.size
        for child in self.children:
            _CHILD.pack_into(data, offset, child)
            offset += _CHILD.size
        for key in self.keys:
            _KEY.pack_into(data, offset, key)
            offset += _KEY.size
        self.page.mark_dirty()
