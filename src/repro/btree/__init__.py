"""Disk-paged B+-tree.

A from-scratch B+-tree over the :mod:`repro.storage` page stack:

* float64 keys, fixed-size opaque payloads, duplicate keys allowed;
* leaves chained left-to-right for range scans;
* insert with node splits, plus a packed bulk loader for one-off
  construction (the paper's Section 6.3.2 index builds);
* every node access is a buffer-pool page request, so I/O cost falls out
  of the storage counters.

:mod:`repro.btree.checker` verifies the structural invariants (ordering,
fill factors, leaf chaining, separator consistency) and is used heavily by
the property-based tests.
"""

from __future__ import annotations

from repro.btree.node import InternalNode, LeafNode, internal_capacity, leaf_capacity
from repro.btree.tree import BPlusTree

__all__ = [
    "BPlusTree",
    "InternalNode",
    "LeafNode",
    "internal_capacity",
    "leaf_capacity",
]
