"""The B+-tree proper: create/open, insert, search, range scan, bulk load.

Page 0 of the tree's pager is a metadata page::

    magic u32 | payload_size u32 | root u64 | height u32 | num_entries u64

``height == 1`` means the root is a leaf.  All node accesses go through the
buffer pool (counted I/O) and additionally bump :attr:`BPlusTree.node_visits`
so CPU-side traversal work is observable separately from page I/O.

The read paths (:meth:`BPlusTree.search`, :meth:`BPlusTree.range_search`,
:meth:`BPlusTree.iter_entries`) accept an optional per-query
:class:`~repro.utils.counters.CostCounters` bundle; node visits and page
accesses performed on behalf of that query are recorded there as well,
which is what makes per-query cost reporting exact under interleaved or
concurrent queries (the tree-level ``node_visits`` attribute is a
lifetime aggregate shared by every caller).
"""

from __future__ import annotations

import math
import struct
from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator

import numpy as np

from repro.btree.node import (
    NODE_LEAF,
    NO_LEAF,
    InternalNode,
    LeafNode,
    internal_capacity,
    leaf_capacity,
    leaf_entries_view,
    leaf_header,
)
from repro.storage.buffer_pool import BufferPool
from repro.utils.counters import CostCounters

__all__ = ["BPlusTree"]

_META = struct.Struct("<IIQIQ")
_MAGIC = 0x42545245  # "BTRE"


class BPlusTree:
    """Disk-paged B+-tree with float64 keys and fixed-size payloads.

    Use :meth:`create` on an empty pager or :meth:`open` on an existing
    tree file.  Duplicate keys are allowed; :meth:`search` returns every
    payload stored under a key and :meth:`range_search` returns entries in
    non-decreasing key order.
    """

    def __init__(
        self, buffer_pool: BufferPool, payload_size: int, *, _opened: bool = False
    ) -> None:
        if not _opened:
            raise RuntimeError(
                "use BPlusTree.create(...) or BPlusTree.open(...) instead of "
                "constructing BPlusTree directly"
            )
        self._pool = buffer_pool
        self._payload_size = payload_size
        self._root = 0
        self._height = 1
        self._num_entries = 0
        self.node_visits = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, buffer_pool: BufferPool, payload_size: int) -> "BPlusTree":
        """Initialise a new, empty tree on an empty pager."""
        if buffer_pool.pager.num_pages != 0:
            raise ValueError("BPlusTree.create requires an empty pager")
        leaf_capacity(payload_size)  # validates payload_size fits a page
        tree = cls(buffer_pool, payload_size, _opened=True)
        buffer_pool.allocate()  # page 0: metadata
        root_page = buffer_pool.allocate()
        LeafNode.new(root_page, payload_size)
        tree._root = root_page.page_id
        tree._height = 1
        tree._num_entries = 0
        tree._persist_meta()
        return tree

    @classmethod
    def open(cls, buffer_pool: BufferPool) -> "BPlusTree":
        """Attach to an existing tree file."""
        if buffer_pool.pager.num_pages == 0:
            raise ValueError("pager holds no pages; use BPlusTree.create")
        meta = buffer_pool.fetch(0)
        magic, payload_size, root, height, num_entries = _META.unpack_from(
            meta.data, 0
        )
        if magic != _MAGIC:
            raise ValueError("page 0 is not a B+-tree metadata page")
        tree = cls(buffer_pool, payload_size, _opened=True)
        tree._root = root
        tree._height = height
        tree._num_entries = num_entries
        return tree

    def _persist_meta(self) -> None:
        meta = self._pool.fetch(0)
        packed = _META.pack(
            _MAGIC,
            self._payload_size,
            self._root,
            self._height,
            self._num_entries,
        )
        # Only dirty page 0 when the metadata actually moved: a flush of
        # an unmodified tree must stay a no-op, or every read-only
        # snapshot (query engines, WAL-shipping replicas) would buffer a
        # phantom page-0 write it can never commit.
        if bytes(meta.data[: _META.size]) == packed:
            return
        meta.data[: _META.size] = packed
        meta.mark_dirty()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def payload_size(self) -> int:
        """Fixed payload size in bytes."""
        return self._payload_size

    @property
    def height(self) -> int:
        """Tree height; 1 means the root is a leaf."""
        return self._height

    @property
    def num_entries(self) -> int:
        """Number of (key, payload) entries stored."""
        return self._num_entries

    @property
    def buffer_pool(self) -> BufferPool:
        """The buffer pool all node accesses flow through."""
        return self._pool

    def __len__(self) -> int:
        return self._num_entries

    # ------------------------------------------------------------------
    # Node access
    # ------------------------------------------------------------------
    def _load_leaf(
        self, page_id: int, counters: CostCounters | None = None
    ) -> LeafNode:
        self.node_visits += 1
        if counters is not None:
            counters.btree_node_visits += 1
        return LeafNode.load(
            self._pool.fetch(page_id, counters), self._payload_size
        )

    def _load_internal(
        self, page_id: int, counters: CostCounters | None = None
    ) -> InternalNode:
        self.node_visits += 1
        if counters is not None:
            counters.btree_node_visits += 1
        return InternalNode.load(self._pool.fetch(page_id, counters))

    def _descend_to_leaf(
        self,
        key: float,
        *,
        leftmost: bool,
        counters: CostCounters | None = None,
    ) -> tuple[LeafNode, list[tuple[InternalNode, int]]]:
        """Walk root-to-leaf; returns the leaf and the internal path.

        ``leftmost=True`` uses ``bisect_left`` on separators so the search
        lands on the leftmost leaf that can contain *key* (needed for range
        scans over duplicate keys); inserts use ``bisect_right``.
        """
        path: list[tuple[InternalNode, int]] = []
        page_id = self._root
        for _ in range(self._height - 1):
            node = self._load_internal(page_id, counters)
            if leftmost:
                index = bisect_left(node.keys, key)
            else:
                index = bisect_right(node.keys, key)
            path.append((node, index))
            page_id = node.children[index]
        return self._load_leaf(page_id, counters), path

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def insert(self, key: float, payload: bytes) -> None:
        """Insert one entry (duplicates allowed)."""
        key = float(key)
        if not math.isfinite(key):
            raise ValueError(f"key must be finite, got {key}")
        if len(payload) != self._payload_size:
            raise ValueError(
                f"payload must be {self._payload_size} bytes, got {len(payload)}"
            )
        leaf, path = self._descend_to_leaf(key, leftmost=False)
        position = bisect_right(leaf.keys, key)
        leaf.keys.insert(position, key)
        leaf.payloads.insert(position, payload)
        self._num_entries += 1
        if leaf.count <= leaf.capacity:
            leaf.save()
            self._persist_meta()
            return

        separator, right_page_id = self._split_leaf(leaf)
        self._propagate_split(path, separator, right_page_id)
        self._persist_meta()

    def _split_leaf(self, leaf: LeafNode) -> tuple[float, int]:
        """Split an overflowing leaf; returns (separator, right page id)."""
        mid = leaf.count // 2
        right_page = self._pool.allocate()
        right = LeafNode(right_page, self._payload_size)
        right.keys = leaf.keys[mid:]
        right.payloads = leaf.payloads[mid:]
        right.next_leaf = leaf.next_leaf
        leaf.keys = leaf.keys[:mid]
        leaf.payloads = leaf.payloads[:mid]
        leaf.next_leaf = right_page.page_id
        leaf.save()
        right.save()
        return right.keys[0], right_page.page_id

    def _split_internal(self, node: InternalNode) -> tuple[float, int]:
        """Split an overflowing internal node; the middle key moves up."""
        mid = node.count // 2
        separator = node.keys[mid]
        right_page = self._pool.allocate()
        right = InternalNode(right_page)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        node.save()
        right.save()
        return separator, right_page.page_id

    def _propagate_split(
        self,
        path: list[tuple[InternalNode, int]],
        separator: float,
        right_page_id: int,
    ) -> None:
        """Insert the new separator up the path, splitting as needed."""
        while path:
            node, index = path.pop()
            node.keys.insert(index, separator)
            node.children.insert(index + 1, right_page_id)
            if node.count <= node.capacity:
                node.save()
                return
            separator, right_page_id = self._split_internal(node)
        # Split reached the old root: grow the tree by one level.
        old_root = self._root
        root_page = self._pool.allocate()
        InternalNode.new(root_page, [separator], [old_root, right_page_id])
        self._root = root_page.page_id
        self._height += 1

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------
    def delete(self, key: float, payload: bytes | None = None) -> int:
        """Delete entries with this key; returns how many were removed.

        Parameters
        ----------
        key:
            Key to delete.
        payload:
            When given, only entries whose payload equals it are removed
            (needed with duplicate keys); otherwise every entry under the
            key is removed.

        Deletion is *lazy* (the strategy of most production B-trees,
        e.g. PostgreSQL's nbtree): entries are removed from their leaves
        but underflowing — even empty — leaves stay in the structure and
        the leaf chain, where searches skip them for free.  Reclaim space
        with :meth:`compact` after bulk deletions.
        """
        key = float(key)
        if math.isnan(key):
            raise ValueError("key must not be NaN")
        if payload is not None and len(payload) != self._payload_size:
            raise ValueError(
                f"payload must be {self._payload_size} bytes, got {len(payload)}"
            )
        removed = 0
        leaf, _ = self._descend_to_leaf(key, leftmost=True)
        while True:
            position = bisect_left(leaf.keys, key)
            changed = False
            while position < leaf.count and leaf.keys[position] == key:
                if payload is None or leaf.payloads[position] == payload:
                    del leaf.keys[position]
                    del leaf.payloads[position]
                    removed += 1
                    changed = True
                else:
                    position += 1
            if changed:
                leaf.save()
            past_key = leaf.count and leaf.keys[-1] > key
            if past_key or leaf.next_leaf == NO_LEAF:
                break
            leaf = self._load_leaf(leaf.next_leaf)
        self._num_entries -= removed
        self._persist_meta()
        return removed

    def compact(self, *, fill_factor: float = 1.0) -> "BPlusTree":
        """Return a freshly bulk-loaded tree with this tree's live entries.

        Lazy deletion leaves underflowing pages behind; compaction
        rebuilds the tree packed (into new in-memory storage — callers
        that need a file-backed result bulk-load into their own pager).
        """
        from repro.storage.pager import Pager as _Pager
        from repro.storage.buffer_pool import BufferPool as _BufferPool

        fresh = BPlusTree.create(
            _BufferPool(_Pager(), capacity=self._pool.capacity),
            self._payload_size,
        )
        fresh.bulk_load(list(self.iter_entries()), fill_factor=fill_factor)
        return fresh

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def search(
        self, key: float, *, counters: CostCounters | None = None
    ) -> list[bytes]:
        """Return the payloads of every entry with exactly this key."""
        key = float(key)
        return [
            payload
            for _, payload in self.range_search(key, key, counters=counters)
        ]

    def range_search(
        self,
        low: float,
        high: float,
        *,
        counters: CostCounters | None = None,
    ) -> list[tuple[float, bytes]]:
        """Return all entries with ``low <= key <= high`` in key order.

        Pass a per-query ``counters`` bundle to attribute the traversal's
        node visits and page accesses to that query.
        """
        low = float(low)
        high = float(high)
        if math.isnan(low) or math.isnan(high):
            raise ValueError("range bounds must not be NaN")
        results: list[tuple[float, bytes]] = []
        if high < low or self._num_entries == 0:
            return results
        leaf, _ = self._descend_to_leaf(low, leftmost=True, counters=counters)
        while True:
            start = bisect_left(leaf.keys, low)
            for position in range(start, leaf.count):
                key = leaf.keys[position]
                if key > high:
                    return results
                results.append((key, leaf.payloads[position]))
            if leaf.next_leaf == NO_LEAF:
                return results
            leaf = self._load_leaf(leaf.next_leaf, counters)

    def _leaf_page_for(
        self, key: float, counters: CostCounters | None = None
    ) -> int:
        """Page id of the leftmost leaf that can contain *key* (array path:
        descends without materialising a :class:`LeafNode`)."""
        page_id = self._root
        for _ in range(self._height - 1):
            node = self._load_internal(page_id, counters)
            page_id = node.children[bisect_left(node.keys, key)]
        return page_id

    def _load_leaf_arrays(
        self,
        page_id: int,
        entry_dtype: np.dtype,
        counters: CostCounters | None,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Load a leaf as ``(keys, payloads, next_leaf)`` array views.

        Counted exactly like :meth:`_load_leaf` (a node visit plus a
        buffer-pool page access), but the entries are exposed as one
        structured-array view instead of per-entry Python objects.
        """
        self.node_visits += 1
        if counters is not None:
            counters.btree_node_visits += 1
        page = self._pool.fetch(page_id, counters)
        node_type, count, next_leaf = leaf_header(page)
        if node_type != NODE_LEAF:
            raise ValueError(f"page {page_id} is not a leaf node")
        entries = leaf_entries_view(page, entry_dtype, count)
        return entries["key"], entries["payload"], next_leaf

    def _entry_dtype(self, payload_dtype: "np.dtype | None") -> np.dtype:
        """Structured dtype of one on-leaf entry (key + payload)."""
        if self._payload_size == 0:
            raise ValueError(
                "range_search_many requires a non-empty payload layout"
            )
        if payload_dtype is None:
            payload = np.dtype((np.void, self._payload_size))
        else:
            payload = np.dtype(payload_dtype)
            if payload.itemsize != self._payload_size:
                raise ValueError(
                    f"payload_dtype itemsize {payload.itemsize} != "
                    f"payload_size {self._payload_size}"
                )
        return np.dtype([("key", "<f8"), ("payload", payload)])

    def range_search_many(
        self,
        ranges: "list[tuple[float, float]]",
        *,
        payload_dtype: "np.dtype | None" = None,
        counters: CostCounters | None = None,
    ) -> "list[tuple[np.ndarray, np.ndarray]]":
        """Bulk range search: one ``(keys, payloads)`` array pair per range.

        The vectorized counterpart of calling :meth:`range_search` once
        per range, with two structural savings:

        * each visited leaf is decoded with a single structured-array
          view (no per-entry unpacking, no :class:`LeafNode` objects);
        * consecutive ranges walk leaf-to-leaf over the sibling links —
          the root-to-leaf descent is skipped whenever the next range
          provably starts inside the leaf the previous range ended on
          (its first key is strictly below ``low``, so no earlier leaf
          can hold an in-range entry even with duplicate keys, and
          ``low`` is at most its last key).

        Results are bit-identical to the per-range scalar path, in the
        same order; within each range the visited leaves are exactly the
        leaves :meth:`range_search` reads, so logical page accesses are
        never more than the scalar path's (and are fewer whenever a
        descent is skipped).  ``records_scanned`` is charged per logical
        record returned; node visits and page accesses are charged per
        leaf/descent as usual.

        Parameters
        ----------
        ranges:
            ``(low, high)`` pairs; an inverted pair yields an empty
            result, like :meth:`range_search`.
        payload_dtype:
            Optional structured dtype for the payload bytes (e.g. the
            ViTri codec's ``record_dtype``); its itemsize must equal the
            tree's payload size.  Defaults to raw ``V<payload_size>``
            bytes.
        counters:
            Per-query cost bundle.

        Returns
        -------
        list of (numpy.ndarray, numpy.ndarray)
            Per range: float64 keys and payload records (owned copies,
            never views into pooled pages), in non-decreasing key order.
        """
        entry_dtype = self._entry_dtype(payload_dtype)
        payload_out = entry_dtype["payload"]
        results: "list[tuple[np.ndarray, np.ndarray]]" = []
        leaf: "tuple[np.ndarray, np.ndarray, int] | None" = None
        for low, high in ranges:
            low = float(low)
            high = float(high)
            if math.isnan(low) or math.isnan(high):
                raise ValueError("range bounds must not be NaN")
            if high < low or self._num_entries == 0:
                results.append(
                    (np.empty(0, np.float64), np.empty(0, payload_out))
                )
                continue
            reusable = (
                leaf is not None
                and leaf[0].size > 0
                and float(leaf[0][0]) < low
                and low <= float(leaf[0][-1])
            )
            if not reusable:
                leaf = self._load_leaf_arrays(
                    self._leaf_page_for(low, counters), entry_dtype, counters
                )
            key_runs: "list[np.ndarray]" = []
            payload_runs: "list[np.ndarray]" = []
            returned = 0
            while True:
                keys = leaf[0]
                start = int(np.searchsorted(keys, low, side="left"))
                stop = int(np.searchsorted(keys, high, side="right"))
                if stop > start:
                    key_runs.append(keys[start:stop])
                    payload_runs.append(leaf[1][start:stop])
                    returned += stop - start
                if stop < keys.size or leaf[2] == NO_LEAF:
                    break
                leaf = self._load_leaf_arrays(leaf[2], entry_dtype, counters)
            if counters is not None:
                counters.records_scanned += returned
            if key_runs:
                # np.concatenate copies, so results own their memory and
                # never alias (possibly evicted) buffer-pool pages.
                results.append(
                    (np.concatenate(key_runs), np.concatenate(payload_runs))
                )
            else:
                results.append(
                    (np.empty(0, np.float64), np.empty(0, payload_out))
                )
        return results

    def key_bounds(
        self, *, counters: CostCounters | None = None
    ) -> tuple[float, float] | None:
        """Smallest and largest key currently stored; ``None`` when empty.

        Two root-to-leaf descents (O(height) page accesses) in the common
        case.  Lazy deletion can leave empty edge leaves: the low end
        skips them by walking the chain forward, and an emptied rightmost
        leaf falls back to a full forward walk.
        """
        if self._num_entries == 0:
            return None
        leaf, _ = self._descend_to_leaf(
            -math.inf, leftmost=True, counters=counters
        )
        while leaf.count == 0 and leaf.next_leaf != NO_LEAF:
            leaf = self._load_leaf(leaf.next_leaf, counters)
        if leaf.count == 0:  # pragma: no cover - num_entries > 0 above
            return None
        low = leaf.keys[0]
        rightmost, _ = self._descend_to_leaf(
            math.inf, leftmost=False, counters=counters
        )
        if rightmost.count > 0:
            return (low, rightmost.keys[rightmost.count - 1])
        high = low
        node = leaf
        while node.next_leaf != NO_LEAF:
            node = self._load_leaf(node.next_leaf, counters)
            if node.count > 0:
                high = node.keys[node.count - 1]
        return (low, high)

    def iter_entries(
        self, *, counters: CostCounters | None = None
    ) -> Iterator[tuple[float, bytes]]:
        """Yield every entry left to right (full leaf-chain walk)."""
        if self._num_entries == 0:
            return
        leaf, _ = self._descend_to_leaf(
            -math.inf, leftmost=True, counters=counters
        )
        while True:
            yield from zip(leaf.keys, leaf.payloads)
            if leaf.next_leaf == NO_LEAF:
                return
            leaf = self._load_leaf(leaf.next_leaf, counters)

    # ------------------------------------------------------------------
    # Bulk load
    # ------------------------------------------------------------------
    def bulk_load(
        self, items: Iterable[tuple[float, bytes]], *, fill_factor: float = 1.0
    ) -> None:
        """Build the tree bottom-up from key-sorted items.

        Much faster than repeated inserts and produces packed pages; used
        for the paper's one-off index constructions.  The tree must be
        empty.

        Parameters
        ----------
        items:
            ``(key, payload)`` pairs in non-decreasing key order.
        fill_factor:
            Fraction of each leaf/internal node to fill, in ``(0, 1]``.
        """
        if self._num_entries != 0:
            raise ValueError("bulk_load requires an empty tree")
        if not 0.0 < fill_factor <= 1.0:
            raise ValueError(f"fill_factor must be in (0, 1], got {fill_factor}")

        items = list(items)
        for (key, payload) in items:
            if len(payload) != self._payload_size:
                raise ValueError(
                    f"payload must be {self._payload_size} bytes, "
                    f"got {len(payload)}"
                )
        keys = [float(key) for key, _ in items]
        if any(b < a for a, b in zip(keys, keys[1:])):
            raise ValueError("bulk_load items must be sorted by key")
        if not items:
            return

        per_leaf = max(2, int(leaf_capacity(self._payload_size) * fill_factor))
        per_internal = max(2, int(internal_capacity() * fill_factor))

        # Build the leaf level, reusing the initial empty root page as the
        # first leaf.
        leaf_ids: list[int] = []
        first_keys: list[float] = []
        previous: LeafNode | None = None
        for start in range(0, len(items), per_leaf):
            chunk = items[start : start + per_leaf]
            if start == 0:
                page = self._pool.fetch(self._root)
            else:
                page = self._pool.allocate()
            leaf = LeafNode(page, self._payload_size)
            leaf.keys = [float(key) for key, _ in chunk]
            leaf.payloads = [payload for _, payload in chunk]
            if previous is not None:
                previous.next_leaf = page.page_id
                previous.save()
            previous = leaf
            leaf_ids.append(page.page_id)
            first_keys.append(leaf.keys[0])
        previous.next_leaf = NO_LEAF
        previous.save()

        # Build internal levels until a single root remains.
        level_ids = leaf_ids
        level_keys = first_keys
        height = 1
        while len(level_ids) > 1:
            parent_ids: list[int] = []
            parent_first_keys: list[float] = []
            for start in range(0, len(level_ids), per_internal + 1):
                child_ids = level_ids[start : start + per_internal + 1]
                child_keys = level_keys[start : start + per_internal + 1]
                page = self._pool.allocate()
                InternalNode.new(page, child_keys[1:], child_ids)
                parent_ids.append(page.page_id)
                parent_first_keys.append(child_keys[0])
            level_ids = parent_ids
            level_keys = parent_first_keys
            height += 1

        self._root = level_ids[0]
        self._height = height
        self._num_entries = len(items)
        self._persist_meta()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Write every dirty page down to the pager."""
        self._persist_meta()
        self._pool.flush()

    def __repr__(self) -> str:
        return (
            f"BPlusTree(entries={self._num_entries}, height={self._height}, "
            f"payload_size={self._payload_size})"
        )
