"""Scatter-gather query routing over a fleet of ViTri shards.

:class:`ShardedVideoDatabase` presents the :class:`~repro.core.database.VideoDatabase`
surface over many shards.  Placement, fan-out and aggregation all live
here; the shards themselves are ordinary single-node databases.

Exactness
---------
Every video lives *entirely* on one shard (the partitioner routes whole
summaries), so a video's similarity score is computed shard-locally and
is identical to what an unsharded index would compute — scores depend
only on the query and the video's own ViTris, never on the shard's
transform.  A global top-``k`` therefore is an exact merge of per-shard
top-``k`` lists: any video in the global top-``k`` is necessarily in its
own shard's top-``k``.  The merge reuses the index's ranking rule
(score-descending, video-id tie-break), so a sharded and an unsharded
database return *identical* rankings for the same content.

Pruning
-------
Before scattering, the router asks each shard whether the query's
composed key ranges (in that shard's own key space) overlap the shard's
B+-tree key bounds.  The key filter is lossless, so a miss proves the
shard contributes zero-similarity videos only and it is skipped without
affecting the ranking.  Under a :class:`~repro.shard.partitioner.KeyRangePartitioner`
nearby videos share shards, so selective queries typically touch one or
two shards.

Cost accounting
---------------
Each scattered sub-query folds its events into a per-shard
:class:`~repro.utils.counters.CostCounters` bundle (the ``out_counters``
seam); the router sums the bundles — plus its own pruning I/O — into one
bundle and builds the global :class:`~repro.core.index.QueryStats` from
that bundle alone, never by re-aggregating per-shard ``QueryStats``
objects (enforced by the ``counter-discipline`` lint rule).  Wall time
is the router's own scatter-to-merge span, so overlap across shards is
visible as ``wall_time`` < sum of per-shard times.

Fault tolerance
---------------
By default the scatter is strict: any worker failure aborts the query
with a :class:`~repro.shard.resilience.ScatterError` aggregating *every*
shard's error.  Passing ``fault_policy=``/``fail_fast=False`` to the
query methods switches to the resilient path: each shard's sub-query
runs under :func:`~repro.shard.resilience.run_attempts` (deadline,
deterministic retries, optional hedging, per-shard circuit breaker) and
a degraded query returns whatever the surviving shards answered plus a
:class:`~repro.shard.resilience.Coverage` report saying exactly which
shards are missing and whether the merged top-k is provably complete.
Per-shard health lives in the router's
:class:`~repro.shard.resilience.FleetHealth` registry and is persisted
to ``health.json`` beside the manifest (advisory state: written with a
plain atomic replace, never routed through the fault injector, so
crash-point sweeps see identical op counts with or without it).

Durability
----------
A durable fleet is a directory of shard directories plus a
``shards.json`` manifest (partitioner, shard list, id counter).
:meth:`ShardedVideoDatabase.checkpoint` checkpoints every shard through
its own write-ahead log — each one individually atomic — then replaces
the manifest atomically.  Reopening reconciles the fleet: each shard
recovers to its own last checkpoint, the id counter is the max of the
manifest's and every shard's content, and any video found on two shards
(a crash between the two shard checkpoints of a rebalance) is kept only
on the shard the partitioner routes it to.
"""

from __future__ import annotations

# vilint: disable-file=blocking-while-locked -- the router lock is
# deliberately coarse: it serialises fleet-topology mutations
# (rebalance, checkpoint, close) against whole queries, so scatters,
# shard sub-queries and manifest writes all run under it by design.
# Per-shard parallelism is preserved: scatter worker threads never take
# this lock.

import json
import os
import shutil
import threading
from dataclasses import dataclass
from typing import Callable

from repro.core.index import QueryStats, _rank
from repro.core.summarize import summarize_video
from repro.core.vitri import VideoSummary
from repro.shard.faults import FaultInjectingShard, ShardFaultInjector
from repro.shard.partitioner import (
    KeyRangePartitioner,
    Partitioner,
    make_partitioner,
    partitioner_from_dict,
)
from repro.shard.resilience import (
    ANSWERED,
    TIMED_OUT,
    TRIPPED,
    AttemptOutcome,
    BreakerPolicy,
    CircuitBreaker,
    Coverage,
    FaultPolicy,
    FleetHealth,
    HealthStats,
    ScatterError,
    run_attempts,
)
from repro.shard.shard import Shard
from repro.utils.clock import Clock, Deadline, SystemClock
from repro.utils.counters import CostCounters, Timer
from repro.utils.locks import make_lock
from repro.utils.stats import percentile
from repro.utils.validation import check_matrix, check_positive, check_positive_int

__all__ = [
    "ScatterStats",
    "ShardedBatchResult",
    "ShardedKNNResult",
    "ShardedServingMetrics",
    "ShardedVideoDatabase",
]

_MANIFEST_FILE = "shards.json"
_MANIFEST_FORMAT = 1
_HEALTH_FILE = "health.json"


@dataclass(frozen=True)
class ScatterStats:
    """How one query's fan-out went.

    Attributes
    ----------
    shards_total:
        Fleet size at query time.
    shards_queried:
        Ids of the shards actually scattered to.
    shards_pruned:
        Ids of the populated shards skipped by the key-bounds check.
    """

    shards_total: int
    shards_queried: tuple[int, ...]
    shards_pruned: tuple[int, ...]


@dataclass(frozen=True)
class ShardedKNNResult:
    """A sharded query's outcome: ranked videos, global cost, fan-out.

    ``coverage`` reports which shards contributed (see
    :class:`~repro.shard.resilience.Coverage`); on the strict path every
    queried shard answered, so ``coverage.complete`` is always true
    there — degraded queries are where it earns its keep.
    """

    videos: tuple[int, ...]
    scores: tuple[float, ...]
    stats: QueryStats
    scatter: ScatterStats
    coverage: Coverage | None = None

    def __len__(self) -> int:
        return len(self.videos)


@dataclass(frozen=True)
class ShardedServingMetrics:
    """Aggregate outcome of one :meth:`ShardedVideoDatabase.serve_many`
    batch, built from per-shard counter bundles."""

    queries: int
    shards: int
    wall_time: float
    qps: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    cache_hits: int
    cache_misses: int
    shard_page_requests: tuple[int, ...]
    shard_physical_reads: tuple[int, ...]
    total_page_requests: int
    total_physical_reads: int
    retries: int = 0
    hedges: int = 0
    timeouts: int = 0
    breaker_trips: int = 0
    degraded_queries: int = 0
    availability: float = 1.0

    def to_dict(self) -> dict:
        """JSON-serialisable form (what ``BENCH_sharding.json`` records)."""
        return {
            "queries": self.queries,
            "shards": self.shards,
            "wall_time": self.wall_time,
            "qps": self.qps,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "shard_page_requests": list(self.shard_page_requests),
            "shard_physical_reads": list(self.shard_physical_reads),
            "total_page_requests": self.total_page_requests,
            "total_physical_reads": self.total_physical_reads,
            "retries": self.retries,
            "hedges": self.hedges,
            "timeouts": self.timeouts,
            "breaker_trips": self.breaker_trips,
            "degraded_queries": self.degraded_queries,
            "availability": self.availability,
        }


@dataclass(frozen=True)
class ShardedBatchResult:
    """Results of a served batch, in query order, plus its metrics."""

    results: tuple[ShardedKNNResult, ...]
    metrics: ShardedServingMetrics

    def __len__(self) -> int:
        return len(self.results)


class ShardedVideoDatabase:
    """A :class:`~repro.core.database.VideoDatabase` sharded behind a router.

    Parameters
    ----------
    epsilon:
        Frame similarity threshold (shared by every shard).
    partitioner:
        A :class:`~repro.shard.partitioner.Partitioner` instance, or a
        kind name (``"hash"`` / ``"key_range"``) resolved through
        :func:`~repro.shard.partitioner.make_partitioner` with
        ``num_shards``.
    num_shards:
        Fleet size; required when ``partitioner`` is a kind name, must
        match (or be omitted) when it is an instance.
    path:
        Fleet directory (one sub-directory per shard plus the
        ``shards.json`` manifest).  When it already holds a manifest the
        stored configuration wins over the constructor arguments and
        every shard reopens at its last checkpoint.  ``None`` for an
        in-memory fleet.
    reference, summarize_seed, buffer_capacity, read_latency, cache_size:
        Forwarded to every shard (identical fleet-wide, so summaries are
        interchangeable and a sharded database stores bit-identical
        summaries to an unsharded one).
    fault_injector:
        One :class:`~repro.storage.faults.FaultInjector` shared by every
        shard *and* the manifest write, so a crash-point sweep covers the
        whole fleet checkpoint; testing only.
    clock:
        The :class:`~repro.utils.clock.Clock` driving latencies, retry
        backoffs and breaker cooldowns; defaults to the real
        :class:`~repro.utils.clock.SystemClock`.  Tests pass a
        :class:`~repro.utils.clock.VirtualClock` so fault behaviour is
        deterministic.
    """

    def __init__(
        self,
        epsilon: float = 0.3,
        *,
        partitioner: Partitioner | str = "hash",
        num_shards: int | None = None,
        path: str | os.PathLike | None = None,
        reference: str = "optimal",
        summarize_seed: int = 0,
        buffer_capacity: int = 256,
        read_latency: float = 0.0,
        cache_size: int = 128,
        fault_injector=None,
        clock: Clock | None = None,
    ) -> None:
        # Guards every mutable routing structure (_shards, _membership,
        # _partitioner, _next_video_id, _created_shards, _closed).  Held
        # for the full duration of every public operation: queries and
        # topology changes are mutually exclusive, which is what makes
        # rebalance()/checkpoint() safe to call under live traffic.
        self._lock = make_lock("ShardedVideoDatabase._lock")
        self._epsilon = check_positive(epsilon, "epsilon")
        self._reference = reference
        self._seed = summarize_seed
        self._buffer_capacity = buffer_capacity
        self._read_latency = read_latency
        self._cache_size = cache_size
        self._faults = fault_injector
        self._clock = clock if clock is not None else SystemClock()
        self._health = FleetHealth(self._clock)
        self._path = os.fspath(path) if path is not None else None
        self._closed = False
        self._writable = True
        self._next_video_id = 0
        self._created_shards = 0
        self._shards: list[Shard] = []
        self._membership: dict[int, int] = {}
        # Maintenance window (concurrent rebalance / online rebuild):
        # while set, writes targeting that shard are deferred instead of
        # applied, so the copy phase can run outside the router lock
        # against a frozen source.  Flushed when the window closes.
        self._maintenance_shard: int | None = None
        self._deferred_adds: list[VideoSummary] = []
        self._deferred_removes: list[int] = []

        manifest_path = (
            os.path.join(self._path, _MANIFEST_FILE)
            if self._path is not None
            else None
        )
        if manifest_path is not None and os.path.exists(manifest_path):
            self._reopen(manifest_path)
            return

        if isinstance(partitioner, str):
            self._partitioner = make_partitioner(partitioner, num_shards)
        elif isinstance(partitioner, Partitioner):
            if (
                num_shards is not None
                and num_shards != partitioner.num_shards
            ):
                raise ValueError(
                    f"num_shards={num_shards} conflicts with the "
                    f"partitioner's {partitioner.num_shards} shards"
                )
            self._partitioner = partitioner
        else:
            raise TypeError(
                "partitioner must be a Partitioner or a kind name"
            )
        if self._path is not None:
            os.makedirs(self._path, exist_ok=True)
        for _ in range(self._partitioner.num_shards):
            self._shards.append(self._new_shard())

    @classmethod
    def from_shards(
        cls,
        shards: list,
        *,
        epsilon: float,
        clock: Clock | None = None,
    ) -> "ShardedVideoDatabase":
        """A read-only router over pre-built shards (typically remote).

        The service layer's seam: hand this the fleet's
        :class:`~repro.serve.transport.RemoteShard` proxies (or plain
        :class:`Shard` objects) and the unchanged scatter machinery —
        pruning, per-shard counter bundles, resilient attempts, exact
        merge — runs over them.  Membership is discovered from each
        shard's own content; every mutating or durability operation
        raises, because the shards' files belong to whichever process
        serves them.
        """
        if not shards:
            raise ValueError("from_shards needs at least one shard")
        self = cls.__new__(cls)
        self._lock = make_lock("ShardedVideoDatabase._lock")
        # Immutable configuration mirrors __init__'s unguarded writes: a
        # field assigned under a lock anywhere counts as lock-guarded
        # everywhere (VIL008), and these are read lock-free by design.
        self._epsilon = check_positive(epsilon, "epsilon")
        self._reference = "optimal"
        self._seed = 0
        self._buffer_capacity = 0
        self._read_latency = 0.0
        self._cache_size = 0
        self._faults = None
        self._clock = clock if clock is not None else SystemClock()
        self._health = FleetHealth(self._clock)
        self._path = None
        with self._lock:
            self._closed = False
            self._writable = False
            self._created_shards = len(shards)
            self._shards = list(shards)
            self._membership = {}
            self._next_video_id = 0
            self._maintenance_shard = None
            self._deferred_adds = []
            self._deferred_removes = []
            for shard in self._shards:
                for video_id in shard.video_ids():
                    self._membership[video_id] = shard.shard_id
                    self._next_video_id = max(
                        self._next_video_id, video_id + 1
                    )
            # Placement is owned by whoever built the shards; this
            # partitioner exists only so introspection keeps working.
            self._partitioner = make_partitioner("hash", len(shards))
        return self

    def _new_shard(self) -> Shard:
        """Construct the next shard (fresh directory for durable fleets)."""
        shard_dir = None
        if self._path is not None:
            shard_dir = os.path.join(
                self._path, f"shard-{self._created_shards:04d}"
            )
        shard = Shard(
            len(self._shards),
            epsilon=self._epsilon,
            reference=self._reference,
            summarize_seed=self._seed,
            path=shard_dir,
            buffer_capacity=self._buffer_capacity,
            read_latency=self._read_latency,
            cache_size=self._cache_size,
            fault_injector=self._faults,
        )
        self._created_shards += 1
        return shard

    # ------------------------------------------------------------------
    # Reopening / reconciliation
    # ------------------------------------------------------------------
    def _reopen(self, manifest_path: str) -> None:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("format") != _MANIFEST_FORMAT:
            raise ValueError(
                f"{manifest_path} has unsupported format "
                f"{manifest.get('format')!r}"
            )
        self._epsilon = float(manifest["epsilon"])
        self._reference = str(manifest["reference"])
        self._seed = int(manifest["summarize_seed"])
        self._next_video_id = int(manifest["next_video_id"])
        self._created_shards = int(manifest["created_shards"])
        self._partitioner = partitioner_from_dict(manifest["partitioner"])
        shard_dirs = list(manifest["shards"])
        if len(shard_dirs) != self._partitioner.num_shards:
            raise ValueError(
                f"manifest lists {len(shard_dirs)} shards but the "
                f"partitioner routes across {self._partitioner.num_shards}"
            )
        for position, name in enumerate(shard_dirs):
            self._shards.append(
                Shard(
                    position,
                    epsilon=self._epsilon,
                    reference=self._reference,
                    summarize_seed=self._seed,
                    path=os.path.join(self._path, name),
                    buffer_capacity=self._buffer_capacity,
                    read_latency=self._read_latency,
                    cache_size=self._cache_size,
                    fault_injector=self._faults,
                )
            )
        self._reconcile()
        self._restore_health()

    def _reconcile(self) -> None:
        """Rebuild membership from actual shard content, resolving any
        cross-shard duplicates a mid-rebalance crash left behind.

        Each shard individually recovered to its last checkpoint; the
        only cross-shard inconsistency possible is a video present on
        two shards (moved and committed on the destination before the
        crash, but still committed on the source).  The partitioner is
        the tie-breaker: the copy on the shard it routes to survives,
        every other copy is removed.  A video sitting on a shard the
        partitioner would *not* choose (manifest committed before the
        move did) is left in place — placement is a performance matter,
        scatter-gather correctness never depends on it.
        """
        owners: dict[int, list[int]] = {}
        for shard in self._shards:
            for video_id in shard.video_ids():
                owners.setdefault(video_id, []).append(shard.shard_id)
        for video_id, places in owners.items():
            keep = places[0]
            if len(places) > 1:
                summary = next(
                    s
                    for s in self._shards[places[0]].summaries()
                    if s.video_id == video_id
                )
                routed = self._partitioner.shard_for(summary)
                keep = routed if routed in places else places[0]
                for place in places:
                    if place != keep:
                        self._shards[place].remove(video_id)
            self._membership[video_id] = keep
            self._next_video_id = max(self._next_video_id, video_id + 1)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def epsilon(self) -> float:
        """Frame similarity threshold (fleet-wide)."""
        return self._epsilon

    @property
    def num_shards(self) -> int:
        """Current fleet size."""
        with self._lock:
            return len(self._shards)

    @property
    def partitioner(self) -> Partitioner:
        """The placement strategy currently in force."""
        with self._lock:
            return self._partitioner

    @property
    def shards(self) -> tuple[Shard, ...]:
        """The fleet (exposed for tests, benchmarks and tooling)."""
        with self._lock:
            return tuple(self._shards)

    @property
    def path(self) -> str | None:
        """Fleet directory; ``None`` for an in-memory fleet."""
        return self._path

    def __len__(self) -> int:
        with self._lock:
            return sum(len(shard) for shard in self._shards)

    def video_ids(self) -> set[int]:
        """Ids of every stored video across the fleet."""
        with self._lock:
            return set(self._membership)

    def shard_of(self, video_id: int) -> int:
        """Which shard holds a video (raises if unknown)."""
        with self._lock:
            if video_id not in self._membership:
                raise ValueError(
                    f"video id {video_id} is not in the database"
                )
            return self._membership[video_id]

    @property
    def health(self) -> FleetHealth:
        """The live per-shard health + breaker registry."""
        return self._health

    def fleet_health(self) -> dict[int, dict]:
        """Per-shard health report covering *every* shard in the fleet.

        Shards that never saw a resilient query report zeroed counters
        and a closed breaker, so the report's shape is stable regardless
        of traffic.
        """
        with self._lock:
            report = self._health.snapshot()
            for shard in self._shards:
                if shard.shard_id not in report:
                    entry = HealthStats(shard.shard_id).to_dict()
                    entry["breaker_state"] = CircuitBreaker.CLOSED
                    entry["breaker_opens"] = 0
                    report[shard.shard_id] = entry
            return {
                shard_id: report[shard_id] for shard_id in sorted(report)
            }

    def inject_shard_faults(self, injector: ShardFaultInjector) -> None:
        """Wrap every current shard in a :class:`FaultInjectingShard`.

        Testing seam: the injector's schedule fires on serving operations
        (every knn / similarity_range attempt, retries and hedges
        included); routing metadata stays fault-free.  Shards created
        later (rebalance splits) are not wrapped.
        """
        with self._lock:
            self._shards = [
                shard
                if isinstance(shard, FaultInjectingShard)
                else FaultInjectingShard(shard, injector, clock=self._clock)
                for shard in self._shards
            ]

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("database is closed")

    def _check_writable(self) -> None:
        self._check_open()
        if not self._writable:
            raise RuntimeError(
                "this router is read-only (built with from_shards); "
                "mutations belong to the process that owns the shards"
            )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, frames, video_id: int | None = None) -> int:
        """Summarise one video and route it to its shard; returns its id.

        The summary is computed exactly as an unsharded
        :class:`VideoDatabase` would (same seed derivation), so sharded
        and unsharded fleets store bit-identical summaries.
        """
        with self._lock:
            self._check_writable()
            frames = check_matrix(frames, "frames", min_rows=1)
            if video_id is None:
                video_id = self._next_video_id
            if not isinstance(video_id, int) or isinstance(video_id, bool):
                raise TypeError("video_id must be an int")
            if video_id in self._membership:
                raise ValueError(f"video id {video_id} already present")
            summary = summarize_video(
                video_id, frames, self._epsilon, seed=self._seed + video_id
            )
            return self.add_summary(summary)

    def add_summary(self, summary: VideoSummary) -> int:
        """Route a pre-built summary to the shard that owns it."""
        with self._lock:
            self._check_writable()
            if not isinstance(summary, VideoSummary):
                raise TypeError("summary must be a VideoSummary")
            if summary.video_id in self._membership:
                raise ValueError(
                    f"video id {summary.video_id} already present"
                )
            target = self._partitioner.shard_for(summary)
            if target == self._maintenance_shard:
                # The owning shard is mid-rebalance/rebuild: admit the
                # summary (its id is claimed fleet-wide) but defer the
                # physical insert to the window's close, so the copy
                # phase sees a frozen source.  The durability contract
                # is unchanged — like any add, it is crash-durable only
                # after the next checkpoint.
                self._deferred_adds.append(summary)
            else:
                self._shards[target].add_summary(summary)
            self._membership[summary.video_id] = target
            self._next_video_id = max(
                self._next_video_id, summary.video_id + 1
            )
            return summary.video_id

    def add_many(self, videos) -> list[int]:
        """Add an iterable of frame matrices; returns their ids."""
        return [self.add(frames) for frames in videos]

    def remove(self, video_id: int) -> None:
        """Remove a video from whichever shard holds it."""
        with self._lock:
            self._check_writable()
            owner = self.shard_of(video_id)
            if owner == self._maintenance_shard:
                # The owner is mid-maintenance.  A deferred (never
                # physically inserted) add just un-defers; anything
                # already on the shard is queued for removal at the
                # window's close.
                for position, summary in enumerate(self._deferred_adds):
                    if summary.video_id == video_id:
                        del self._deferred_adds[position]
                        break
                else:
                    self._deferred_removes.append(video_id)
            else:
                self._shards[owner].remove(video_id)
            del self._membership[video_id]

    def build(self) -> None:
        """Force-build every populated shard's index."""
        with self._lock:
            self._check_writable()
            if not self._membership:
                raise ValueError("cannot build an empty database")
            for shard in self._shards:
                if len(shard) > 0 and shard.database.index is None:
                    shard.database.build()

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(
        self,
        frames,
        k: int = 10,
        *,
        method: str = "composed",
        prune: bool = True,
        cold: bool = False,
        fault_policy: FaultPolicy | None = None,
        fail_fast: bool = True,
    ) -> ShardedKNNResult:
        """Top-``k`` most similar stored videos for a raw frame matrix."""
        with self._lock:
            self._check_open()
        frames = check_matrix(frames, "frames", min_rows=1)
        summary = summarize_video(0, frames, self._epsilon, seed=self._seed)
        return self.knn(
            summary,
            k,
            method=method,
            prune=prune,
            cold=cold,
            fault_policy=fault_policy,
            fail_fast=fail_fast,
        )

    def knn(
        self,
        query: VideoSummary,
        k: int,
        *,
        method: str = "composed",
        prune: bool = True,
        cold: bool = False,
        fault_policy: FaultPolicy | None = None,
        fail_fast: bool = True,
    ) -> ShardedKNNResult:
        """Global top-``k``: scatter, per-shard top-``k``, exact merge.

        Parameters
        ----------
        query:
            Query summary (summarised with the fleet's epsilon).
        k:
            Number of results.
        method:
            ``"composed"`` or ``"naive"`` (per-shard execution strategy).
        prune:
            Skip shards whose key bounds the query's composed ranges
            cannot reach (lossless; never changes the ranking).
        cold:
            Clear each queried shard's serving pool first.
        fault_policy:
            Retry/deadline/hedge/breaker configuration for each shard's
            sub-query (see :class:`~repro.shard.resilience.FaultPolicy`).
            ``None`` with ``fail_fast=True`` (the default) is today's
            strict single-attempt scatter.
        fail_fast:
            ``True``: any shard that stays failed after its policy is
            exhausted raises a :class:`ScatterError` aggregating every
            failure.  ``False``: the query *returns* instead, merging
            whatever the surviving shards answered, with
            ``result.coverage`` flagging exactly what is missing.
        """
        with self._lock:
            self._check_query_args(query, k, method)
            total_counters = CostCounters()
            with Timer() as timer:
                queried, pruned = self._select_shards(
                    query, prune, total_counters
                )
                per_shard, coverage = self._dispatch(
                    queried,
                    pruned,
                    lambda shard, bundle, deadline=None, attempt=0: shard.knn(
                        query,
                        k,
                        method=method,
                        cold=cold,
                        out_counters=bundle,
                        deadline=deadline,
                        **(
                            {"attempt": attempt}
                            if getattr(shard, "replica_aware", False)
                            else {}
                        ),
                    ),
                    total_counters,
                    fault_policy,
                    fail_fast,
                )
                merged: dict[int, float] = {}
                for result in per_shard:
                    for video, score in zip(result.videos, result.scores):
                        merged[video] = score
                videos, scores = _rank(merged, k)
            return ShardedKNNResult(
                videos=videos,
                scores=scores,
                stats=self._global_stats(total_counters, timer.elapsed),
                scatter=ScatterStats(
                    shards_total=len(self._shards),
                    shards_queried=tuple(s.shard_id for s in queried),
                    shards_pruned=tuple(pruned),
                ),
                coverage=coverage,
            )

    def similarity_range(
        self,
        query: VideoSummary,
        min_similarity: float,
        *,
        method: str = "composed",
        prune: bool = True,
        cold: bool = False,
        fault_policy: FaultPolicy | None = None,
        fail_fast: bool = True,
    ) -> ShardedKNNResult:
        """All videos scoring at least ``min_similarity``, ranked globally.

        Thresholding happens shard-locally (scores are shard-independent)
        and the survivors merge exactly like :meth:`knn`; the
        ``fault_policy`` / ``fail_fast`` knobs behave as there.
        """
        with self._lock:
            self._check_query_args(query, 1, method)
            total_counters = CostCounters()
            with Timer() as timer:
                queried, pruned = self._select_shards(
                    query, prune, total_counters
                )
                per_shard, coverage = self._dispatch(
                    queried,
                    pruned,
                    lambda shard, bundle, deadline=None, attempt=0: (
                        shard.similarity_range(
                            query,
                            min_similarity,
                            method=method,
                            cold=cold,
                            out_counters=bundle,
                            deadline=deadline,
                            **(
                                {"attempt": attempt}
                                if getattr(shard, "replica_aware", False)
                                else {}
                            ),
                        )
                    ),
                    total_counters,
                    fault_policy,
                    fail_fast,
                )
                merged: dict[int, float] = {}
                for result in per_shard:
                    for video, score in zip(result.videos, result.scores):
                        merged[video] = score
                videos, scores = _rank(merged, len(merged))
            return ShardedKNNResult(
                videos=videos,
                scores=scores,
                stats=self._global_stats(total_counters, timer.elapsed),
                scatter=ScatterStats(
                    shards_total=len(self._shards),
                    shards_queried=tuple(s.shard_id for s in queried),
                    shards_pruned=tuple(pruned),
                ),
                coverage=coverage,
            )

    def serve_many(
        self,
        queries: list[VideoSummary],
        k: int,
        *,
        method: str = "composed",
        prune: bool = True,
        cold: bool = False,
        fault_policy: FaultPolicy | None = None,
        fail_fast: bool = True,
    ) -> ShardedBatchResult:
        """Serve a stream of queries, each scattered across the fleet.

        Queries run one at a time (each one already fans out across all
        relevant shards); metrics aggregate the per-query bundles, the
        shard engines' cache tallies, and — on the resilient path — the
        fleet-health deltas (retries, hedges, timeouts, breaker trips)
        over the batch.  ``availability`` is the fraction of queries
        that produced a usable answer: every shard that should have
        answered did, or at least one did (a degraded-but-nonempty
        answer counts as available; a query that lost *every* relevant
        shard does not).
        """
        with self._lock:
            self._check_open()
            queries = list(queries)
            hits_before, misses_before = self._cache_tallies()
            health_before = self._health_tallies()
            # Per-shard load = delta of the shard engines' worker counters,
            # which are themselves per-query bundle sums folded per view.
            load_before = {
                shard.shard_id: self._shard_load(shard) for shard in self._shards
            }
            results: list[ShardedKNNResult] = []
            with Timer() as batch_timer:
                for query in queries:
                    results.append(
                        self.knn(
                            query,
                            k,
                            method=method,
                            prune=prune,
                            cold=cold,
                            fault_policy=fault_policy,
                            fail_fast=fail_fast,
                        )
                    )
            shard_requests: dict[int, int] = {}
            shard_reads: dict[int, int] = {}
            for shard in self._shards:
                bundle = self._shard_load(shard)
                before = load_before.get(shard.shard_id, CostCounters())
                shard_requests[shard.shard_id] = (
                    bundle.page_requests - before.page_requests
                )
                shard_reads[shard.shard_id] = bundle.page_reads - before.page_reads
            hits_after, misses_after = self._cache_tallies()
            health_after = self._health_tallies()
            degraded = 0
            unavailable = 0
            for result in results:
                coverage = result.coverage
                if coverage is None or coverage.complete:
                    continue
                degraded += 1
                if not coverage.shards_answered:
                    unavailable += 1
            latencies = sorted(result.stats.wall_time for result in results)
            wall = batch_timer.elapsed
            metrics = ShardedServingMetrics(
                queries=len(queries),
                shards=len(self._shards),
                wall_time=wall,
                qps=len(queries) / wall if wall > 0.0 else 0.0,
                latency_p50=percentile(latencies, 0.50, default=0.0),
                latency_p95=percentile(latencies, 0.95, default=0.0),
                latency_p99=percentile(latencies, 0.99, default=0.0),
                cache_hits=hits_after - hits_before,
                cache_misses=misses_after - misses_before,
                shard_page_requests=tuple(
                    shard_requests[shard.shard_id] for shard in self._shards
                ),
                shard_physical_reads=tuple(
                    shard_reads[shard.shard_id] for shard in self._shards
                ),
                total_page_requests=sum(shard_requests.values()),
                total_physical_reads=sum(shard_reads.values()),
                retries=health_after["retries"] - health_before["retries"],
                hedges=health_after["hedges"] - health_before["hedges"],
                timeouts=health_after["timeouts"] - health_before["timeouts"],
                breaker_trips=health_after["trips"] - health_before["trips"],
                degraded_queries=degraded,
                availability=(
                    (len(queries) - unavailable) / len(queries)
                    if queries
                    else 1.0
                ),
            )
            return ShardedBatchResult(results=tuple(results), metrics=metrics)

    # ------------------------------------------------------------------
    # Query internals
    # ------------------------------------------------------------------
    def _check_query_args(
        self, query: VideoSummary, k: int, method: str
    ) -> None:
        self._check_open()
        if not isinstance(query, VideoSummary):
            raise TypeError("query must be a VideoSummary")
        check_positive_int(k, "k")
        if method not in ("composed", "naive"):
            raise ValueError(
                f"method must be 'composed' or 'naive', got {method!r}"
            )
        if not self._membership:
            raise ValueError("cannot query an empty database")

    def _select_shards(
        self, query: VideoSummary, prune: bool, counters: CostCounters
    ) -> tuple[list[Shard], list[int]]:
        """Populated shards to scatter to, and the ids pruned away."""
        queried: list[Shard] = []
        pruned: list[int] = []
        for shard in self._shards:
            if len(shard) == 0:
                continue
            if prune and not shard.may_contain(query, counters=counters):
                pruned.append(shard.shard_id)
            else:
                queried.append(shard)
        return queried, pruned

    def _dispatch(
        self,
        queried: list[Shard],
        pruned: list[int],
        work: Callable[[Shard, CostCounters, Deadline | None], object],
        total_counters: CostCounters,
        fault_policy: FaultPolicy | None,
        fail_fast: bool,
    ) -> tuple[list, Coverage]:
        """Scatter under the requested failure semantics.

        ``work(shard, bundle, deadline=None, attempt=0)`` runs one
        sub-query; on the resilient path the attempt loop supplies the
        sub-query's shared :class:`~repro.utils.clock.Deadline` and the
        dispatch ordinal (0 for the first attempt, +1 per retry or
        hedge), on the strict path there is neither.  ``work`` forwards
        the ordinal only to shard-likes that declare
        ``replica_aware = True`` (a :class:`ReplicaSet` uses it to send
        each attempt of one query to a *different* copy).

        No policy + ``fail_fast`` is the strict legacy path: one attempt
        per shard, any failure raises (now as an aggregated
        :class:`ScatterError`).  Otherwise every shard's sub-query runs
        under the policy (an explicit one, or the default
        :class:`FaultPolicy` when only ``fail_fast=False`` was asked
        for), and what could not be recovered either raises
        (``fail_fast``) or is reported in the returned coverage.
        """
        if fault_policy is None and fail_fast:
            results = self._scatter(queried, work, total_counters)
            coverage = Coverage(
                shards_total=len(self._shards),
                shards_answered=tuple(s.shard_id for s in queried),
                shards_pruned=tuple(pruned),
            )
            return results, coverage
        policy = fault_policy if fault_policy is not None else FaultPolicy()
        outcomes = self._scatter_resilient(queried, work, policy)
        results: list = []
        answered: list[int] = []
        failed: list[int] = []
        timed_out: list[int] = []
        tripped: list[int] = []
        failures: dict[int, BaseException] = {}
        for shard, outcome in zip(queried, outcomes):
            if outcome.disposition == ANSWERED:
                answered.append(shard.shard_id)
                results.append(outcome.result)
                total_counters.add(outcome.bundle)
                continue
            failures[shard.shard_id] = outcome.error
            if outcome.disposition == TIMED_OUT:
                timed_out.append(shard.shard_id)
            elif outcome.disposition == TRIPPED:
                tripped.append(shard.shard_id)
            else:
                failed.append(shard.shard_id)
        if fail_fast and failures:
            raise ScatterError(failures)
        coverage = Coverage(
            shards_total=len(self._shards),
            shards_answered=tuple(answered),
            shards_pruned=tuple(pruned),
            shards_failed=tuple(failed),
            shards_timed_out=tuple(timed_out),
            shards_tripped=tuple(tripped),
        )
        return results, coverage

    def _scatter(
        self,
        shards: list[Shard],
        work: Callable[[Shard, CostCounters, Deadline | None], object],
        total_counters: CostCounters,
    ) -> list:
        """Run ``work(shard, bundle)`` on every shard, thread-parallel.

        Each sub-query gets a private counter bundle (bundles are not
        thread-safe); the bundles fold into ``total_counters`` after the
        join, so the global stats see every shard's events exactly once.
        Worker failures abort the query with a :class:`ScatterError`
        carrying *every* shard's error, attributed per shard.
        """
        if not shards:
            return []
        bundles = [CostCounters() for _ in shards]
        results: list = [None] * len(shards)
        errors: dict[int, BaseException] = {}

        def run(position: int) -> None:
            try:
                results[position] = work(shards[position], bundles[position])
            except BaseException as exc:  # propagate to the caller
                errors[shards[position].shard_id] = exc

        if len(shards) == 1:
            run(0)
        else:
            threads = [
                threading.Thread(
                    target=run,
                    args=(position,),
                    name=f"shard-query-{shards[position].shard_id}",
                )
                for position in range(len(shards))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        if errors:
            raise ScatterError(errors)
        for bundle in bundles:
            total_counters.add(bundle)
        return results

    def _scatter_resilient(
        self,
        shards: list[Shard],
        work: Callable[[Shard, CostCounters, Deadline | None], object],
        policy: FaultPolicy,
    ) -> list[AttemptOutcome]:
        """Run every shard's sub-query under ``policy``, thread-parallel.

        Per-shard retry/hedge/breaker logic lives in
        :func:`~repro.shard.resilience.run_attempts`; this only fans it
        out.  Non-retryable exceptions (programming errors, not faults)
        still abort the whole query, degraded mode or not.
        """
        if not shards:
            return []
        outcomes: list[AttemptOutcome | None] = [None] * len(shards)
        bugs: dict[int, BaseException] = {}

        def run(position: int) -> None:
            shard = shards[position]
            try:
                outcomes[position] = run_attempts(
                    # Three positional parameters: run_attempts detects
                    # the third and feeds each dispatch its ordinal, so
                    # replica-aware shards can route hedges/retries to a
                    # different copy.
                    lambda bundle, deadline, attempt=0: work(
                        shard, bundle, deadline, attempt
                    ),
                    shard.shard_id,
                    policy,
                    self._health,
                    self._clock,
                )
            except BaseException as exc:  # non-retryable: a bug, not a fault
                bugs[shard.shard_id] = exc

        if len(shards) == 1:
            run(0)
        else:
            threads = [
                threading.Thread(
                    target=run,
                    args=(position,),
                    name=f"shard-query-{shards[position].shard_id}",
                )
                for position in range(len(shards))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        if bugs:
            raise ScatterError(bugs)
        return outcomes

    def _health_tallies(self) -> dict[str, int]:
        """Fleet-wide health counter sums (for batch metric deltas)."""
        tallies = {"retries": 0, "hedges": 0, "timeouts": 0, "trips": 0}
        for entry in self._health.snapshot().values():
            tallies["retries"] += entry["retries"]
            tallies["hedges"] += entry["hedges_fired"]
            tallies["timeouts"] += entry["timeouts"]
            tallies["trips"] += entry["trips"]
        return tallies

    def _global_stats(
        self, total_counters: CostCounters, elapsed: float
    ) -> QueryStats:
        """Global stats from the summed per-shard bundles, nothing else."""
        return QueryStats(
            page_requests=total_counters.page_requests,
            physical_reads=total_counters.page_reads,
            node_visits=total_counters.btree_node_visits,
            similarity_computations=total_counters.similarity_computations,
            candidates=total_counters.records_scanned,
            ranges=total_counters.extra.get("range_searches", 0),
            wall_time=elapsed,
        )

    @staticmethod
    def _shard_engines(shard) -> list:
        """Every built engine behind one routed shard-like.

        A plain :class:`Shard` has at most its own engine; a replica
        group exposes ``serving_engines()`` so the tallies count every
        copy that actually served traffic.
        """
        serving = getattr(shard, "serving_engines", None)
        if serving is not None:
            return serving()
        engine = shard._engine
        return [engine] if engine is not None else []

    def _cache_tallies(self) -> tuple[int, int]:
        """Summed (hits, misses) of every shard engine built so far."""
        hits = 0
        misses = 0
        for shard in self._shards:
            for engine in self._shard_engines(shard):
                hits += engine.cache_hits
                misses += engine.cache_misses
        return hits, misses

    def _shard_load(self, shard) -> CostCounters:
        """One shard's cumulative serving I/O (folded worker bundles),
        summed across every copy for a replica group."""
        load = CostCounters()
        for engine in self._shard_engines(shard):
            load.add(engine._serial_view.counters)
        return load

    def replication_status(self) -> list[dict]:
        """Per-shard replication telemetry, for shards that have any.

        Replica-aware shard-likes (:class:`ReplicaSet`) report their
        shipper position and per-replica state; plain shards contribute
        nothing.  An empty list therefore means an unreplicated fleet.
        """
        with self._lock:
            self._check_open()
            statuses = []
            for shard in self._shards:
                status = getattr(shard, "replication_status", None)
                if status is not None:
                    statuses.append(status())
            return statuses

    # ------------------------------------------------------------------
    # Maintenance windows (rebalance / online rebuild)
    # ------------------------------------------------------------------
    def _open_window(self, position: int) -> None:
        """Start deferring writes aimed at shard ``position`` (caller
        must hold the lock)."""
        if self._maintenance_shard is not None:
            raise RuntimeError(
                f"shard {self._maintenance_shard} is already under "
                "maintenance; one window at a time"
            )
        self._maintenance_shard = position

    def _close_window(self) -> None:
        """End the maintenance window and apply the deferred writes
        (caller must hold the lock).  After a simulated crash the
        deferral queues are abandoned — the crashed fleet can absorb
        nothing, and reopening recovers from disk alone."""
        self._maintenance_shard = None
        if self._faults is not None and self._faults.crashed:
            self._deferred_adds = []
            self._deferred_removes = []
            return
        self._flush_deferred()

    def _flush_deferred(self) -> None:
        adds, self._deferred_adds = self._deferred_adds, []
        removes, self._deferred_removes = self._deferred_removes, []
        for summary in adds:
            # Routed by the *current* partitioner: a rebalance that
            # split the maintained shard sends the add to the right
            # side of the new boundary.
            target = self._partitioner.shard_for(summary)
            self._shards[target].add_summary(summary)
            self._membership[summary.video_id] = target
        for video_id in removes:
            # A deferred-removed mover can sit on source and copy both;
            # scan physically so every copy goes.
            for shard in self._shards:
                if video_id in shard.video_ids():
                    shard.remove(video_id)
            self._membership.pop(video_id, None)

    # ------------------------------------------------------------------
    # Rebalancing
    # ------------------------------------------------------------------
    def rebalance(self) -> int | None:
        """Split the hottest shard at its median routing key.

        The hottest shard is the one that served the most queries (ties
        break towards more videos).  Its videos above the median routing
        key move to a new shard inserted right after it; the partitioner
        gains the corresponding boundary.  Returns the new shard's index,
        or ``None`` when no shard can be split (fewer than two distinct
        routing keys on the hottest shard).

        Concurrency: the bulk of the work — scanning the source and
        copying the movers into the new shard — runs *outside* the
        router lock, so queries keep being served from the source
        throughout (the source stays authoritative until the commit
        point).  A maintenance window defers writes aimed at the source
        for the duration; everything else proceeds normally.  Only the
        brief cutover (partitioner split, manifest, source trim) holds
        the lock.

        Durable fleets commit in an order that keeps every crash point
        recoverable: the destination's content first (an orphan
        directory the old manifest ignores), then the manifest (new
        partitioner + shard list), then the source shard's removals.  A
        crash between the last two leaves the moved videos on both
        shards; reopening keeps only the partitioner-routed copy (see
        :meth:`_reconcile`).
        """
        with self._lock:
            self._check_writable()
            if not isinstance(self._partitioner, KeyRangePartitioner):
                raise ValueError(
                    "rebalance() requires a KeyRangePartitioner (hash placement "
                    "has no key ranges to split)"
                )
            populated = [s for s in self._shards if len(s) > 0]
            if not populated:
                return None
            hottest = max(
                populated, key=lambda s: (s.queries_served, len(s))
            )
            partitioner = self._partitioner
            self._open_window(hottest.shard_id)
        try:
            # -- copy phase: no router lock held ------------------------
            # The window freezes the source's content (writes to it are
            # deferred), so the scan and the partitioner snapshot are
            # consistent; concurrent queries read the same frozen pages.
            summaries = hottest.summaries()
            keyed = [
                (partitioner.routing_key(summary), summary)
                for summary in summaries
            ]
            keyed.sort(key=lambda pair: pair[0])
            keys = [key for key, _ in keyed]
            at = keys[(len(keys) - 1) // 2]
            movers = [summary for key, summary in keyed if key > at]
            if not movers:
                return None  # all routing keys equal: nothing separates

            with self._lock:
                if self._path is not None:
                    # A crashed earlier rebalance can leave an orphan
                    # directory under the name we are about to reuse
                    # (``created_shards`` reloads from the pre-crash
                    # manifest); it was never in a manifest, so wipe it.
                    orphan = os.path.join(
                        self._path, f"shard-{self._created_shards:04d}"
                    )
                    if os.path.exists(orphan):
                        shutil.rmtree(orphan)
                new_shard = self._new_shard()
            for summary in movers:
                new_shard.add_summary(summary)
            if self._path is not None:
                # Commit point 1: the destination's content is durable
                # *before* any membership changes.  Until the manifest
                # lands this directory is an ignorable orphan.
                new_shard.checkpoint()

            # -- cutover: brief critical section ------------------------
            with self._lock:
                position = hottest.shard_id
                self._partitioner = self._partitioner.split(position, at)
                self._shards.insert(position + 1, new_shard)
                for index, shard in enumerate(self._shards):
                    shard.renumber(index)
                # Deferred writes flush against the split partitioner —
                # an add past the boundary lands on the new shard.
                self._close_window()
                if self._path is not None:
                    # Commit point 2: the fleet's new shape.  The movers
                    # are now briefly on both shards; reconciliation
                    # keeps the partitioner-routed (new) copy.
                    self._write_manifest()
                for summary in movers:
                    # A deferred remove may have already taken a mover.
                    if summary.video_id in hottest.video_ids():
                        hottest.remove(summary.video_id)
                if self._path is not None:
                    # Commit point 3: source lets go.
                    hottest.checkpoint()
                self._membership = {}
                for shard in self._shards:
                    for video_id in shard.video_ids():
                        self._membership[video_id] = shard.shard_id
                return new_shard.shard_id
        finally:
            with self._lock:
                if self._maintenance_shard is not None:
                    self._close_window()

    def rebuild_shard(self, position: int, *, reference: str | None = None):
        """Online reference-point rebuild of one shard (paper Sec 6.3.3).

        Runs :func:`repro.ingest.cutover.side_build` on the shard's
        database *outside* the router lock — queries keep being served
        from the old generation while the refitted index is built in a
        sibling directory — then takes the lock only for the atomic
        cutover (``epoch.json`` pointer swap + engine/cache drop).  A
        maintenance window defers writes aimed at the shard for the
        duration.  Returns the :class:`~repro.ingest.cutover.CutoverReport`.
        """
        # Imported lazily: the ingest package sits above the routing
        # layer (its pipeline drives this router), so a module-level
        # import would be a cycle.
        from repro.ingest.cutover import commit_cutover, side_build

        with self._lock:
            self._check_writable()
            if self._path is None:
                raise RuntimeError(
                    "rebuild_shard() requires a durable fleet (the side "
                    "build lives in a sibling generation directory)"
                )
            if not isinstance(position, int) or isinstance(position, bool):
                raise TypeError("position must be an int")
            if not 0 <= position < len(self._shards):
                raise ValueError(
                    f"position {position} out of range "
                    f"(fleet has {len(self._shards)} shards)"
                )
            shard = self._shards[position]
            if len(shard) == 0:
                raise ValueError("cannot rebuild an empty shard")
            self._open_window(position)
        try:
            result = side_build(
                shard.database,
                reference=reference if reference is not None else self._reference,
            )
            with self._lock:
                return commit_cutover(shard, result)
        finally:
            with self._lock:
                self._close_window()

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Commit the whole fleet: every shard, then the manifest.

        Each shard checkpoint is individually atomic through its own
        write-ahead log; the manifest replace is atomic via
        ``os.replace``.  A crash anywhere leaves each shard at one of
        its own checkpoints and a manifest from before or after — every
        combination :meth:`_reconcile` restores to a consistent fleet.
        """
        with self._lock:
            self._check_writable()
            if self._path is None:
                raise RuntimeError("checkpoint() requires a durable database")
            if self._maintenance_shard is not None:
                raise RuntimeError(
                    f"shard {self._maintenance_shard} is under maintenance; "
                    "checkpoint after the window closes"
                )
            for shard in self._shards:
                if len(shard) > 0 or shard.database.index is not None:
                    shard.checkpoint()
            self._write_manifest()
            self._write_health()

    def _write_manifest(self) -> None:
        manifest = {
            "format": _MANIFEST_FORMAT,
            "epsilon": self._epsilon,
            "reference": self._reference,
            "summarize_seed": self._seed,
            "next_video_id": self._next_video_id,
            "created_shards": self._created_shards,
            "partitioner": self._partitioner.to_dict(),
            "shards": [
                os.path.basename(shard.path) for shard in self._shards
            ],
        }
        blob = json.dumps(manifest).encode("utf-8")
        final_path = os.path.join(self._path, _MANIFEST_FILE)
        tmp_path = final_path + ".tmp"

        def write_blob(data: bytes) -> None:
            with open(tmp_path, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())

        if self._faults is not None:
            self._faults.write(write_blob, blob)
            self._faults.op(lambda: os.replace(tmp_path, final_path))
        else:
            write_blob(blob)
            os.replace(tmp_path, final_path)

    def _write_health(self) -> None:
        """Persist the fleet-health report beside the manifest.

        Advisory observability state, not data: written with a plain
        atomic replace and deliberately *not* routed through the fault
        injector, so adding health persistence does not shift the op
        counts of any crash-point sweep.
        """
        if self._path is None:
            return
        payload = {
            str(shard_id): entry
            for shard_id, entry in self.fleet_health().items()
        }
        final_path = os.path.join(self._path, _HEALTH_FILE)
        tmp_path = final_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp_path, final_path)

    def _restore_health(self) -> None:
        """Load ``health.json`` (if present) into the health registry.

        A persisted open (or half-open) breaker reopens as OPEN with its
        cooldown restarting now, so a shard that was being skipped when
        the fleet went down stays skipped until a probe clears it.  A
        missing or corrupt file is ignored — health is advisory.
        """
        if self._path is None:
            return
        health_path = os.path.join(self._path, _HEALTH_FILE)
        if not os.path.exists(health_path):
            return
        try:
            with open(health_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            entries = {int(key): dict(value) for key, value in payload.items()}
        except (ValueError, OSError):
            return
        self._health.restore(entries, BreakerPolicy())

    def close(self) -> None:
        """Checkpoint (durable, uncrashed fleets), then release every
        shard.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            if self._maintenance_shard is not None:
                raise RuntimeError(
                    f"shard {self._maintenance_shard} is under maintenance; "
                    "close after the window closes"
                )
            crashed = self._faults is not None and self._faults.crashed
            if self._path is not None and not crashed and self._membership:
                self.checkpoint()
            for shard in self._shards:
                shard.close()
            self._closed = True

    def crash(self) -> None:
        """Testing seam: drop every shard's file handles, no checkpoints."""
        with self._lock:
            if self._path is None:
                raise RuntimeError("crash() requires a durable database")
            self._closed = True
            for shard in self._shards:
                shard.crash()

    def __enter__(self) -> "ShardedVideoDatabase":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"ShardedVideoDatabase(videos={len(self)}, "
                f"shards={len(self._shards)}, "
                f"partitioner={self._partitioner.name!r}, "
                f"epsilon={self._epsilon})"
            )
