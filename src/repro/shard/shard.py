"""One shard of a sharded ViTri database.

A :class:`Shard` owns a :class:`~repro.core.database.VideoDatabase`
(durable directory or in-memory) plus the :class:`~repro.core.engine.QueryEngine`
that serves it.  The engine is maintained lazily: before every query the
shard compares the engine's snapshot token against the index's current
:meth:`~repro.core.index.VitriIndex.content_token` and refreshes only
when the shard's content actually changed, so read-heavy fleets pay no
per-query snapshot cost while writes can never be served stale.

The shard also exposes the two pieces of routing metadata the
scatter-gather router prunes with:

* :meth:`key_bounds` — the ``[min, max]`` key interval the shard's
  B+-tree currently covers (cached per content token);
* :meth:`composed_ranges` — a query's composed search ranges *in this
  shard's key space* (each shard fits its own reference point, so the
  same query maps to different key ranges on different shards).

A query whose composed ranges miss the shard's key bounds cannot match
any of its ViTris (the key filter is lossless), so the router skips the
shard entirely.
"""

from __future__ import annotations

import os

from repro.core.composition import compose_ranges
from repro.core.database import VideoDatabase
from repro.core.engine import QueryEngine
from repro.core.index import KNNResult, VitriIndex
from repro.core.vitri import VideoSummary
from repro.shard.resilience import ShardTimeout
from repro.utils.clock import Deadline
from repro.utils.counters import CostCounters

__all__ = ["Shard"]


class Shard:
    """A :class:`VideoDatabase` plus its serving engine, as one fleet member.

    Parameters
    ----------
    shard_id:
        This shard's index in the fleet's shard list (its position in the
        partitioner's output space).
    epsilon, reference, summarize_seed, buffer_capacity, read_latency,
    fault_injector:
        Forwarded to :class:`VideoDatabase`; the router passes the same
        values to every shard so summaries are interchangeable.
    path:
        Shard directory (durable fleet) or ``None`` (in-memory fleet).
    cache_size:
        Result-cache capacity of the shard's query engine.
    range_cache_size:
        Composed-range block-cache capacity of the engine's second tier
        (``0`` disables it; see :class:`~repro.core.range_cache.RangeCache`).
    """

    def __init__(
        self,
        shard_id: int,
        *,
        epsilon: float,
        reference: str = "optimal",
        summarize_seed: int = 0,
        path: str | os.PathLike | None = None,
        buffer_capacity: int = 256,
        read_latency: float = 0.0,
        cache_size: int = 128,
        range_cache_size: int = 0,
        fault_injector=None,
    ) -> None:
        self._shard_id = shard_id
        self._db = VideoDatabase(
            epsilon,
            reference=reference,
            summarize_seed=summarize_seed,
            path=path,
            buffer_capacity=buffer_capacity,
            read_latency=read_latency,
            fault_injector=fault_injector,
        )
        self._buffer_capacity = buffer_capacity
        self._cache_size = cache_size
        self._range_cache_size = range_cache_size
        self._engine: QueryEngine | None = None
        self._engine_index: VitriIndex | None = None
        self._bounds_token: str | None = None
        self._bounds: tuple[float, float] | None = None
        self.queries_served = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shard_id(self) -> int:
        """Position of this shard in the fleet's shard list."""
        return self._shard_id

    def renumber(self, shard_id: int) -> None:
        """Reassign this shard's fleet position (rebalancing inserts a
        shard mid-list, shifting the ones above the split)."""
        self._shard_id = shard_id

    @property
    def database(self) -> VideoDatabase:
        """The underlying database (exposed for tests and tooling)."""
        return self._db

    @property
    def path(self) -> str | None:
        """Backing directory; ``None`` for an in-memory shard."""
        return self._db.path

    @property
    def epsilon(self) -> float:
        """Frame similarity threshold (identical across the fleet)."""
        return self._db.epsilon

    def __len__(self) -> int:
        return len(self._db)

    def video_ids(self) -> set[int]:
        """Ids of the videos this shard owns."""
        return self._db.video_ids()

    def summaries(self) -> list[VideoSummary]:
        """Summaries of the videos this shard owns (heap scan)."""
        return self._db.summaries()

    # ------------------------------------------------------------------
    # Mutation (delegated; the router decides placement)
    # ------------------------------------------------------------------
    def add_summary(self, summary: VideoSummary) -> int:
        """Store one routed summary."""
        return self._db.add_summary(summary)

    def remove(self, video_id: int) -> None:
        """Remove one of this shard's videos."""
        self._db.remove(video_id)

    def adopt_database(self, database: VideoDatabase) -> None:
        """Swap in a freshly reopened database (online-rebuild cutover).

        Drops the serving engine and every cached routing artefact: the
        new generation carries a new content token, so the next query
        rebuilds the engine (and with it the L1 result cache, L2 range
        cache and key-bounds cache) against the new epoch — the
        cache-invalidation half of the atomic cutover.
        """
        if not isinstance(database, VideoDatabase):
            raise TypeError("database must be a VideoDatabase")
        self._db = database
        self._engine = None
        self._engine_index = None
        self._bounds_token = None
        self._bounds = None

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def engine(self) -> QueryEngine:
        """The shard's serving engine over its *current* content.

        Builds the index on first use; re-snapshots the engine only when
        the index's content token moved (insert/remove since the last
        query).  Raises on an empty shard — the router never scatters to
        one.
        """
        if self._db.index is None:
            self._db.build()
        index = self._db.index
        if self._engine is None or self._engine_index is not index:
            self._engine = QueryEngine(
                index,
                buffer_capacity=self._buffer_capacity,
                cache_size=self._cache_size,
                range_cache_size=self._range_cache_size,
            )
            self._engine_index = index
        elif self._engine.snapshot_token != index.content_token():
            self._engine.refresh()
        return self._engine

    def _check_deadline(self, deadline: Deadline | None) -> None:
        """Refuse to start work whose budget is already spent.

        The budget-aware half of the deadline contract: the attempt loop
        (and, over the wire, the shard server) passes the sub-query's
        shared :class:`~repro.utils.clock.Deadline`, and an expired one
        raises :class:`ShardTimeout` *before* any page is read — the
        shard never computes an answer nobody is waiting for.
        """
        if deadline is not None and deadline.expired():
            raise ShardTimeout(
                f"shard {self._shard_id} budget spent "
                f"{-deadline.remaining():.6f}s ago; refusing to start"
            )

    def knn(
        self,
        query: VideoSummary,
        k: int,
        *,
        method: str = "composed",
        cold: bool = False,
        out_counters: CostCounters | None = None,
        deadline: Deadline | None = None,
    ) -> KNNResult:
        """This shard's local top-``k`` for the query (engine-served)."""
        self._check_deadline(deadline)
        result = self.engine().knn(
            query, k, method=method, cold=cold, out_counters=out_counters
        )
        self.queries_served += 1
        return result

    def similarity_range(
        self,
        query: VideoSummary,
        min_similarity: float,
        *,
        method: str = "composed",
        cold: bool = False,
        out_counters: CostCounters | None = None,
        deadline: Deadline | None = None,
    ) -> KNNResult:
        """This shard's videos scoring at least ``min_similarity``."""
        self._check_deadline(deadline)
        if self._db.index is None:
            self._db.build()
        result = self._db.index.similarity_range(
            query,
            min_similarity,
            method=method,
            cold=cold,
            out_counters=out_counters,
        )
        self.queries_served += 1
        return result

    # ------------------------------------------------------------------
    # Routing metadata (what the router prunes with)
    # ------------------------------------------------------------------
    def key_bounds(
        self, *, counters: CostCounters | None = None
    ) -> tuple[float, float] | None:
        """``(min_key, max_key)`` of this shard's B+-tree, or ``None``
        when the shard holds no ViTris.

        Cached per content token: computing the bounds costs a handful of
        page reads (charged to ``counters``), repeat queries against
        unchanged content get them for free.
        """
        if self._db.index is None:
            if len(self._db) == 0:
                return None
            self._db.build()
        index = self._db.index
        token = index.content_token()
        if token != self._bounds_token:
            self._bounds = index.btree.key_bounds(counters=counters)
            self._bounds_token = token
        return self._bounds

    def composed_ranges(
        self, query: VideoSummary
    ) -> list[tuple[float, float]]:
        """The query's composed search ranges in *this shard's* key space.

        Mirrors the index's own range derivation: per query ViTri the
        lossless interval ``[key - gamma, key + gamma]`` with
        ``gamma = R^Q + eps/2``, clamped at zero, then composed.
        """
        if self._db.index is None:
            self._db.build()
        transform = self._db.index.transform
        epsilon = self._db.epsilon
        per_vitri = []
        for vitri in query.vitris:
            gamma = vitri.radius + epsilon / 2.0
            key = transform.key(vitri.position)
            per_vitri.append((max(key - gamma, 0.0), key + gamma))
        return compose_ranges(per_vitri)

    def may_contain(
        self, query: VideoSummary, *, counters: CostCounters | None = None
    ) -> bool:
        """Whether any of the query's ranges overlaps this shard's keys.

        ``False`` is a *proof* of zero-similarity (the key filter is
        lossless), so the router can skip the shard without changing any
        ranking.
        """
        bounds = self.key_bounds(counters=counters)
        if bounds is None:
            return False
        low, high = bounds
        return any(
            range_high >= low and range_low <= high
            for range_low, range_high in self.composed_ranges(query)
        )

    # ------------------------------------------------------------------
    # Durability (delegated)
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Atomically commit this shard's changes (durable shards)."""
        self._db.checkpoint()

    def close(self) -> None:
        """Checkpoint (if durable and not crashed) and release files."""
        self._db.close()

    def crash(self) -> None:
        """Testing seam: drop file handles without checkpointing."""
        self._db.crash()

    def __repr__(self) -> str:
        return (
            f"Shard(id={self._shard_id}, videos={len(self)}, "
            f"path={self.path!r})"
        )
