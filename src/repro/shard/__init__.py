"""Sharded ViTri database: partitioners, shards, scatter-gather router."""

from __future__ import annotations

from repro.shard.partitioner import (
    HashPartitioner,
    KeyRangePartitioner,
    Partitioner,
    make_partitioner,
    partitioner_from_dict,
)
from repro.shard.router import (
    ScatterStats,
    ShardedBatchResult,
    ShardedKNNResult,
    ShardedServingMetrics,
    ShardedVideoDatabase,
)
from repro.shard.shard import Shard

__all__ = [
    "HashPartitioner",
    "KeyRangePartitioner",
    "Partitioner",
    "ScatterStats",
    "Shard",
    "ShardedBatchResult",
    "ShardedKNNResult",
    "ShardedServingMetrics",
    "ShardedVideoDatabase",
    "make_partitioner",
    "partitioner_from_dict",
]
