"""Sharded ViTri database: partitioners, shards, scatter-gather router,
and the fault-tolerance layer (policies, breakers, fault injection)."""

from __future__ import annotations

from repro.shard.faults import (
    FaultInjectingShard,
    ShardFault,
    ShardFaultInjector,
)
from repro.shard.partitioner import (
    HashPartitioner,
    KeyRangePartitioner,
    Partitioner,
    make_partitioner,
    partitioner_from_dict,
)
from repro.shard.resilience import (
    BreakerPolicy,
    CircuitBreaker,
    Coverage,
    FaultPolicy,
    FleetHealth,
    HealthStats,
    HedgePolicy,
    InjectedShardError,
    RetryPolicy,
    ScatterError,
    ShardDown,
    ShardTimeout,
)
from repro.shard.router import (
    ScatterStats,
    ShardedBatchResult,
    ShardedKNNResult,
    ShardedServingMetrics,
    ShardedVideoDatabase,
)
from repro.shard.shard import Shard

__all__ = [
    "BreakerPolicy",
    "CircuitBreaker",
    "Coverage",
    "FaultInjectingShard",
    "FaultPolicy",
    "FleetHealth",
    "HashPartitioner",
    "HealthStats",
    "HedgePolicy",
    "InjectedShardError",
    "KeyRangePartitioner",
    "Partitioner",
    "RetryPolicy",
    "ScatterError",
    "ScatterStats",
    "Shard",
    "ShardDown",
    "ShardFault",
    "ShardFaultInjector",
    "ShardTimeout",
    "ShardedBatchResult",
    "ShardedKNNResult",
    "ShardedServingMetrics",
    "ShardedVideoDatabase",
    "make_partitioner",
    "partitioner_from_dict",
]
