"""Deterministic shard-level fault injection.

The storage layer's :class:`~repro.storage.faults.FaultInjector` crashes
a database at the *page* level; this module does the same one layer up,
at the *shard serving* level, so the scatter-gather resilience path can
be exercised end to end.  The design mirrors PR 2's injector: faults are
scheduled by **operation count**, never by wall clock or RNG state, so a
fault sweep is exactly reproducible run-to-run and under any thread
interleaving.

* :class:`ShardFault` — one scripted fault window: on query operations
  ``first_op..last_op`` (1-based, inclusive; ``last_op=None`` = forever)
  the shard responds slowly (``slow``), raises a retryable
  :class:`~repro.shard.resilience.InjectedShardError` (``error``), or is
  hard-down, raising :class:`~repro.shard.resilience.ShardDown`
  (``down``).
* :class:`ShardFaultInjector` — the per-fleet schedule: a map from shard
  id to a list of fault windows, with a thread-safe per-shard operation
  counter.  Only *serving* operations (``knn`` / ``similarity_range``)
  tick the counter; routing metadata (``key_bounds``, ``may_contain``)
  stays fault-free so pruning decisions don't drift with the schedule.
* :class:`FaultInjectingShard` — a transparent :class:`Shard` proxy that
  consults the injector before delegating each query.

Delays are injected through the router's :class:`~repro.utils.clock.Clock`
(``clock.sleep``), so under a ``VirtualClock`` a "slow" shard costs zero
real time but still trips deadlines, hedges, and breakers exactly as it
would in production.  A slow fault is also *budget-aware*: after
sleeping its injected delay it re-checks the attempt's
:class:`~repro.utils.clock.Deadline` and raises
:class:`~repro.shard.resilience.ShardTimeout` if the budget is now
spent, so a doomed attempt never reaches the real shard — exactly the
behaviour of a remote shard server whose client stopped waiting.

Process boundaries
------------------
All injector state — the fault schedule *and* the per-shard op counters
— lives in whichever process constructed it; nothing here survives a
``fork``/``spawn`` implicitly.  To fault a subprocess shard server, ship
the schedule over the seam instead: :meth:`ShardFault.to_dict` /
:meth:`ShardFault.from_dict` round-trip a schedule through JSON, the
server rebuilds its own :class:`ShardFaultInjector` (op counters start
at zero *in that process* — by design, since the server's op stream is
what the schedule scripts) and installs it with its own clock
(``repro.serve.shard_server --clock virtual``).  The router-side
injector and a server-side injector never share counters.
"""

from __future__ import annotations

import threading

from repro.shard.resilience import InjectedShardError, ShardDown, ShardTimeout
from repro.shard.shard import Shard
from repro.utils.clock import Clock, Deadline, SystemClock

__all__ = ["FaultInjectingShard", "ShardFault", "ShardFaultInjector"]

_FAULT_KINDS = ("slow", "error", "down")


class ShardFault:
    """One scripted fault window on a shard's serving operations.

    Parameters
    ----------
    kind:
        ``"slow"`` (inject ``delay`` seconds of clock latency, then serve
        normally), ``"error"`` (raise a retryable
        :class:`InjectedShardError`), or ``"down"`` (raise
        :class:`ShardDown`).
    first_op, last_op:
        The window of 1-based query-operation counts the fault covers,
        inclusive.  ``last_op=None`` means the fault never heals.
    delay:
        Injected latency in clock seconds (``slow`` faults only).
    """

    def __init__(
        self,
        kind: str,
        *,
        first_op: int = 1,
        last_op: int | None = None,
        delay: float = 0.0,
    ) -> None:
        if kind not in _FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; expected one of {_FAULT_KINDS}"
            )
        if not isinstance(first_op, int) or isinstance(first_op, bool) or first_op < 1:
            raise ValueError(f"first_op must be an int >= 1, got {first_op}")
        if last_op is not None and (
            not isinstance(last_op, int)
            or isinstance(last_op, bool)
            or last_op < first_op
        ):
            raise ValueError(
                f"last_op must be None or an int >= first_op, got {last_op}"
            )
        delay = float(delay)
        if delay < 0.0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        if kind == "slow" and delay <= 0.0:
            raise ValueError("slow faults need a positive delay")
        self.kind = kind
        self.first_op = first_op
        self.last_op = last_op
        self.delay = delay

    # Convenience constructors for the three scenarios the fault sweep
    # exercises; keyword-only so call sites read as scenario names.
    @classmethod
    def slow(
        cls, delay: float, *, first_op: int = 1, last_op: int | None = None
    ) -> "ShardFault":
        """A straggler: every covered op takes ``delay`` extra seconds."""
        return cls("slow", first_op=first_op, last_op=last_op, delay=delay)

    @classmethod
    def transient(cls, *, first_op: int = 1, errors: int = 1) -> "ShardFault":
        """``errors`` consecutive retryable failures, then heal."""
        if not isinstance(errors, int) or isinstance(errors, bool) or errors < 1:
            raise ValueError(f"errors must be an int >= 1, got {errors}")
        return cls("error", first_op=first_op, last_op=first_op + errors - 1)

    @classmethod
    def hard_down(cls, *, first_op: int = 1) -> "ShardFault":
        """The shard is gone from ``first_op`` onward; it never heals."""
        return cls("down", first_op=first_op, last_op=None)

    def covers(self, op: int) -> bool:
        """Whether 1-based operation ``op`` falls inside this window."""
        if op < self.first_op:
            return False
        return self.last_op is None or op <= self.last_op

    def to_dict(self) -> dict:
        """JSON-friendly form (the subprocess shard-server seam)."""
        return {
            "kind": self.kind,
            "first_op": self.first_op,
            "last_op": self.last_op,
            "delay": self.delay,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardFault":
        """Rebuild a fault shipped through :meth:`to_dict` (validated)."""
        return cls(
            str(payload["kind"]),
            first_op=int(payload.get("first_op", 1)),
            last_op=(
                None
                if payload.get("last_op") is None
                else int(payload["last_op"])
            ),
            delay=float(payload.get("delay", 0.0)),
        )

    def __repr__(self) -> str:
        window = f"{self.first_op}..{self.last_op if self.last_op is not None else 'inf'}"
        extra = f", delay={self.delay}" if self.kind == "slow" else ""
        return f"ShardFault({self.kind!r}, ops {window}{extra})"


class ShardFaultInjector:
    """A deterministic per-fleet fault schedule, keyed by shard id.

    Each shard's *serving* operations (knn / similarity_range attempts,
    including retries and hedges — every attempt is one op) tick a
    thread-safe counter; the first scheduled fault window covering the
    current count fires.  Shards without an entry serve normally.
    """

    def __init__(self, schedule: dict[int, list[ShardFault]]) -> None:
        validated: dict[int, tuple[ShardFault, ...]] = {}
        for shard_id, faults in schedule.items():
            for fault in faults:
                if not isinstance(fault, ShardFault):
                    raise TypeError(
                        f"schedule for shard {shard_id} contains {fault!r}; "
                        "expected ShardFault instances"
                    )
            validated[int(shard_id)] = tuple(faults)
        self._schedule = validated
        self._lock = threading.Lock()
        self._ops: dict[int, int] = {}

    def operations(self, shard_id: int) -> int:
        """How many serving operations the shard has seen so far."""
        with self._lock:
            return self._ops.get(shard_id, 0)

    def on_query(
        self,
        shard_id: int,
        clock: Clock,
        *,
        deadline: Deadline | None = None,
    ) -> None:
        """Tick the shard's op counter and fire any covering fault.

        Called by :class:`FaultInjectingShard` immediately before each
        serving attempt is delegated.  Raising here means the attempt
        never reaches the real shard, so the real shard's state (engine
        cache, ``queries_served``) is untouched by injected failures.

        A slow fault honours the attempt's deadline: after sleeping the
        injected delay it raises :class:`ShardTimeout` if the budget is
        now spent, so the delegated work — the expensive part — never
        runs for a caller that has already given up.
        """
        with self._lock:
            op = self._ops.get(shard_id, 0) + 1
            self._ops[shard_id] = op
        for fault in self._schedule.get(shard_id, ()):
            if not fault.covers(op):
                continue
            if fault.kind == "slow":
                clock.sleep(fault.delay)
                if deadline is not None and deadline.expired():
                    raise ShardTimeout(
                        f"injected {fault.delay:.6f}s delay on shard "
                        f"{shard_id} (op {op}) spent the attempt's budget"
                    )
                return
            if fault.kind == "error":
                raise InjectedShardError(
                    f"injected transient error on shard {shard_id} (op {op})"
                )
            raise ShardDown(
                f"injected hard-down on shard {shard_id} (op {op})"
            )

    def to_dict(self) -> dict:
        """The schedule in JSON-friendly form (op counters excluded:
        they are per-process runtime state, not configuration)."""
        return {
            str(shard_id): [fault.to_dict() for fault in faults]
            for shard_id, faults in sorted(self._schedule.items())
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardFaultInjector":
        """Rebuild a schedule shipped through :meth:`to_dict`.

        The new injector's op counters start at zero — the receiving
        process (typically a subprocess shard server) counts its *own*
        serving operations, which is what the schedule scripts.
        """
        return cls(
            {
                int(shard_id): [
                    ShardFault.from_dict(entry) for entry in faults
                ]
                for shard_id, faults in payload.items()
            }
        )

    def __repr__(self) -> str:
        return f"ShardFaultInjector(shards={sorted(self._schedule)})"


class FaultInjectingShard:
    """A :class:`Shard` proxy that runs the fault schedule before serving.

    Only ``knn`` and ``similarity_range`` are intercepted; everything
    else (routing metadata, mutation, durability) delegates untouched via
    ``__getattr__``.  The proxy is transparent enough that the router
    never needs to know whether a fleet is faulted.
    """

    def __init__(
        self,
        shard: Shard,
        injector: ShardFaultInjector,
        *,
        clock: Clock | None = None,
    ) -> None:
        if isinstance(shard, FaultInjectingShard):
            raise TypeError("shard is already fault-injecting; do not nest")
        self._shard = shard
        self._injector = injector
        self._clock = clock if clock is not None else SystemClock()

    @property
    def inner(self) -> Shard:
        """The wrapped shard (exposed for tests and unwrapping)."""
        return self._shard

    def knn(self, query, k, **kwargs):
        self._injector.on_query(
            self._shard.shard_id, self._clock, deadline=kwargs.get("deadline")
        )
        return self._shard.knn(query, k, **kwargs)

    def similarity_range(self, query, min_similarity, **kwargs):
        self._injector.on_query(
            self._shard.shard_id, self._clock, deadline=kwargs.get("deadline")
        )
        return self._shard.similarity_range(query, min_similarity, **kwargs)

    # ``len(proxy)`` must work (dunders bypass __getattr__).
    def __len__(self) -> int:
        return len(self._shard)

    def __getattr__(self, name: str):
        return getattr(self._shard, name)

    def __repr__(self) -> str:
        return f"FaultInjectingShard({self._shard!r})"
