"""Partitioning strategies: which shard owns a video.

A sharded ViTri database places every *video* (all of its ViTris) on
exactly one shard, so per-video similarity scores are computed entirely
shard-locally and a global top-k is an exact merge of per-shard top-ks.
The :class:`Partitioner` decides the placement from the video's summary —
pluggable behind one interface, exactly like
:class:`~repro.core.reference.ReferenceStrategy`:

* :class:`HashPartitioner` — a deterministic integer mix of the video id.
  Spreads any workload evenly; placement carries no geometric meaning.
* :class:`KeyRangePartitioner` — splits the one-dimensional *routing key*
  space (the paper's transformed-key idea applied at fleet level: the
  mean distance of a video's ViTri positions to a fixed routing
  reference point).  Videos that are close in feature space land on the
  same shard, so a query's key ranges usually touch few shards and the
  router can prune the rest before scattering — the same role the
  per-reference-point partitions play in iDistance.

Partitioners serialise to plain dicts (:meth:`Partitioner.to_dict` /
:func:`partitioner_from_dict`) so the fleet manifest can reopen a
database with the exact placement function it was written with.
"""

from __future__ import annotations

import abc
from bisect import bisect_right

import numpy as np

from repro.core.vitri import VideoSummary
from repro.utils.validation import check_shard_count

__all__ = [
    "HashPartitioner",
    "KeyRangePartitioner",
    "Partitioner",
    "make_partitioner",
    "partitioner_from_dict",
]


class Partitioner(abc.ABC):
    """Strategy interface: map a video summary to a shard index."""

    @property
    @abc.abstractmethod
    def num_shards(self) -> int:
        """Number of shards this partitioner routes across."""

    @abc.abstractmethod
    def shard_for(self, summary: VideoSummary) -> int:
        """Shard index in ``[0, num_shards)`` owning this video."""

    @abc.abstractmethod
    def to_dict(self) -> dict:
        """JSON-serialisable form (inverse of :func:`partitioner_from_dict`)."""

    @property
    def name(self) -> str:
        """Short identifier used in manifests and benchmark tables."""
        return type(self).__name__


def _mix64(value: int) -> int:
    """SplitMix64 finaliser: a deterministic, well-spread integer hash.

    Explicit rather than built-in ``hash`` so the placement is stable
    across processes and interpreter versions (placement is persisted in
    the fleet manifest and must mean the same thing on reopen).
    """
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


class HashPartitioner(Partitioner):
    """Deterministic hash of the video id, modulo the shard count."""

    def __init__(self, num_shards: int) -> None:
        self._num_shards = check_shard_count(num_shards)

    @property
    def num_shards(self) -> int:
        return self._num_shards

    def shard_for(self, summary: VideoSummary) -> int:
        if not isinstance(summary, VideoSummary):
            raise TypeError("summary must be a VideoSummary")
        return _mix64(summary.video_id) % self._num_shards

    def to_dict(self) -> dict:
        return {"kind": "hash", "num_shards": self._num_shards}

    @property
    def name(self) -> str:
        return "hash"


class KeyRangePartitioner(Partitioner):
    """Contiguous routing-key ranges, one per shard.

    The *routing key* of a video is the mean distance of its ViTri
    positions to a fixed routing reference point (the origin by
    default) — a transform every shard and the router agree on without
    fitting anything, unlike the per-shard index transforms whose
    reference points are fitted to each shard's own data.

    ``boundaries`` is an ascending list of ``num_shards - 1`` split
    points: shard ``i`` owns keys in ``[boundaries[i-1], boundaries[i])``
    with open ends at the extremes.

    Build one with :meth:`fit` (quantile boundaries over a sample of
    summaries — balanced shards), :meth:`uniform` (evenly spaced
    boundaries over a key interval), or directly from boundaries.
    """

    def __init__(
        self,
        boundaries: list[float],
        *,
        reference_point: np.ndarray | None = None,
    ) -> None:
        self._boundaries = [float(b) for b in boundaries]
        if any(not np.isfinite(b) for b in self._boundaries):
            raise ValueError("boundaries must be finite")
        if any(
            later < earlier
            for earlier, later in zip(self._boundaries, self._boundaries[1:])
        ):
            raise ValueError(
                f"boundaries must be non-decreasing, got {self._boundaries}"
            )
        check_shard_count(len(self._boundaries) + 1)
        self._reference_point = (
            None
            if reference_point is None
            else np.asarray(reference_point, dtype=np.float64)
        )

    @classmethod
    def fit(
        cls,
        summaries: list[VideoSummary],
        num_shards: int,
        *,
        reference_point: np.ndarray | None = None,
    ) -> "KeyRangePartitioner":
        """Quantile boundaries over the summaries' routing keys."""
        check_shard_count(num_shards)
        if not summaries:
            raise ValueError("cannot fit a partitioner on zero summaries")
        probe = cls([], reference_point=reference_point)
        keys = np.sort(
            np.array([probe.routing_key(summary) for summary in summaries])
        )
        fractions = np.arange(1, num_shards) / num_shards
        boundaries = np.quantile(keys, fractions)
        return cls(list(boundaries), reference_point=reference_point)

    @classmethod
    def uniform(
        cls,
        num_shards: int,
        *,
        low: float = 0.0,
        high: float = 1.0,
        reference_point: np.ndarray | None = None,
    ) -> "KeyRangePartitioner":
        """Evenly spaced boundaries over ``[low, high]``.

        The default interval suits normalised histogram features: ViTri
        positions then lie in the unit simplex, whose distance to the
        origin is at most 1.
        """
        check_shard_count(num_shards)
        if not (np.isfinite(low) and np.isfinite(high)) or high <= low:
            raise ValueError(
                f"need finite low < high, got low={low}, high={high}"
            )
        step = (high - low) / num_shards
        boundaries = [low + step * i for i in range(1, num_shards)]
        return cls(boundaries, reference_point=reference_point)

    @property
    def num_shards(self) -> int:
        return len(self._boundaries) + 1

    @property
    def boundaries(self) -> tuple[float, ...]:
        """The split points (ascending)."""
        return tuple(self._boundaries)

    def routing_key(self, summary: VideoSummary) -> float:
        """Mean distance of the summary's ViTri positions to the routing
        reference point."""
        if not isinstance(summary, VideoSummary):
            raise TypeError("summary must be a VideoSummary")
        positions = summary.positions()
        reference = self._reference_point
        if reference is None:
            reference = np.zeros(positions.shape[1])
        elif reference.shape[0] != positions.shape[1]:
            raise ValueError(
                f"routing reference point has dimension {reference.shape[0]},"
                f" summary has {positions.shape[1]}"
            )
        difference = positions - reference
        return float(np.sqrt(np.sum(difference * difference, axis=1)).mean())

    def shard_for(self, summary: VideoSummary) -> int:
        return bisect_right(self._boundaries, self.routing_key(summary))

    def split(self, shard_index: int, at: float) -> "KeyRangePartitioner":
        """Return a new partitioner with shard ``shard_index`` split at
        key ``at`` — the new shard takes the keys *above* ``at`` and is
        numbered ``shard_index + 1`` (higher shards shift up by one)."""
        if not 0 <= shard_index < self.num_shards:
            raise ValueError(
                f"shard_index must be in [0, {self.num_shards}), "
                f"got {shard_index}"
            )
        at = float(at)
        if not np.isfinite(at):
            raise ValueError(f"split point must be finite, got {at}")
        low = -np.inf if shard_index == 0 else self._boundaries[shard_index - 1]
        high = (
            np.inf
            if shard_index == self.num_shards - 1
            else self._boundaries[shard_index]
        )
        if not low <= at <= high:
            raise ValueError(
                f"split point {at} outside shard {shard_index}'s key range "
                f"({low}, {high}]"
            )
        boundaries = list(self._boundaries)
        boundaries.insert(shard_index, at)
        return KeyRangePartitioner(
            boundaries, reference_point=self._reference_point
        )

    def to_dict(self) -> dict:
        return {
            "kind": "key_range",
            "boundaries": list(self._boundaries),
            "reference_point": (
                None
                if self._reference_point is None
                else self._reference_point.tolist()
            ),
        }

    @property
    def name(self) -> str:
        return "key_range"


def make_partitioner(kind: str, num_shards: int, **kwargs) -> Partitioner:
    """Factory over the partitioner strategies by name.

    Parameters
    ----------
    kind:
        ``"hash"`` or ``"key_range"`` (uniform boundaries; fit one with
        :meth:`KeyRangePartitioner.fit` for balanced shards).
    num_shards:
        Number of shards to route across.
    kwargs:
        Forwarded to the strategy constructor.
    """
    num_shards = check_shard_count(num_shards)
    if kind == "hash":
        return HashPartitioner(num_shards, **kwargs)
    if kind == "key_range":
        return KeyRangePartitioner.uniform(num_shards, **kwargs)
    raise ValueError(
        f"unknown partitioner kind {kind!r}; expected 'hash' or 'key_range'"
    )


def partitioner_from_dict(data: dict) -> Partitioner:
    """Rebuild a partitioner from :meth:`Partitioner.to_dict` output."""
    kind = data.get("kind")
    if kind == "hash":
        return HashPartitioner(int(data["num_shards"]))
    if kind == "key_range":
        reference = data.get("reference_point")
        return KeyRangePartitioner(
            [float(b) for b in data["boundaries"]],
            reference_point=(
                None if reference is None else np.asarray(reference)
            ),
        )
    raise ValueError(f"unknown partitioner kind {kind!r} in manifest")
