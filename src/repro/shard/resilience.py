"""Fault tolerance for the scatter-gather query path.

The plain router treats the fleet as all-or-nothing: one slow or failing
shard fails the whole query.  This module supplies the policies and state
machines that let :class:`~repro.shard.router.ShardedVideoDatabase`
survive partial failure instead:

* :class:`RetryPolicy` — bounded attempts with deterministic exponential
  backoff.  Jitter comes from a seeded hash of ``(seed, shard, attempt)``,
  not a wall-clock RNG, so the same seed always produces the same backoff
  schedule (the property ``tests/test_shard_resilience.py`` asserts).
* Per-shard **deadlines** — ``FaultPolicy.deadline`` is the *total*
  clock-time budget for resolving one shard's sub-query: attempts,
  backoff sleeps and hedges all draw from one
  :class:`~repro.utils.clock.Deadline`.  The budget is enforced
  *before* work happens: budget-aware work (``Shard.knn``'s
  ``deadline=`` seam, the fault injector's post-sleep check, a remote
  shard server) raises :class:`ShardTimeout` instead of computing an
  answer nobody is waiting for, and :func:`run_attempts` skips retries
  whose budget is already spent rather than running them and
  discarding the result.  A discarded attempt's cost bundle is *not*
  folded into the query's stats, so retries can never double-count
  :class:`~repro.utils.counters.CostCounters`.
* :class:`HedgePolicy` — when an attempt's latency crosses the shard's
  recent latency percentile, a backup attempt is launched and the faster
  of the two wins; the loser's bundle is discarded into the shard's
  ``wasted`` tally.
* :class:`CircuitBreaker` — per-shard closed/open/half-open state machine
  with a failure-rate window, a cooldown, and a probe budget.  An open
  breaker fails the shard fast (disposition ``tripped``) instead of
  burning a full retry schedule on every query.
* :class:`Coverage` — the degraded-results protocol.  In degraded mode
  (``fail_fast=False``) the router returns whatever the surviving shards
  answered plus a coverage report saying exactly which shards were
  answered, pruned, timed out, tripped or failed — and therefore whether
  the merged top-k is provably complete.  Key-bounds pruning keeps its
  losslessness: a pruned shard provably contributes nothing, so pruning
  never makes a result incomplete.

Everything here is deterministic by construction: no ``time`` module, no
``random`` module (enforced by the ``injected-clock`` vilint rule) — time
comes from the injected clock, jitter from the seeded hash.
"""

from __future__ import annotations

import hashlib
import inspect
import math
import struct
from collections import deque
from dataclasses import dataclass, field

from repro.storage.faults import SimulatedCrash
from repro.utils.clock import Clock, Deadline
from repro.utils.counters import CostCounters
from repro.utils.locks import make_lock
from repro.utils.stats import percentile

__all__ = [
    "ANSWERED",
    "FAILED",
    "TIMED_OUT",
    "TRIPPED",
    "AttemptOutcome",
    "BreakerPolicy",
    "CircuitBreaker",
    "Coverage",
    "FaultPolicy",
    "FleetHealth",
    "HealthStats",
    "HedgePolicy",
    "InjectedShardError",
    "RetryPolicy",
    "ScatterError",
    "ShardDown",
    "ShardTimeout",
    "run_attempts",
]

_JITTER = struct.Struct("<qqq")


# ---------------------------------------------------------------------------
# Errors
# ---------------------------------------------------------------------------
class ShardTimeout(RuntimeError):
    """A shard sub-query ran out of its clock-time budget."""


class ShardDown(RuntimeError):
    """A shard is unavailable (hard-down injection or an open breaker)."""


class InjectedShardError(RuntimeError):
    """A scripted transient error from a :class:`ShardFaultInjector`."""


class ScatterError(RuntimeError):
    """All of a scatter's worker errors, with per-shard attribution.

    The headline (first line of ``str(exc)``) is the first failing
    shard's error message — what ``raise errors[0]`` used to surface —
    followed by one attributed line per failed shard, so no worker error
    is ever discarded.  The raw exceptions are kept in :attr:`failures`.
    """

    def __init__(self, failures: dict[int, BaseException]) -> None:
        if not failures:
            raise ValueError("ScatterError needs at least one failure")
        self.failures = dict(failures)
        ordered = sorted(self.failures.items())
        first = ordered[0][1]
        lines = [str(first)]
        for shard_id, error in ordered:
            lines.append(
                f"  shard {shard_id}: {type(error).__name__}: {error}"
            )
        super().__init__("\n".join(lines))
        self.__cause__ = first


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------
def _check_fraction(value: float, name: str) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def _check_positive_number(value, name: str) -> float:
    value = float(value)
    if not math.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be a positive finite number, got {value}")
    return value


def _check_count(value, name: str, minimum: int = 1) -> int:
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise ValueError(f"{name} must be an int >= {minimum}, got {value}")
    return value


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff + jitter.

    Parameters
    ----------
    max_attempts:
        Total attempts per shard per query (1 = no retries).
    base_backoff:
        Sleep before the first retry, in clock seconds.
    multiplier:
        Exponential growth factor between retries.
    max_backoff:
        Cap on any single backoff sleep.
    jitter:
        Fraction of the nominal backoff that the seeded jitter may move
        it by (``0.5`` means each sleep lands in ``[0.5x, 1.5x]``).
    seed:
        Jitter seed.  The jitter for retry ``i`` on shard ``s`` is a pure
        hash of ``(seed, s, i)``, so schedules are reproducible and
        independent of call order or threading.
    """

    max_attempts: int = 3
    base_backoff: float = 0.01
    multiplier: float = 2.0
    max_backoff: float = 1.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        _check_count(self.max_attempts, "max_attempts")
        _check_positive_number(self.base_backoff, "base_backoff")
        _check_positive_number(self.multiplier, "multiplier")
        _check_positive_number(self.max_backoff, "max_backoff")
        _check_fraction(self.jitter, "jitter")

    def backoff(self, shard_id: int, retry_index: int) -> float:
        """Backoff before retry ``retry_index`` (1-based) on a shard."""
        _check_count(retry_index, "retry_index")
        nominal = min(
            self.base_backoff * self.multiplier ** (retry_index - 1),
            self.max_backoff,
        )
        packed = _JITTER.pack(self.seed, shard_id, retry_index)
        digest = hashlib.blake2b(packed, digest_size=8).digest()
        fraction = int.from_bytes(digest, "little") / 2.0**64
        # fraction in [0, 1) -> multiplier in [1 - jitter, 1 + jitter).
        return nominal * (1.0 + self.jitter * (2.0 * fraction - 1.0))

    def schedule(self, shard_id: int) -> tuple[float, ...]:
        """The full backoff schedule a shard would see (for tests/docs)."""
        return tuple(
            self.backoff(shard_id, i) for i in range(1, self.max_attempts)
        )


@dataclass(frozen=True)
class HedgePolicy:
    """When to launch a backup attempt against a slow shard.

    A hedge fires when an attempt's latency reaches the shard's recent
    latency ``percentile`` (needs ``min_samples`` observations to arm) or
    the absolute ``after`` threshold when one is given.  The faster of
    the primary and the backup wins; the loser's cost is discarded into
    the shard's ``wasted`` tally.
    """

    after: float | None = None
    percentile: float = 0.95
    min_samples: int = 8

    def __post_init__(self) -> None:
        if self.after is not None:
            _check_positive_number(self.after, "after")
        _check_fraction(self.percentile, "percentile")
        _check_count(self.min_samples, "min_samples")

    def threshold(self, latencies) -> float:
        """Latency at which a hedge fires; ``inf`` while unarmed."""
        if self.after is not None:
            return self.after
        history = sorted(latencies)
        if len(history) < self.min_samples:
            return math.inf
        return percentile(history, self.percentile)


@dataclass(frozen=True)
class BreakerPolicy:
    """Circuit-breaker tuning.

    The breaker opens when, over the last ``window`` attempt outcomes
    (and at least ``min_volume`` of them), the failure fraction reaches
    ``failure_rate``.  After ``cooldown`` clock seconds it half-opens and
    admits up to ``probe_budget`` probe attempts; that many consecutive
    probe successes close it, any probe failure re-opens it.
    """

    failure_rate: float = 0.5
    window: int = 8
    min_volume: int = 4
    cooldown: float = 1.0
    probe_budget: int = 1

    def __post_init__(self) -> None:
        _check_fraction(self.failure_rate, "failure_rate")
        if self.failure_rate <= 0.0:
            raise ValueError("failure_rate must be > 0")
        _check_count(self.window, "window")
        _check_count(self.min_volume, "min_volume")
        if self.min_volume > self.window:
            raise ValueError(
                f"min_volume ({self.min_volume}) cannot exceed the window "
                f"({self.window})"
            )
        _check_positive_number(self.cooldown, "cooldown")
        _check_count(self.probe_budget, "probe_budget")


@dataclass(frozen=True)
class FaultPolicy:
    """Everything the resilient scatter path needs, in one bundle.

    ``deadline`` is the shard sub-query's **total** clock-time budget in
    seconds (``None`` = unbounded): every attempt, backoff sleep and
    hedge for that shard draws from the same budget, and an attempt
    whose budget is already spent is skipped, not run.  ``retryable``
    lists the exception types a retry may fix; anything else (a
    ``TypeError`` from a malformed query, say) propagates immediately —
    retrying a bug is not resilience.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    hedge: HedgePolicy | None = None
    deadline: float | None = None
    retryable: tuple = (
        ShardTimeout,
        ShardDown,
        InjectedShardError,
        SimulatedCrash,
        OSError,
    )

    def __post_init__(self) -> None:
        if not isinstance(self.retry, RetryPolicy):
            raise TypeError("retry must be a RetryPolicy")
        if not isinstance(self.breaker, BreakerPolicy):
            raise TypeError("breaker must be a BreakerPolicy")
        if self.hedge is not None and not isinstance(self.hedge, HedgePolicy):
            raise TypeError("hedge must be a HedgePolicy or None")
        if self.deadline is not None:
            _check_positive_number(self.deadline, "deadline")


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------
class CircuitBreaker:
    """Per-shard closed/open/half-open breaker.

    State machine::

        CLOSED --(failure rate >= threshold over window)--> OPEN
        OPEN --(cooldown elapsed)--> HALF_OPEN
        HALF_OPEN --(probe_budget successes)--> CLOSED
        HALF_OPEN --(any probe failure)--> OPEN

    All transitions are driven by the injected clock, so breaker
    behaviour in tests is exactly reproducible.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, policy: BreakerPolicy) -> None:
        if not isinstance(policy, BreakerPolicy):
            raise TypeError("policy must be a BreakerPolicy")
        self.policy = policy
        self._lock = make_lock("CircuitBreaker._lock")
        self._state = self.CLOSED
        self._window: deque[bool] = deque(maxlen=policy.window)
        self._opened_at = 0.0
        self._probes_issued = 0
        self._probes_succeeded = 0
        self.opens = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def _open(self, now: float) -> None:
        self._state = self.OPEN
        self._opened_at = now
        self._probes_issued = 0
        self._probes_succeeded = 0
        self.opens += 1

    def force_open(self, now: float) -> None:
        """Restore an OPEN state (reopening a persisted fleet)."""
        with self._lock:
            if self._state != self.OPEN:
                self._open(now)

    def allow(self, now: float) -> bool:
        """Whether a request may be dispatched to the shard right now."""
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if now - self._opened_at < self.policy.cooldown:
                    return False
                self._state = self.HALF_OPEN
                self._probes_issued = 0
                self._probes_succeeded = 0
            # HALF_OPEN: admit up to probe_budget in-flight probes.
            if self._probes_issued < self.policy.probe_budget:
                self._probes_issued += 1
                return True
            return False

    def record(self, success: bool, now: float) -> None:
        """Fold one attempt outcome into the state machine."""
        with self._lock:
            self._window.append(success)
            if self._state == self.HALF_OPEN:
                if success:
                    self._probes_succeeded += 1
                    if self._probes_succeeded >= self.policy.probe_budget:
                        self._state = self.CLOSED
                        self._window.clear()
                else:
                    self._open(now)
                return
            if self._state == self.CLOSED and not success:
                if len(self._window) >= self.policy.min_volume:
                    failures = sum(1 for ok in self._window if not ok)
                    if failures / len(self._window) >= self.policy.failure_rate:
                        self._open(now)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"CircuitBreaker(state={self._state!r}, "
                f"opens={self.opens}, window={list(self._window)})"
            )


# ---------------------------------------------------------------------------
# Health accounting
# ---------------------------------------------------------------------------
_LATENCY_WINDOW = 128


class HealthStats:
    """One shard's serving-health counters (mutable, router-owned)."""

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.successes = 0
        self.failures = 0
        self.consecutive_failures = 0
        self.retries = 0
        self.hedges_fired = 0
        self.hedge_wins = 0
        self.timeouts = 0
        self.trips = 0
        self.wasted_page_reads = 0
        self.latencies: deque[float] = deque(maxlen=_LATENCY_WINDOW)

    @property
    def p95_latency(self) -> float:
        """95th-percentile attempt latency over the recent window.

        0.0 before the first attempt lands (explicitly: no samples).
        """
        return percentile(sorted(self.latencies), 0.95, default=0.0)

    def to_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "successes": self.successes,
            "failures": self.failures,
            "consecutive_failures": self.consecutive_failures,
            "retries": self.retries,
            "hedges_fired": self.hedges_fired,
            "hedge_wins": self.hedge_wins,
            "timeouts": self.timeouts,
            "trips": self.trips,
            "wasted_page_reads": self.wasted_page_reads,
            "p95_latency": self.p95_latency,
        }


class FleetHealth:
    """Per-shard :class:`HealthStats` + :class:`CircuitBreaker` registry.

    Owned by the router and shared by every resilient query.  Breakers
    are created lazily with the policy of the first query that touches
    the shard; later queries reuse the existing breaker (retuning a live
    breaker mid-flight would reset its window).
    """

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._lock = make_lock("FleetHealth._lock")
        self._stats: dict[int, HealthStats] = {}
        self._breakers: dict[int, CircuitBreaker] = {}

    def stats(self, shard_id: int) -> HealthStats:
        with self._lock:
            if shard_id not in self._stats:
                self._stats[shard_id] = HealthStats(shard_id)
            return self._stats[shard_id]

    def breaker(self, shard_id: int, policy: BreakerPolicy) -> CircuitBreaker:
        with self._lock:
            if shard_id not in self._breakers:
                self._breakers[shard_id] = CircuitBreaker(policy)
            return self._breakers[shard_id]

    def record_success(self, shard_id: int, latency: float) -> None:
        stats = self.stats(shard_id)
        with self._lock:
            stats.successes += 1
            stats.consecutive_failures = 0
            stats.latencies.append(latency)

    def record_failure(self, shard_id: int, *, timeout: bool = False) -> None:
        stats = self.stats(shard_id)
        with self._lock:
            stats.failures += 1
            stats.consecutive_failures += 1
            if timeout:
                stats.timeouts += 1

    def record_retry(self, shard_id: int) -> None:
        stats = self.stats(shard_id)
        with self._lock:
            stats.retries += 1

    def record_trip(self, shard_id: int) -> None:
        stats = self.stats(shard_id)
        with self._lock:
            stats.trips += 1

    def record_hedge(self, shard_id: int, *, won: bool) -> None:
        stats = self.stats(shard_id)
        with self._lock:
            stats.hedges_fired += 1
            if won:
                stats.hedge_wins += 1

    def record_waste(self, shard_id: int, page_reads: int) -> None:
        stats = self.stats(shard_id)
        with self._lock:
            stats.wasted_page_reads += page_reads

    def latency_snapshot(self, shard_id: int) -> tuple[float, ...]:
        """A consistent copy of the shard's recent latency window."""
        stats = self.stats(shard_id)
        with self._lock:
            return tuple(stats.latencies)

    def snapshot(self) -> dict[int, dict]:
        """Per-shard health, breaker state included (JSON-friendly)."""
        with self._lock:
            shard_ids = sorted(set(self._stats) | set(self._breakers))
        report: dict[int, dict] = {}
        for shard_id in shard_ids:
            entry = self.stats(shard_id).to_dict()
            with self._lock:
                breaker = self._breakers.get(shard_id)
            entry["breaker_state"] = (
                breaker.state if breaker is not None else CircuitBreaker.CLOSED
            )
            entry["breaker_opens"] = breaker.opens if breaker is not None else 0
            report[shard_id] = entry
        return report

    def restore(self, entries: dict[int, dict], policy: BreakerPolicy) -> None:
        """Load persisted health (``health.json``) into the registry.

        Counters are restored verbatim; a persisted ``open`` (or
        ``half_open``) breaker reopens as OPEN with its cooldown starting
        now — the shard stays skipped until a probe proves it healthy.
        """
        now = self._clock.now()
        for shard_id, payload in entries.items():
            stats = self.stats(shard_id)
            with self._lock:
                for key in (
                    "successes",
                    "failures",
                    "consecutive_failures",
                    "retries",
                    "hedges_fired",
                    "hedge_wins",
                    "timeouts",
                    "trips",
                    "wasted_page_reads",
                ):
                    setattr(stats, key, int(payload.get(key, 0)))
            state = payload.get("breaker_state", CircuitBreaker.CLOSED)
            if state in (CircuitBreaker.OPEN, CircuitBreaker.HALF_OPEN):
                self.breaker(shard_id, policy).force_open(now)


# ---------------------------------------------------------------------------
# Coverage
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Coverage:
    """Which shards contributed to a degraded query's answer.

    ``complete`` is a *proof* statement: the merged top-k equals the
    full-fleet answer iff every populated, non-pruned shard answered.
    Pruned shards never threaten completeness — the key-bounds filter is
    lossless, so a pruned shard provably contributes zero-similarity
    videos only.
    """

    shards_total: int
    shards_answered: tuple[int, ...]
    shards_pruned: tuple[int, ...]
    shards_failed: tuple[int, ...] = ()
    shards_timed_out: tuple[int, ...] = ()
    shards_tripped: tuple[int, ...] = ()

    @property
    def complete(self) -> bool:
        """Whether the merged result is provably the full-fleet answer."""
        return not (
            self.shards_failed or self.shards_timed_out or self.shards_tripped
        )

    @property
    def shards_missing(self) -> tuple[int, ...]:
        """Every shard whose contribution is absent for a bad reason."""
        return tuple(
            sorted(
                set(self.shards_failed)
                | set(self.shards_timed_out)
                | set(self.shards_tripped)
            )
        )

    @property
    def fraction_answered(self) -> float:
        """Answered share of the shards that should have answered."""
        relevant = len(self.shards_answered) + len(self.shards_missing)
        if relevant == 0:
            return 1.0
        return len(self.shards_answered) / relevant

    def to_dict(self) -> dict:
        return {
            "shards_total": self.shards_total,
            "shards_answered": list(self.shards_answered),
            "shards_pruned": list(self.shards_pruned),
            "shards_failed": list(self.shards_failed),
            "shards_timed_out": list(self.shards_timed_out),
            "shards_tripped": list(self.shards_tripped),
            "complete": self.complete,
            "fraction_answered": self.fraction_answered,
        }


# ---------------------------------------------------------------------------
# The per-shard attempt loop
# ---------------------------------------------------------------------------
# How one shard's sub-query resolved (AttemptOutcome.disposition).
ANSWERED = "answered"
FAILED = "failed"
TIMED_OUT = "timed_out"
TRIPPED = "tripped"


@dataclass
class AttemptOutcome:
    """How one shard's sub-query resolved under a fault policy.

    Exactly one of ``result``/``error`` is meaningful: an ``answered``
    outcome carries the result and the one accepted cost ``bundle``
    (every other attempt's cost went to the shard's ``wasted`` tally);
    any other disposition carries the final error instead.
    """

    disposition: str
    result: object = None
    bundle: CostCounters | None = None
    error: BaseException | None = None


def _accepts_dispatch(work) -> bool:
    """Whether ``work`` takes a third (dispatch-ordinal) argument.

    Replica-aware work callables declare ``(bundle, deadline, attempt)``
    and use the ordinal to steer retries/hedges to a different copy;
    legacy two-argument callables are called exactly as before.
    """
    try:
        signature = inspect.signature(work)
    except (TypeError, ValueError):  # builtins, odd callables
        return False
    positional = 0
    for parameter in signature.parameters.values():
        if parameter.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            positional += 1
        elif parameter.kind == inspect.Parameter.VAR_POSITIONAL:
            return True
    return positional >= 3


def _one_attempt(
    work,
    shard_id: int,
    policy: FaultPolicy,
    clock: Clock,
    deadline: Deadline,
    dispatch: int | None = None,
):
    """Run a single attempt; returns ``(result, bundle, latency, error)``.

    The attempt gets its own fresh :class:`CostCounters` bundle, so its
    cost can be accepted or discarded atomically.  ``work`` receives the
    sub-query's shared :class:`Deadline`: budget-aware work (the shard's
    ``deadline=`` seam, the fault injector, a remote shard server)
    raises :class:`ShardTimeout` *before* computing an answer nobody is
    waiting for.  The post-completion check below is the fallback for
    work that ignores its deadline — the result is discarded even though
    it completed, exactly what a caller that stopped waiting would have
    seen.

    ``dispatch`` (``None`` for legacy two-argument callables) is this
    attempt's dispatch ordinal within the sub-query — 0 for the first
    attempt, incrementing across retries *and* hedges — passed through
    so replica-aware work can route each dispatch to a different copy.
    """
    bundle = CostCounters()
    start = clock.now()
    try:
        if dispatch is None:
            result = work(bundle, deadline)
        else:
            result = work(bundle, deadline, dispatch)
    except policy.retryable as exc:
        return None, bundle, clock.now() - start, exc
    latency = clock.now() - start
    if deadline.expired():
        timeout = ShardTimeout(
            f"shard {shard_id} attempt finished {-deadline.remaining():.6f}s "
            f"past its {policy.deadline:.6f}s budget"
        )
        return None, bundle, latency, timeout
    return result, bundle, latency, None


def run_attempts(
    work,
    shard_id: int,
    policy: FaultPolicy,
    health: FleetHealth,
    clock: Clock,
) -> AttemptOutcome:
    """Run one shard's sub-query to resolution under ``policy``.

    ``work(bundle, deadline)`` performs one attempt against the shard,
    folding its cost events into the fresh bundle it is handed and
    honouring (or ignoring — the loop copes either way) the sub-query's
    shared :class:`Deadline`.  A work callable that accepts a third
    positional argument is *replica-aware*: it is called as
    ``work(bundle, deadline, dispatch)`` where ``dispatch`` is the
    attempt's ordinal within this resolution (0, then +1 per retry and
    per hedge), which a replica set folds into copy selection so a
    hedge lands on a different copy than the slow first attempt.  The
    loop:

    1. Ask the shard's breaker for admission; an open breaker resolves
       ``tripped`` immediately (no attempt, no cost).
    2. Up to ``retry.max_attempts`` attempts, all drawing on one
       clock-time budget (``policy.deadline``; unbounded when ``None``).
       Retryable errors and budget overruns count as failed attempts;
       any other exception propagates — retrying a programming error is
       not resilience.  A retry whose budget is already spent — or whose
       backoff sleep alone would spend it — is *skipped*, not run: the
       sub-query resolves ``timed_out`` on the spot, recording one
       timeout but no breaker outcome (no attempt was dispatched) and no
       retry.
    3. On a success whose latency reaches the hedge threshold (the
       shard's recent latency percentile, captured *before* this query
       records anything), run one backup attempt and keep the faster.

    Cost discipline: exactly one attempt's bundle is accepted and
    returned; every other attempt (failed, timed out, or hedge loser)
    has its page reads recorded as the shard's ``wasted`` tally and its
    bundle dropped.  A query total built from accepted bundles therefore
    can never double-count a retry, and a budget-aborted attempt shows
    up as zero waste because it never touched a page.  The breaker
    records one outcome per dispatched attempt: failed attempts record a
    failure, a served iteration records a success (even when the hedge
    loser erred — the query was answered).
    """
    breaker = health.breaker(shard_id, policy.breaker)
    if not breaker.allow(clock.now()):
        health.record_trip(shard_id)
        return AttemptOutcome(
            TRIPPED,
            error=ShardDown(f"circuit breaker open for shard {shard_id}"),
        )
    hedge_threshold = (
        policy.hedge.threshold(health.latency_snapshot(shard_id))
        if policy.hedge is not None
        else math.inf
    )
    # One budget for the whole resolution; created here, on the thread
    # that will sleep the backoffs (see the Deadline thread contract).
    deadline = Deadline(clock, policy.deadline)
    # Replica-aware work gets each attempt's dispatch ordinal (0, then
    # +1 per retry or hedge) so it can route every dispatch to a
    # different copy of the shard.
    pass_dispatch = _accepts_dispatch(work)
    dispatched = 0

    def next_dispatch() -> int | None:
        nonlocal dispatched
        ordinal = dispatched
        dispatched += 1
        return ordinal if pass_dispatch else None

    last_error: BaseException | None = None
    timed_out = False
    for attempt in range(1, policy.retry.max_attempts + 1):
        if attempt > 1:
            backoff = policy.retry.backoff(shard_id, attempt - 1)
            if deadline.remaining() <= backoff:
                # The budget is spent (or the mandatory backoff alone
                # would spend it): skip the doomed attempt entirely.
                last_error = ShardTimeout(
                    f"shard {shard_id} budget of {policy.deadline:.6f}s "
                    f"exhausted after {attempt - 1} attempt(s); "
                    f"skipping attempt {attempt}"
                )
                timed_out = True
                health.record_failure(shard_id, timeout=True)
                break
            health.record_retry(shard_id)
            clock.sleep(backoff)
        result, bundle, latency, error = _one_attempt(
            work, shard_id, policy, clock, deadline, next_dispatch()
        )
        if error is not None:
            last_error = error
            timed_out = isinstance(error, ShardTimeout)
            breaker.record(False, clock.now())
            health.record_failure(shard_id, timeout=timed_out)
            health.record_waste(shard_id, bundle.page_reads)
            continue
        accepted = (result, bundle, latency)
        if latency >= hedge_threshold:
            b_result, b_bundle, b_latency, b_error = _one_attempt(
                work, shard_id, policy, clock, deadline, next_dispatch()
            )
            won = b_error is None and b_latency < latency
            health.record_hedge(shard_id, won=won)
            if won:
                health.record_waste(shard_id, bundle.page_reads)
                accepted = (b_result, b_bundle, b_latency)
            else:
                health.record_waste(shard_id, b_bundle.page_reads)
        breaker.record(True, clock.now())
        health.record_success(shard_id, accepted[2])
        return AttemptOutcome(ANSWERED, result=accepted[0], bundle=accepted[1])
    return AttemptOutcome(
        TIMED_OUT if timed_out else FAILED, error=last_error
    )
