"""repro — reproduction of "Towards Effective Indexing for Very Large
Video Sequence Database" (Shen, Ooi, Zhou; SIGMOD 2005).

The package implements the paper's full stack from scratch:

* :mod:`repro.core` — the ViTri model, its density-weighted similarity,
  the PCA-based one-dimensional transformation and the B+-tree-backed
  :class:`~repro.core.index.VitriIndex`;
* :mod:`repro.geometry` — n-dimensional hypersphere/cap/sector/cone
  volumes and sphere-intersection volumes;
* :mod:`repro.pca`, :mod:`repro.clustering` — the analytical substrates;
* :mod:`repro.storage`, :mod:`repro.btree` — a paged storage engine and a
  disk-paged B+-tree with deterministic I/O accounting;
* :mod:`repro.baselines` — keyframe, video-signature and sequential-scan
  comparators;
* :mod:`repro.datasets`, :mod:`repro.eval` — a synthetic TV-ad dataset
  generator and the precision/cost evaluation harness.

Quickstart::

    import repro

    dataset = repro.generate_dataset(seed=7)
    summaries = [
        repro.summarize_video(i, dataset.frames(i), epsilon=0.3, seed=i)
        for i in range(dataset.num_videos)
    ]
    index = repro.VitriIndex.build(summaries, epsilon=0.3)
    result = index.knn(summaries[0], k=10)
"""

from __future__ import annotations

from repro.core import (
    BatchResult,
    KNNResult,
    QueryEngine,
    ServingMetrics,
    VideoDatabase,
    ManagedVitriIndex,
    OneDimensionalTransform,
    QueryStats,
    RebuildPolicy,
    VideoSummary,
    ViTri,
    VitriIndex,
    estimated_shared_frames,
    frame_similarity,
    summarize_video,
    video_similarity,
    vitri_similarity,
)
from repro.datasets import (
    DatasetConfig,
    VideoDataset,
    generate_dataset,
    video_histograms,
)
from repro.shard import (
    HashPartitioner,
    KeyRangePartitioner,
    Partitioner,
    ScatterStats,
    Shard,
    ShardedBatchResult,
    ShardedKNNResult,
    ShardedServingMetrics,
    ShardedVideoDatabase,
    make_partitioner,
)
from repro.temporal import temporal_video_similarity

__version__ = "0.1.0"

__all__ = [
    "BatchResult",
    "KNNResult",
    "QueryEngine",
    "ServingMetrics",
    "VideoDatabase",
    "ManagedVitriIndex",
    "OneDimensionalTransform",
    "QueryStats",
    "RebuildPolicy",
    "VideoSummary",
    "ViTri",
    "VitriIndex",
    "estimated_shared_frames",
    "frame_similarity",
    "summarize_video",
    "video_similarity",
    "vitri_similarity",
    "DatasetConfig",
    "VideoDataset",
    "generate_dataset",
    "video_histograms",
    "HashPartitioner",
    "KeyRangePartitioner",
    "Partitioner",
    "ScatterStats",
    "Shard",
    "ShardedBatchResult",
    "ShardedKNNResult",
    "ShardedServingMetrics",
    "ShardedVideoDatabase",
    "make_partitioner",
    "temporal_video_similarity",
    "__version__",
]
